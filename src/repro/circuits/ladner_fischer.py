"""32-bit Ladner-Fischer prefix adder netlist.

The Ladner-Fischer adder [Ladner & Fischer, JACM 1980] computes carries
with a minimum-depth parallel-prefix network at the cost of high fanout
on block-boundary nodes.  This module builds the adder out of the
primitive gate library so that every internal node — and therefore every
PMOS gate terminal — is visible to the aging simulator.

Design notes (these match common industrial practice and matter for the
NBTI analysis of Section 4.3 of the paper):

- The *sum* uses the XOR-form propagate ``p_i = a_i ^ b_i``.
- The *carry tree* uses the OR-form propagate ``t_i = a_i | b_i`` (alive
  signal), which is logically equivalent for carry computation because
  ``g_i = a_i & b_i`` dominates whenever both inputs are 1.  The OR form
  is balanced under the all-zeros/all-ones idle pair, whereas the XOR
  form would be stuck at 0 for both.
- Gates whose output fanout reaches ``wide_threshold`` (block-boundary
  prefix nodes: the hallmark of Ladner-Fischer) and gates within
  ``output_stage_depth`` logic levels of a primary output (result-bus
  drivers) are sized WIDE; all others are NARROW minimum-width devices.
  Per ref [19] of the paper, wide PMOS tolerate full bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuits.netlist import Circuit, CircuitBuilder
from repro.nbti.transistor import WidthClass

DEFAULT_WIDTH = 32

#: Output fanout at which a driver is implemented with wide transistors.
DEFAULT_WIDE_FANOUT = 4

#: Logic depth from a primary output within which cells are sized wide:
#: the full four-NAND sum-XOR cell (depth 3) drives the result bus /
#: output latch and is upsized in physical designs.  This is what leaves
#: "only few wide PMOS" fully stressed under the paper's chosen idle
#: pair (Section 4.3) — the propagate-driven devices of the sum stage.
DEFAULT_OUTPUT_STAGE_DEPTH = 3


@dataclass
class LadnerFischerAdder:
    """A built adder: the netlist plus named-pin conveniences.

    Attributes
    ----------
    circuit:
        The underlying primitive-gate netlist.
    width:
        Operand width in bits.

    Examples
    --------
    >>> adder = build_ladner_fischer_adder(width=8)
    >>> adder.add(100, 55, 0)
    (155, 0)
    >>> adder.add(255, 1, 0)
    (0, 1)
    """

    circuit: Circuit
    width: int

    # ------------------------------------------------------------------
    # Pin naming
    # ------------------------------------------------------------------
    def a_pin(self, bit: int) -> str:
        return f"a{bit}"

    def b_pin(self, bit: int) -> str:
        return f"b{bit}"

    @property
    def cin_pin(self) -> str:
        return "cin"

    def sum_pin(self, bit: int) -> str:
        return f"s{bit}"

    @property
    def cout_pin(self) -> str:
        return "cout"

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def input_vector(self, a: int, b: int, cin: int) -> Dict[str, int]:
        """Build the primary-input map for integer operands."""
        mask = (1 << self.width) - 1
        if not 0 <= a <= mask or not 0 <= b <= mask:
            raise ValueError(
                f"operands must fit in {self.width} bits: a={a!r} b={b!r}"
            )
        if cin not in (0, 1):
            raise ValueError(f"cin must be 0 or 1, got {cin!r}")
        vector = {self.cin_pin: cin}
        for bit in range(self.width):
            vector[self.a_pin(bit)] = (a >> bit) & 1
            vector[self.b_pin(bit)] = (b >> bit) & 1
        return vector

    def add(self, a: int, b: int, cin: int = 0) -> Tuple[int, int]:
        """Add two integers through the netlist; returns (sum, carry-out)."""
        values = self.circuit.evaluate(self.input_vector(a, b, cin))
        total = 0
        for bit in range(self.width):
            total |= values[self.sum_pin(bit)] << bit
        return total, values[self.cout_pin]

    # ------------------------------------------------------------------
    # Structure statistics
    # ------------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        return len(self.circuit)

    @property
    def pmos_count(self) -> int:
        return len(self.circuit.pmos_transistors())

    @property
    def transistor_count(self) -> int:
        """Total transistor count (static CMOS: one NMOS per PMOS)."""
        return 2 * self.pmos_count

    @property
    def narrow_pmos_count(self) -> int:
        return len(self.circuit.narrow_pmos())


def build_ladner_fischer_adder(
    width: int = DEFAULT_WIDTH,
    wide_fanout: int = DEFAULT_WIDE_FANOUT,
    output_stage_depth: int = DEFAULT_OUTPUT_STAGE_DEPTH,
) -> LadnerFischerAdder:
    """Construct a Ladner-Fischer adder netlist.

    Parameters
    ----------
    width:
        Operand width; must be a positive power-of-two-friendly size
        (any positive width works; the prefix tree handles ragged spans).
    wide_fanout:
        Fanout threshold for wide sizing of drivers (0 disables).
    output_stage_depth:
        Logic depth from primary outputs sized wide (0 disables).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    builder = CircuitBuilder(f"ladner_fischer_{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    cin = builder.input("cin")

    # Pre-processing: generate, alive (OR-propagate) and sum-propagate.
    generate: List[str] = []
    alive: List[str] = []
    propagate: List[str] = []
    for i in range(width):
        generate.append(builder.and2(a[i], b[i], name=f"g{i}"))
        alive.append(builder.or2(a[i], b[i], name=f"t{i}"))
        propagate.append(builder.xor2(a[i], b[i], name=f"p{i}"))

    # Ladner-Fischer (Sklansky-style divide and conquer) prefix network:
    # after level k every index i with bit k set combines with the top of
    # the preceding 2^k block, giving log2(width) levels with fanout up
    # to width/2 on block boundaries.
    prefix_g = list(generate)
    prefix_t = list(alive)
    level = 0
    while (1 << level) < width:
        step = 1 << level
        new_g = list(prefix_g)
        new_t = list(prefix_t)
        for i in range(width):
            if (i >> level) & 1:
                j = ((i >> level) << level) - 1
                new_g[i] = builder.aoi21(
                    prefix_t[i], prefix_g[j], prefix_g[i],
                    name=f"G_{i}_{level}",
                )
                new_t[i] = builder.and2(
                    prefix_t[i], prefix_t[j], name=f"T_{i}_{level}"
                )
        prefix_g = new_g
        prefix_t = new_t
        level += 1

    # Carries: c0 = cin; c_i = G_{i-1:0} OR (T_{i-1:0} AND cin).
    carries: List[str] = [cin]
    for i in range(1, width):
        carries.append(
            builder.aoi21(prefix_t[i - 1], cin, prefix_g[i - 1], name=f"c{i}")
        )
    cout = builder.aoi21(prefix_t[width - 1], cin, prefix_g[width - 1],
                         name="cout")

    # Sum bits: s_i = p_i XOR c_i.
    for i in range(width):
        builder.mark_output(builder.xor2(propagate[i], carries[i],
                                         name=f"s{i}"))
    builder.mark_output(cout)

    circuit = builder.circuit
    if wide_fanout:
        circuit.apply_fanout_sizing(wide_fanout)
    if output_stage_depth:
        _apply_output_stage_sizing(circuit, output_stage_depth)
    return LadnerFischerAdder(circuit=circuit, width=width)


def _apply_output_stage_sizing(circuit: Circuit, depth: int) -> int:
    """Size gates within ``depth`` levels of a primary output as WIDE.

    Output-stage cells drive the result bus and downstream latches, so
    physical designs upsize them; Section 4.3 of the paper relies on the
    fully-stressed transistors under the chosen idle pair being wide.
    Returns the number of gates converted.
    """
    if depth <= 0:
        return 0
    frontier = [(node, 0) for node in circuit.outputs]
    wide_gates: Dict[str, int] = {}
    while frontier:
        node, level = frontier.pop()
        gate = circuit.driver_of(node)
        if gate is None or level >= depth:
            continue
        if gate.name in wide_gates and wide_gates[gate.name] <= level:
            continue
        wide_gates[gate.name] = level
        for source in gate.inputs:
            frontier.append((source, level + 1))
    return circuit.resize_gates(wide_gates, WidthClass.WIDE)
