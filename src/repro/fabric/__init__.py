"""Distributed, resumable sweep fabric.

Generalises the flat JSONL :class:`~repro.experiments.store.ResultStore`
and single-pool :class:`~repro.experiments.runner.SweepRunner` into a
job fabric that survives crashes and scales past a single rescan-able
file:

* :mod:`repro.fabric.store` — results sharded into JSONL files by
  key-hash range with a SQLite index (lookups and study queries stop
  being O(whole-file)); ``compact`` and flat-store migration included.
* :mod:`repro.fabric.lease` — pending batches leased by workers with a
  TTL + heartbeat; expired leases are stolen so a killed worker's batch
  is re-run, not lost.
* :mod:`repro.fabric.journal` — atomic per-run sweep journal enabling
  ``repro sweep --resume RUN_ID``.
* :mod:`repro.fabric.runner` — the scheduler that ties them together.

Submodules import ``repro.experiments``, which itself uses
:mod:`repro.fabric.io`; attribute access is lazy (PEP 562) so importing
either package never recurses into the other mid-initialisation.
"""

from __future__ import annotations

from typing import Any, List

_EXPORTS = {
    "append_record": "repro.fabric.io",
    "atomic_write_text": "repro.fabric.io",
    "atomic_write_json": "repro.fabric.io",
    "StoreIndex": "repro.fabric.index",
    "ShardedResultStore": "repro.fabric.store",
    "open_result_store": "repro.fabric.store",
    "LeaseBoard": "repro.fabric.lease",
    "Lease": "repro.fabric.lease",
    "SweepJournal": "repro.fabric.journal",
    "BatchPlan": "repro.fabric.journal",
    "load_journal": "repro.fabric.journal",
    "journal_path": "repro.fabric.journal",
    "list_runs": "repro.fabric.journal",
    "FabricRunner": "repro.fabric.runner",
    "FabricIncompleteError": "repro.fabric.runner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.fabric' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(__all__)
