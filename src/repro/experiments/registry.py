"""Named study factories: map an experiment point to measurements.

Each study is a module-level function (picklable, so sweeps can fan out
over ``multiprocessing`` workers) that takes the point's parameter dict
and returns a typed :class:`~repro.metrics.stats.MetricSet` of
JSON-serialisable measurements.  Studies wrap the repo's existing entry
points — :class:`~repro.uarch.core.TraceDrivenCore`,
:func:`~repro.core.cache_like.run_cache_study`, and
:class:`~repro.core.penelope.PenelopeProcessor` — they add no modelling
of their own.

Study metric sets are flat (no nested namespaces) and value-backed (no
live ``read`` closures), so :meth:`~repro.metrics.stats.MetricSet.
flatten` reproduces the PR 1–4 flat metric dicts key-for-key and
value-for-value (differential-tested in
``tests/test_metrics_differential.py``) — existing store rows and point
hashes stay valid — and the sets pickle across ``multiprocessing``
workers.  Derived quantities (eq. (1)'s NBTIefficiency, the expected
steady-state bias, the multiprogram CPI loss) are
:class:`~repro.metrics.stats.Derived` stats over their sibling inputs.

Generated traces and address streams are memoised per worker process
(:func:`cached_trace` / :func:`cached_address_stream`), so points that
share a workload axis only pay generation once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.cache_like import LineFixedScheme as _LineFixedScheme
from repro.metrics import MetricSet
from repro.obs.trace import TRACER as _TRACER
from repro.workloads import suite_names

# ----------------------------------------------------------------------
# Per-worker workload caches
# ----------------------------------------------------------------------
_CACHE_CAP = 32

_TRACE_CACHE: Dict[Tuple[str, int, int], Any] = {}
_STREAM_CACHE: Dict[Tuple[str, int, int], Any] = {}
_RF_BIAS_CACHE: Dict[Tuple[str, int, int, float], Tuple[float, float, float]] = {}


def _evict(cache: Dict) -> None:
    while len(cache) > _CACHE_CAP:
        cache.pop(next(iter(cache)))


def cached_trace(suite: str, length: int, seed: int):
    """One generated trace per (suite, length, seed) per worker."""
    from repro.workloads import TraceGenerator

    key = (suite, length, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = TraceGenerator(seed=seed).generate(
            suite, length=length
        )
        _evict(_TRACE_CACHE)
    return _TRACE_CACHE[key]


def cached_address_stream(suite: str, length: int, seed: int):
    """One generated address stream per (suite, length, seed) per worker."""
    from repro.workloads import generate_address_stream

    key = (suite, length, seed)
    if key not in _STREAM_CACHE:
        _STREAM_CACHE[key] = generate_address_stream(
            suite, length=length, seed=seed
        )
        _evict(_STREAM_CACHE)
    return _STREAM_CACHE[key]


def cached_rf_biases(
    suite: str, length: int, seed: int, sample_period: float,
    backend: str = "reference",
) -> Tuple[float, float, float]:
    """(baseline bias, ISV bias, free fraction) of the INT register file.

    Memoised because several studies (``regfile``, ``vmin_power``) sweep
    knobs that do not change the core runs themselves.
    """
    from repro.core.memory_like import ISVRegisterFileProtector
    from repro.uarch import TraceDrivenCore
    from repro.uarch.core import CoreConfig
    from repro.uarch.uop import INT_WIDTH

    key = (suite, length, seed, sample_period, backend)
    if key not in _RF_BIAS_CACHE:
        trace = cached_trace(suite, length, seed)
        config = CoreConfig(backend=backend)
        base = TraceDrivenCore(config).run(trace)
        protector = ISVRegisterFileProtector("int_rf", INT_WIDTH,
                                             sample_period)
        prot = TraceDrivenCore(config, hooks=protector).run(trace)
        _RF_BIAS_CACHE[key] = (
            base.int_rf.worst_bias,
            prot.int_rf.worst_bias,
            base.int_rf.free_fraction,
        )
        _evict(_RF_BIAS_CACHE)
    return _RF_BIAS_CACHE[key]


def _suite_index(suite: str) -> int:
    names = suite_names()
    return names.index(suite) if suite in names else 0


# ----------------------------------------------------------------------
# Study registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StudyDefinition:
    """A named, parameterised experiment.

    ``spec_paths`` binds each flat study parameter to the dotted spec
    field path that feeds it (``"ratio" -> "protection.dl0.params.
    ratio"``), so the study can be driven from a declarative
    :class:`~repro.config.specs.StudySpec` via
    :func:`repro.api.run_study`.  Parameters absent from the binding
    (e.g. ``data_bias``) have no spec home and are set through
    ``StudySpec.overrides``.
    """

    name: str
    description: str
    defaults: Mapping[str, Any]
    run: Callable[[Mapping[str, Any]], Union[MetricSet, Dict[str, Any]]]
    spec_paths: Optional[Mapping[str, str]] = None

    def __post_init__(self) -> None:
        if self.spec_paths is None:
            object.__setattr__(self, "spec_paths", {})

    def bind(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        bound = dict(self.defaults)
        bound.update(params)
        return bound

    def execute(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The study's flat metric dict (the legacy/store row view)."""
        return self.execute_metrics(params).flatten()

    def execute_metrics(self, params: Mapping[str, Any]) -> MetricSet:
        """The study's typed metric tree.

        Registered study functions return :class:`MetricSet`s; a plain
        dict (externally registered legacy study) is lifted into one
        with value-derived stat kinds.
        """
        with _TRACER.span(f"study.{self.name}"):
            result = self.run(self.bind(params))
        if not isinstance(result, MetricSet):
            result = MetricSet.from_flat(result)
        return result


_STUDIES: Dict[str, StudyDefinition] = {}

#: Spec field paths shared by every workload-driven study.
_WORKLOAD_PATHS = {
    "suite": "workload.suites",
    "length": "workload.length",
    "seed": "workload.seed",
}

#: ... plus the DL0 geometry axes of the cache studies.
_CACHE_GEOMETRY_PATHS = {
    **_WORKLOAD_PATHS,
    "size_kb": "processor.dl0.size_kb",
    "ways": "processor.dl0.ways",
}


def register_study(
    name: str,
    description: str,
    defaults: Mapping[str, Any],
    spec_paths: Mapping[str, str] = (),
) -> Callable:
    def wrap(func: Callable) -> Callable:
        _STUDIES[name] = StudyDefinition(
            name=name, description=description,
            defaults=dict(defaults), run=func,
            spec_paths=dict(spec_paths),
        )
        return func
    return wrap


def get_study(name: str) -> StudyDefinition:
    try:
        return _STUDIES[name]
    except KeyError:
        raise KeyError(
            f"unknown study {name!r}; available: "
            f"{', '.join(study_names())}"
        ) from None


def study_names() -> List[str]:
    return sorted(_STUDIES)


# ----------------------------------------------------------------------
# Cache-like studies
# ----------------------------------------------------------------------
def _cache_config(params: Mapping[str, Any]):
    from repro.uarch.cache import CacheConfig

    size_kb = int(params["size_kb"])
    ways = int(params["ways"])
    return CacheConfig(
        name=f"DL0-{size_kb}K-{ways}w",
        size_bytes=size_kb * 1024,
        ways=ways,
    )


def _scheme_factory(params: Mapping[str, Any], created: List[Any]):
    """Zero-arg factory for the requested scheme; records instances.

    Scheme names resolve through the component registry
    (:data:`repro.config.registry.CACHE_SCHEMES`), so any newly
    registered scheme is sweepable by name with no change here.
    """
    from repro.config.registry import CACHE_SCHEMES
    from repro.config.specs import SpecError

    scheme = params["scheme"]
    scheme_params: Dict[str, Any] = {"ratio": float(params["ratio"])}
    if scheme == "line_dynamic":
        scheme_params.update(
            threshold=float(params["dyn_threshold"]),
            warmup=int(params["dyn_warmup"]),
            test_window=int(params["dyn_test_window"]),
            period=int(params["dyn_period"]),
        )
    if scheme == "none":
        raise ValueError(
            "scheme 'none' builds no mechanism; use a baseline run "
            "instead of sweeping it"
        )
    try:
        CACHE_SCHEMES.validate(scheme, scheme_params)
    except SpecError as exc:
        # The sweep layer reports ValueError messages as `error: ...`.
        raise ValueError(str(exc)) from None

    def factory():
        instance = CACHE_SCHEMES.build(scheme, scheme_params)
        created.append(instance)
        return instance

    return factory


@register_study(
    "caches",
    "invalidate-and-invert scheme on one DL0 config and suite (Table 3)",
    defaults={
        "suite": "specint2000",
        "length": 6000,
        "seed": 0,
        "size_kb": 16,
        "ways": 8,
        "scheme": "line_fixed",
        "ratio": 0.5,
        "dyn_threshold": 0.02,
        "dyn_warmup": 1000,
        "dyn_test_window": 1000,
        "dyn_period": 6000,
        "backend": "reference",
    },
    spec_paths={
        **_CACHE_GEOMETRY_PATHS,
        "scheme": "protection.dl0.name",
        "ratio": "protection.dl0.params.ratio",
        "dyn_threshold": "protection.dl0.params.threshold",
        "dyn_warmup": "protection.dl0.params.warmup",
        "dyn_test_window": "protection.dl0.params.test_window",
        "dyn_period": "protection.dl0.params.period",
        "backend": "processor.backend",
    },
)
def run_caches_point(params: Mapping[str, Any]) -> MetricSet:
    from repro.core.cache_like import run_cache_study

    created: List[Any] = []
    stream = cached_address_stream(
        params["suite"], int(params["length"]), int(params["seed"])
    )
    study = run_cache_study(
        _cache_config(params),
        _scheme_factory(params, created),
        [stream],
        seed=int(params["seed"]) + _suite_index(params["suite"]),
        backend=str(params.get("backend", "reference")),
    )
    ms = MetricSet()
    ms.text("scheme_name", study.scheme_name)
    ms.gauge("mean_loss", study.mean_loss)
    ms.ratio("inverted_ratio", study.mean_inverted_ratio)
    ms.ratio("baseline_miss_rate", study.baseline_miss_rate)
    ms.ratio("scheme_miss_rate", study.scheme_miss_rate)
    if created and hasattr(created[-1], "activation_history"):
        ms.text("activations", "".join(
            "A" if d else "-" for d in created[-1].activation_history
        ))
    return ms


@register_study(
    "invert_ratio",
    "LineFixed invert-ratio sweep: capacity loss vs achieved balance",
    defaults={
        "suite": "specint2000",
        "length": 10_000,
        "seed": 55,
        "size_kb": 16,
        "ways": 8,
        "ratio": 0.5,
        "data_bias": 0.9,
        "backend": "reference",
    },
    # data_bias is an analysis-only knob with no spec home: set it via
    # StudySpec.overrides (or sweep it by bare name).
    spec_paths={
        **_CACHE_GEOMETRY_PATHS,
        "ratio": "protection.dl0.params.ratio",
        "backend": "processor.backend",
    },
)
def run_invert_ratio_point(params: Mapping[str, Any]) -> MetricSet:
    ms = run_caches_point({**params, "scheme": "line_fixed"})
    # Steady-state worst-cell bias when a fraction `inverted_ratio` of
    # cells holds inverted (complementary) contents of `data_bias`-biased
    # data: derived from the achieved-ratio sibling.
    ms.derived("expected_bias",
               partial(_expected_bias, float(params["data_bias"])),
               args=("inverted_ratio",))
    return ms


def _expected_bias(data_bias: float, achieved: float) -> float:
    return data_bias * (1.0 - achieved) + (1.0 - data_bias) * achieved


@register_study(
    "victim_policy",
    "LRU-position vs any-position inversion victims (Section 3.2.1)",
    defaults={
        "suite": "specint2000",
        "length": 10_000,
        "seed": 99,
        "size_kb": 16,
        "ways": 8,
        "ratio": 0.5,
        "backend": "reference",
    },
    spec_paths={
        **_CACHE_GEOMETRY_PATHS,
        "ratio": "protection.dl0.params.ratio",
        "backend": "processor.backend",
    },
)
def run_victim_policy_point(params: Mapping[str, Any]) -> MetricSet:
    from repro.core.cache_like import LineFixedScheme, run_cache_study
    from repro.uarch.backends import get_backend

    config = _cache_config(params)
    stream = cached_address_stream(
        params["suite"], int(params["length"]), int(params["seed"])
    )
    seed = int(params["seed"]) + _suite_index(params["suite"])
    ratio = float(params["ratio"])
    backend = str(params.get("backend", "reference"))
    lru = run_cache_study(config, lambda: LineFixedScheme(ratio),
                          [stream], seed=seed, backend=backend)
    naive = run_cache_study(config,
                            lambda: AnyPositionLineFixedScheme(ratio),
                            [stream], seed=seed, backend=backend)
    baseline = get_backend(backend).make_cache(config)
    baseline.replay(stream)
    ms = MetricSet()
    ms.gauge("lru_loss", lru.mean_loss)
    ms.gauge("naive_loss", naive.mean_loss)
    ms.ratio("mru_hit_fraction", baseline.stats.mru_hit_fraction(0))
    ms.ratio("mru1_hit_fraction", baseline.stats.mru_hit_fraction(1))
    return ms


class AnyPositionLineFixedScheme(_LineFixedScheme):
    """Naive ablation variant: inverts a random valid way, any position."""

    def __init__(self, ratio: float = 0.5):
        super().__init__(ratio)
        self.name = f"AnyPosition{int(round(ratio * 100))}%"

    def maintain(self):
        # inverted_count() is the cache's O(1) incremental counter.
        if self.cache.inverted_count() < self.threshold:
            set_index = self.rng.randrange(self.cache.config.sets)
            valid = self.cache.valid_ways(set_index)
            if valid:
                self.cache.invert_line(set_index, self.rng.choice(valid))


# ----------------------------------------------------------------------
# Memory-like studies
# ----------------------------------------------------------------------
@register_study(
    "regfile",
    "register-file ISV study: worst bit-cell bias with/without ISV",
    defaults={
        "suite": "specint2000",
        "length": 5000,
        "seed": 0,
        "sample_period": 512.0,
        "backend": "reference",
    },
    spec_paths={
        **_WORKLOAD_PATHS,
        "sample_period": "protection.sample_period",
        "backend": "processor.backend",
    },
)
def run_regfile_point(params: Mapping[str, Any]) -> MetricSet:
    base_bias, isv_bias, free_fraction = cached_rf_biases(
        params["suite"], int(params["length"]), int(params["seed"]),
        float(params["sample_period"]),
        backend=str(params.get("backend", "reference")),
    )
    ms = MetricSet()
    ms.gauge("base_worst_bias", base_bias)
    ms.gauge("isv_worst_bias", isv_bias)
    ms.ratio("free_fraction", free_fraction)
    return ms


@register_study(
    "vmin_power",
    "Vmin/power benefit of ISV balancing at one voltage target",
    defaults={
        "suite": "specint2000",
        "length": 8000,
        "seed": 88,
        "sample_period": 512.0,
        "target": 0.70,
        "backend": "reference",
    },
    # target (the scaled-voltage operating point) is analysis-only: set
    # it via StudySpec.overrides.
    spec_paths={
        **_WORKLOAD_PATHS,
        "sample_period": "protection.sample_period",
        "backend": "processor.backend",
    },
)
def run_vmin_power_point(params: Mapping[str, Any]) -> MetricSet:
    from repro.nbti.power import ArrayPowerModel

    base_bias, isv_bias, __ = cached_rf_biases(
        params["suite"], int(params["length"]), int(params["seed"]),
        float(params["sample_period"]),
        backend=str(params.get("backend", "reference")),
    )
    model = ArrayPowerModel()
    target = float(params["target"])
    ms = MetricSet()
    ms.gauge("base_bias", base_bias)
    ms.gauge("isv_bias", isv_bias)
    ms.gauge("base_vmin", model.vmin(base_bias))
    ms.gauge("isv_vmin", model.vmin(isv_bias))
    ms.gauge("base_power", model.power_at_scaled_voltage(base_bias,
                                                         target))
    ms.gauge("isv_power", model.power_at_scaled_voltage(isv_bias,
                                                        target))
    ms.gauge("savings", model.savings_from_balancing(base_bias, isv_bias,
                                                     target))
    return ms


# ----------------------------------------------------------------------
# Multiprogram interference study
# ----------------------------------------------------------------------
@register_study(
    "multiprog",
    "multiprogram interference: interleaved suite streams through one "
    "protected DL0",
    defaults={
        "suites": ("specint2000", "office"),
        "length": 4000,
        "seed": 0,
        "policy": "round_robin",
        "slice_length": 64,
        "size_kb": 16,
        "ways": 8,
        "scheme": "line_fixed",
        "ratio": 0.5,
        "dyn_threshold": 0.02,
        "dyn_warmup": 1000,
        "dyn_test_window": 1000,
        "dyn_period": 6000,
        "backend": "reference",
    },
    spec_paths={
        "suites": "workload.suites",
        "length": "workload.length",
        "seed": "workload.seed",
        "policy": "workload.interleave",
        "slice_length": "workload.slice_length",
        "size_kb": "processor.dl0.size_kb",
        "ways": "processor.dl0.ways",
        "scheme": "protection.dl0.name",
        "ratio": "protection.dl0.params.ratio",
        "dyn_threshold": "protection.dl0.params.threshold",
        "dyn_warmup": "protection.dl0.params.warmup",
        "dyn_test_window": "protection.dl0.params.test_window",
        "dyn_period": "protection.dl0.params.period",
        "backend": "processor.backend",
    },
)
def run_multiprog_point(params: Mapping[str, Any]) -> MetricSet:
    """N programs time-sharing one protected cache, fully streamed.

    Unlike the single-program studies, nothing is materialised: the
    per-suite lazy address streams interleave straight into
    ``Cache.replay``, so the point runs in bounded memory at any length.
    Each replay pass rebuilds the stream from its seeds (generators are
    single-use), which is cheaper than holding N*length references.
    """
    from repro.core.cache_like import (
        DL0_ACCESSES_PER_UOP,
        DL0_EFFECTIVE_PENALTY,
        ProtectedCache,
        performance_loss,
    )
    from repro.uarch.backends import get_backend
    from repro.workloads.multiprog import multiprog_address_stream

    raw_suites = params["suites"]
    suites = ((raw_suites,) if isinstance(raw_suites, str)
              else tuple(raw_suites))
    policy = str(params["policy"])
    if policy == "none":
        # WorkloadSpec's default: a spec that never set `interleave`
        # still gets a usable scenario (same fallback as
        # api.build_multiprog_stream).
        policy = "round_robin"
    stream_kwargs = dict(
        length=int(params["length"]),
        seed=int(params["seed"]),
        policy=policy,
        slice_length=int(params["slice_length"]),
    )
    config = _cache_config(params)
    engine = get_backend(str(params.get("backend", "reference")))

    baseline = engine.make_cache(config)
    baseline.replay(multiprog_address_stream(suites, **stream_kwargs))
    base_rate = baseline.stats.miss_rate

    created: List[Any] = []
    factory = _scheme_factory(params, created)
    protected = ProtectedCache(engine.make_cache(config), factory(),
                               seed=int(params["seed"]))
    protected.replay(multiprog_address_stream(suites, **stream_kwargs))
    scheme_rate = protected.stats.miss_rate

    ms = MetricSet()
    ms.text("scheme_name", created[-1].name)
    ms.counter("n_programs", len(suites))
    ms.ratio("baseline_miss_rate", base_rate)
    ms.ratio("scheme_miss_rate", scheme_rate)
    # The CPI loss is a formula over the two miss-rate siblings
    # (eq.-style Derived; evaluates to performance_loss() exactly).
    ms.derived("mean_loss",
               partial(performance_loss,
                       accesses_per_uop=DL0_ACCESSES_PER_UOP,
                       effective_penalty=DL0_EFFECTIVE_PENALTY),
               args=("baseline_miss_rate", "scheme_miss_rate"))
    ms.ratio("inverted_ratio",
             protected.cache.inverted_count() / config.lines)
    if hasattr(created[-1], "activation_history"):
        ms.text("activations", "".join(
            "A" if d else "-" for d in created[-1].activation_history
        ))
    return ms


# ----------------------------------------------------------------------
# Whole-processor study
# ----------------------------------------------------------------------
@register_study(
    "penelope",
    "whole-processor Penelope run: NBTIefficiency vs full guardband",
    defaults={
        "suite": "specint2000",
        "length": 5000,
        "seed": 0,
        "invert_ratio": 0.5,
        "sample_period": 512.0,
        "backend": "reference",
    },
    spec_paths={
        **_WORKLOAD_PATHS,
        "invert_ratio": "protection.dl0.params.ratio",
        "sample_period": "protection.sample_period",
        "backend": "processor.backend",
    },
)
def run_penelope_point(params: Mapping[str, Any]) -> MetricSet:
    from repro.core import PenelopeProcessor
    from repro.core.metric import nbti_efficiency
    from repro.uarch.core import CoreConfig

    trace = cached_trace(
        params["suite"], int(params["length"]), int(params["seed"])
    )
    processor = PenelopeProcessor(
        config=CoreConfig(backend=str(params.get("backend", "reference"))),
        invert_ratio=float(params["invert_ratio"]),
        sample_period=float(params["sample_period"]),
        seed=int(params["seed"]),
    )
    report = processor.evaluate([trace])
    # Eq. (1) as a Derived over its (internal) delay/guardband/TDP
    # inputs — bit-identical to report.efficiency, since ProcessorCost
    # evaluates the very same nbti_efficiency() call.
    ms = MetricSet()
    ms.gauge("delay", report.processor.delay, internal=True)
    ms.gauge("guardband", report.processor.guardband, internal=True)
    ms.gauge("tdp", report.processor.tdp, internal=True)
    ms.derived("efficiency", nbti_efficiency,
               args=("delay", "guardband", "tdp"))
    ms.gauge("baseline_delay", report.baseline_processor.delay,
             internal=True)
    ms.gauge("baseline_guardband", report.baseline_processor.guardband,
             internal=True)
    ms.gauge("baseline_tdp", report.baseline_processor.tdp,
             internal=True)
    ms.derived("baseline_efficiency", nbti_efficiency,
               args=("baseline_delay", "baseline_guardband",
                     "baseline_tdp"))
    ms.gauge("combined_cpi", report.combined_cpi)
    ms.gauge("adder_guardband", report.adder_guardband)
    ms.gauge("int_rf_base_bias", report.int_rf_bias[0])
    ms.gauge("int_rf_isv_bias", report.int_rf_bias[1])
    return ms
