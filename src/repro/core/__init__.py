"""Penelope: the paper's contribution.

- :mod:`repro.core.metric` — the NBTIefficiency metric (eq. 1) and the
  whole-processor combination rules (eqs. 2–4).
- :mod:`repro.core.combinational` — idle-input injection for
  combinational blocks (Section 3.1) and the synthetic-input-pair search
  of the adder case study (Section 4.3, Figures 4 and 5).
- :mod:`repro.core.policy` — the Figure 3 casuistic choosing ALL1 /
  ALL0 / ALL1-K% / ISV per bit cell.
- :mod:`repro.core.memory_like` — RINV registers and the protectors for
  explicitly managed blocks: register files (Section 4.4) and the
  scheduler (Section 4.5).
- :mod:`repro.core.cache_like` — invalidate-and-invert schemes for
  cache-like blocks: SetFixed / LineFixed / LineDynamic (Sections 3.2.1
  and 4.6).
- :mod:`repro.core.penelope` — the whole-processor integration
  (Section 4.7).
"""

from repro.core.metric import (
    nbti_efficiency,
    BlockCost,
    ProcessorCost,
    baseline_block_cost,
    invert_periodically_cost,
    BASELINE_GUARDBAND,
    INVERT_MODE_DELAY,
)
from repro.core.policy import (
    Technique,
    BitDirective,
    choose_technique,
    ideal_k,
)
from repro.core.combinational import (
    IdleInputInjector,
    synthetic_inputs,
    input_pairs,
    evaluate_input_pair,
    search_best_pair,
    adder_guardband_study,
)
from repro.core.memory_like import (
    RINVRegister,
    ISVRegisterFileProtector,
    SchedulerProtector,
    SchedulerPolicy,
    SchedulerProfiler,
    derive_scheduler_policy,
    PAPER_SCHEDULER_POLICY,
)
from repro.core.cache_like import (
    InversionScheme,
    SetFixedScheme,
    WayFixedScheme,
    LineFixedScheme,
    LineDynamicScheme,
    ProtectedCache,
    CacheStudyResult,
    run_cache_study,
    performance_loss,
)
from repro.core.penelope import PenelopeProcessor, PenelopeReport
from repro.core.resizing import (
    ResizingPlan,
    apply_resizing,
    plan_resizing,
    resizing_tradeoff,
)
from repro.core.inverted_mode import (
    PeriodicInversionScheme,
    inverted_mode_block_cost,
)

__all__ = [
    "ResizingPlan",
    "apply_resizing",
    "plan_resizing",
    "resizing_tradeoff",
    "PeriodicInversionScheme",
    "inverted_mode_block_cost",
    "nbti_efficiency",
    "BlockCost",
    "ProcessorCost",
    "baseline_block_cost",
    "invert_periodically_cost",
    "BASELINE_GUARDBAND",
    "INVERT_MODE_DELAY",
    "Technique",
    "BitDirective",
    "choose_technique",
    "ideal_k",
    "IdleInputInjector",
    "synthetic_inputs",
    "input_pairs",
    "evaluate_input_pair",
    "search_best_pair",
    "adder_guardband_study",
    "RINVRegister",
    "ISVRegisterFileProtector",
    "SchedulerProtector",
    "SchedulerPolicy",
    "SchedulerProfiler",
    "derive_scheduler_policy",
    "PAPER_SCHEDULER_POLICY",
    "InversionScheme",
    "SetFixedScheme",
    "WayFixedScheme",
    "LineFixedScheme",
    "LineDynamicScheme",
    "ProtectedCache",
    "CacheStudyResult",
    "run_cache_study",
    "performance_loss",
    "PenelopeProcessor",
    "PenelopeReport",
]
