"""Cross-module integration tests: the paper's end-to-end claims."""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import merge_bias_arrays, worst_imbalance
from repro.core import (
    LineDynamicScheme,
    LineFixedScheme,
    SetFixedScheme,
    run_cache_study,
)
from repro.core.cache_like import PAPER_DYNAMIC_THRESHOLDS
from repro.core.memory_like import ISVRegisterFileProtector
from repro.uarch import CoreConfig, TraceDrivenCore
from repro.uarch.cache import CacheConfig
from repro.uarch.ports import AdderPolicy
from repro.uarch.uop import INT_WIDTH
from repro.workloads import TraceGenerator, generate_address_stream


class TestMotivationSection11:
    """Section 1.1's bias observations emerge from the substrate."""

    @pytest.fixture(scope="class")
    def results(self):
        gen = TraceGenerator(seed=31)
        cores = []
        for suite in ("specint2000", "office", "multimedia"):
            trace = gen.generate(suite, length=4000)
            cores.append(TraceDrivenCore().run(trace))
        return cores

    def test_carry_in_mostly_zero(self, results):
        cins = [v[2] for res in results for v in res.adder_samples]
        assert 1.0 - sum(cins) / len(cins) > 0.90

    def test_int_rf_bias_band(self, results):
        merged = merge_bias_arrays(
            [r.int_rf.bias_to_zero for r in results],
            weights=[r.cycles for r in results],
        )
        assert merged.min() > 0.55
        assert merged.max() < 0.95

    def test_scheduler_has_nearly_always_zero_fields(self, results):
        # "some fields of the scheduler have almost 100% zero-signal
        # probability"
        worst = max(r.scheduler.worst_bias() for r in results)
        assert worst > 0.95


class TestAdderUtilisationSection43:
    def test_uniform_vs_priority_utilisation(self):
        gen = TraceGenerator(seed=32)
        trace = gen.generate("multimedia", length=6000)
        uniform = TraceDrivenCore(
            CoreConfig(adder_policy=AdderPolicy.UNIFORM)
        ).run(trace)
        priority = TraceDrivenCore(
            CoreConfig(adder_policy=AdderPolicy.PRIORITY)
        ).run(trace)
        u_min, u_max = min(uniform.adder_utilization), max(
            uniform.adder_utilization
        )
        p_min, p_max = min(priority.adder_utilization), max(
            priority.adder_utilization
        )
        # Uniform: all adders near the mean; priority: skewed spread.
        assert u_max - u_min < p_max - p_min
        assert p_min < u_min <= u_max < p_max


class TestRegisterFileSection44:
    def test_isv_end_to_end(self):
        gen = TraceGenerator(seed=33)
        traces = [gen.generate(s, length=4000)
                  for s in ("specint2000", "office")]
        base_bias, isv_bias = [], []
        for trace in traces:
            base = TraceDrivenCore().run(trace)
            protector = ISVRegisterFileProtector("int_rf", INT_WIDTH, 256.0)
            prot = TraceDrivenCore(hooks=protector).run(trace)
            base_bias.append(base.int_rf.bias_to_zero)
            isv_bias.append(prot.int_rf.bias_to_zero)
        __, base_worst = worst_imbalance(merge_bias_arrays(base_bias))
        merged = merge_bias_arrays(isv_bias)
        isv_worst = max(float(np.maximum(merged, 1 - merged).max()), 0.5)
        base_worst = max(base_worst, 1 - base_worst)
        # Figure 6's shape: ~0.9 baseline flattened toward 0.5.
        assert base_worst > 0.85
        assert isv_worst < base_worst - 0.2


class TestCacheStudyTable3:
    """The Table 3 orderings on a reduced workload."""

    @pytest.fixture(scope="class")
    def streams(self):
        return [
            generate_address_stream(suite, length=12_000, seed=34,
                                    trace_index=i)
            for suite in ("office", "server", "kernels", "spec2006")
            for i in range(1)
        ]

    @pytest.fixture(scope="class")
    def results(self, streams):
        config = CacheConfig(name="DL0-16K-8w", size_bytes=16 * 1024,
                             ways=8)
        set_fixed = run_cache_study(
            config, lambda: SetFixedScheme(0.5), streams
        )
        line_fixed = run_cache_study(
            config, lambda: LineFixedScheme(0.5), streams
        )
        line_dynamic = run_cache_study(
            config,
            lambda: LineDynamicScheme(
                ratio=0.6, threshold=PAPER_DYNAMIC_THRESHOLDS["DL0-16K"],
                warmup=2000, test_window=2000, period=12_000,
            ),
            streams,
        )
        return set_fixed, line_fixed, line_dynamic

    def test_losses_are_small(self, results):
        for study in results:
            assert 0.0 <= study.mean_loss < 0.08

    def test_dynamic_not_worse_than_fixed(self, results):
        set_fixed, line_fixed, line_dynamic = results
        assert line_dynamic.mean_loss <= set_fixed.mean_loss + 0.002
        assert line_dynamic.mean_loss <= line_fixed.mean_loss + 0.002

    def test_line_fixed_keeps_ratio(self, results):
        __, line_fixed, __ = results
        assert line_fixed.mean_inverted_ratio > 0.35


class TestSmallerCachesLoseMore:
    def test_size_ordering(self):
        streams = [
            generate_address_stream(suite, length=8000, seed=35)
            for suite in ("office", "spec2006", "server")
        ]
        losses = []
        for kb in (32, 16, 8):
            config = CacheConfig(name=f"DL0-{kb}K-8w",
                                 size_bytes=kb * 1024, ways=8)
            study = run_cache_study(config,
                                    lambda: LineFixedScheme(0.5), streams)
            losses.append(study.mean_loss)
        # Table 3: the loss grows as the cache shrinks.
        assert losses[0] <= losses[1] <= losses[2] + 1e-9
