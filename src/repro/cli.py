"""Command-line interface: run the paper's studies from a shell.

Examples
--------
::

    python -m repro.cli physics --duty 0.7
    python -m repro.cli adder --utilization 0.21
    python -m repro.cli regfile --suites specint2000 office
    python -m repro.cli caches --size-kb 16 --ways 8
    python -m repro.cli penelope --length 5000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_series, format_table
from repro.workloads import suite_names


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suites", nargs="+", default=["specint2000", "office"],
        choices=suite_names(), help="Table 1 suites to simulate",
    )
    parser.add_argument("--length", type=int, default=5000,
                        help="uops per trace")
    parser.add_argument("--seed", type=int, default=0)


def cmd_physics(args: argparse.Namespace) -> int:
    from repro.nbti.physics import ReactionDiffusionModel, steady_state_fill

    model = ReactionDiffusionModel()
    model.run_duty_cycle(args.duty, period=10.0, cycles=args.cycles)
    print(f"duty {args.duty:.0%}: transient fill {model.fill:.4f}, "
          f"steady state {steady_state_fill(args.duty):.4f}")
    series = {f"{d / 10:.0%}": steady_state_fill(d / 10)
              for d in range(0, 11)}
    print(format_series(series, title="steady-state N_IT fill vs duty",
                        percent=False))
    return 0


def cmd_adder(args: argparse.Namespace) -> int:
    from repro.circuits import build_ladner_fischer_adder
    from repro.core.combinational import (
        adder_guardband_study,
        search_best_pair,
    )

    adder = build_ladner_fischer_adder(width=args.width)
    print(f"built {args.width}-bit Ladner-Fischer adder: "
          f"{adder.gate_count} gates / {adder.pmos_count} PMOS")
    search = search_best_pair(adder)
    print(f"best idle pair: {search.best_pair} "
          f"(narrow fully-stressed fraction "
          f"{search.fractions()[search.best_pair]:.2%})")
    vectors = [(0x12345678 & ((1 << args.width) - 1), 42, 0)]
    study = adder_guardband_study(
        adder, vectors, utilizations=(args.utilization,),
        pair=search.best_pair,
    )
    print(format_series(study, title="guardband"))
    return 0


def cmd_regfile(args: argparse.Namespace) -> int:
    from repro.core.memory_like import ISVRegisterFileProtector
    from repro.uarch import TraceDrivenCore
    from repro.uarch.core import CompositeHooks
    from repro.uarch.uop import FP_WIDTH, INT_WIDTH
    from repro.workloads import TraceGenerator

    generator = TraceGenerator(seed=args.seed)
    rows = []
    for suite in args.suites:
        trace = generator.generate(suite, length=args.length)
        base = TraceDrivenCore().run(trace)
        hooks = CompositeHooks([
            ISVRegisterFileProtector("int_rf", INT_WIDTH),
            ISVRegisterFileProtector("fp_rf", FP_WIDTH),
        ])
        prot = TraceDrivenCore(hooks=hooks).run(trace)
        rows.append([
            suite,
            f"{base.int_rf.worst_bias:.1%}",
            f"{prot.int_rf.worst_bias:.1%}",
            f"{base.int_rf.free_fraction:.0%}",
        ])
    print(format_table(
        ["suite", "worst bias (base)", "worst bias (ISV)", "free time"],
        rows, title="register-file ISV study (paper: 89.9% -> 48.5%)",
    ))
    return 0


def cmd_caches(args: argparse.Namespace) -> int:
    from repro.core.cache_like import (
        LineDynamicScheme,
        LineFixedScheme,
        SetFixedScheme,
        run_cache_study,
    )
    from repro.uarch.cache import CacheConfig
    from repro.workloads import generate_address_stream

    config = CacheConfig(
        name=f"DL0-{args.size_kb}K-{args.ways}w",
        size_bytes=args.size_kb * 1024,
        ways=args.ways,
    )
    streams = [
        generate_address_stream(suite, length=args.length * 3,
                                seed=args.seed)
        for suite in args.suites
    ]
    rows = []
    for factory in (
        lambda: SetFixedScheme(0.5),
        lambda: LineFixedScheme(0.5),
        lambda: LineDynamicScheme(ratio=0.6, warmup=1000,
                                  test_window=1000, period=6000),
    ):
        study = run_cache_study(config, factory, streams)
        rows.append([study.scheme_name, f"{study.mean_loss:.2%}",
                     f"{study.mean_inverted_ratio:.0%}"])
    print(format_table(
        ["scheme", "mean perf loss", "achieved invert ratio"],
        rows, title=f"cache inversion study on {config.name}",
    ))
    return 0


def cmd_penelope(args: argparse.Namespace) -> int:
    from repro.core import PenelopeProcessor
    from repro.workloads import generate_workload

    workload = generate_workload(
        traces_per_suite=1, length=args.length,
        suites=args.suites, seed=args.seed,
    )
    report = PenelopeProcessor(seed=args.seed).evaluate(workload)
    rows = [
        [b.name, f"{b.guardband:.1%}", f"{b.efficiency:.2f}"]
        for b in report.block_costs
    ]
    rows.append(["penelope processor",
                 f"{report.processor.guardband:.1%}",
                 f"{report.efficiency:.2f}"])
    rows.append(["baseline (full guardband)", "20.0%",
                 f"{report.baseline_efficiency:.2f}"])
    print(format_table(["block", "guardband", "NBTIefficiency"], rows,
                       title="Penelope whole-processor study"))
    print(f"combined CPI {report.combined_cpi:.4f}; "
          f"INT bias {report.int_rf_bias[0]:.2f}->"
          f"{report.int_rf_bias[1]:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Penelope (MICRO 2007) reproduction studies",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    physics = commands.add_parser("physics", help="NBTI physics curves")
    physics.add_argument("--duty", type=float, default=0.7)
    physics.add_argument("--cycles", type=int, default=100)
    physics.set_defaults(func=cmd_physics)

    adder = commands.add_parser("adder", help="adder aging study")
    adder.add_argument("--width", type=int, default=32)
    adder.add_argument("--utilization", type=float, default=0.21)
    adder.set_defaults(func=cmd_adder)

    regfile = commands.add_parser("regfile", help="register-file ISV study")
    _add_workload_arguments(regfile)
    regfile.set_defaults(func=cmd_regfile)

    caches = commands.add_parser("caches", help="cache inversion study")
    _add_workload_arguments(caches)
    caches.add_argument("--size-kb", type=int, default=16)
    caches.add_argument("--ways", type=int, default=8)
    caches.set_defaults(func=cmd_caches)

    penelope = commands.add_parser("penelope",
                                   help="whole-processor study")
    _add_workload_arguments(penelope)
    penelope.set_defaults(func=cmd_penelope)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
