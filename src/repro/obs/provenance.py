"""Run provenance manifests: what produced a stored result, exactly.

A JSONL store row says *what* was measured; the manifest next to it
says *how*: which code revision, package version, interpreter, host,
spec, worker count and wall-clock produced the rows.  Every sweep with
a result store writes ``manifest.json`` into the store's directory
(last run wins — the store itself stays the complete history), and
``repro results`` / ``repro report`` surface it as a provenance header.

Everything here is failure-tolerant: a missing ``git`` binary, a
non-checkout install, or an unwritable directory degrade to ``None``
fields / a skipped write — provenance must never take a sweep down.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Mapping, Optional

#: Schema tag so later readers can evolve the format.
MANIFEST_SCHEMA = "repro.manifest/1"

#: Canonical manifest filename, written next to the result store.
MANIFEST_NAME = "manifest.json"


def manifest_path_for(store_path: str) -> str:
    """``manifest.json`` in the result store's directory."""
    return os.path.join(os.path.dirname(store_path) or ".", MANIFEST_NAME)


def git_revision(cwd: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """``{"revision": ..., "dirty": ...}`` of the working tree, if any."""
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, timeout=5,
            capture_output=True, text=True,
        )
        if revision.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, timeout=5,
            capture_output=True, text=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        "revision": revision.stdout.strip(),
        "dirty": bool(status.returncode == 0 and status.stdout.strip()),
    }


def spec_hash(spec_payload: Mapping[str, Any]) -> str:
    """Stable content hash of a sweep/study spec payload."""
    blob = json.dumps(spec_payload, sort_keys=True,
                      separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def environment_fingerprint() -> Dict[str, Any]:
    """Interpreter / platform / host identity of this process."""
    from repro import __version__

    return {
        "package_version": __version__,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
    }


def build_manifest(
    *,
    run_id: str,
    spec_payload: Mapping[str, Any],
    points: List[Dict[str, Any]],
    workers: int,
    started: float,
    finished: float,
    store_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    events_path: Optional[str] = None,
    fabric: Optional[Mapping[str, Any]] = None,
    resumed_from: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for one finished sweep.

    ``points`` entries carry ``key`` / ``params`` / ``cached`` /
    ``elapsed`` per design point (the per-point wall-time record the
    acceptance criteria ask for).  Fabric runs additionally record the
    batch plan (``fabric``: journal path, batch/lease parameters, steal
    and retry counts) and, on resume, the prior attempt's run id.
    """
    executed = [p for p in points if not p.get("cached")]
    slowest = max(executed, key=lambda p: p.get("elapsed", 0.0),
                  default=None)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "study": spec_payload.get("study"),
        "spec": dict(spec_payload),
        "spec_hash": spec_hash(spec_payload),
        "git": git_revision(),
        "environment": environment_fingerprint(),
        "workers": workers,
        "started": started,
        "finished": finished,
        "started_iso": _iso(started),
        "finished_iso": _iso(finished),
        "wall_time": finished - started,
        "points": points,
        "totals": {
            "points": len(points),
            "cache_hits": len(points) - len(executed),
            "executed": len(executed),
            "slowest_key": slowest["key"] if slowest else None,
            "slowest_elapsed": slowest["elapsed"] if slowest else None,
        },
        "store": store_path,
        "trace": trace_path,
        "events": events_path,
    }
    if fabric is not None:
        manifest["fabric"] = dict(fabric)
    if resumed_from is not None:
        manifest["resumed_from"] = resumed_from
    return manifest


def write_manifest(path: str, manifest: Mapping[str, Any]) -> None:
    """Atomic write (temp + rename): readers never see a torn manifest."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    temp = os.path.join(directory, f".{os.path.basename(path)}.{os.getpid()}.tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    os.replace(temp, path)


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest back, validating the schema tag."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: not a run manifest (expected schema "
            f"{MANIFEST_SCHEMA!r})"
        )
    return payload


def describe_manifest(manifest: Mapping[str, Any]) -> str:
    """One provenance line for CLI headers."""
    git = manifest.get("git") or {}
    revision = git.get("revision") or "no-git"
    if git.get("dirty"):
        revision = f"{revision[:12]}+dirty"
    else:
        revision = revision[:12]
    totals = manifest.get("totals") or {}
    line = (
        f"provenance: run {manifest.get('run_id', '?')} "
        f"@ {revision} v{(manifest.get('environment') or {}).get('package_version', '?')} "
        f"| {manifest.get('study', '?')} "
        f"{totals.get('points', '?')} points "
        f"({totals.get('cache_hits', '?')} cached) "
        f"in {manifest.get('wall_time', 0.0):.2f}s "
        f"on {manifest.get('workers', '?')} worker(s) "
        f"at {manifest.get('finished_iso', '?')}"
    )
    if manifest.get("resumed_from"):
        line += f" [resumed from {manifest['resumed_from']}]"
    return line


def _iso(epoch: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(epoch))
