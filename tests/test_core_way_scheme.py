"""Tests for the way-granularity inversion scheme."""

import random

import pytest

from repro.core.cache_like import ProtectedCache, WayFixedScheme
from repro.uarch.cache import Cache, CacheConfig, LineState

CONFIG = CacheConfig(name="DL0-8K-4w", size_bytes=8 * 1024, ways=4)


def stream(n=4000, span=2048, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(span // 4) * 4 for __ in range(n)]


class TestWayFixedScheme:
    def test_inverted_ways_stay_inverted(self):
        cache = Cache(CONFIG)
        scheme = WayFixedScheme(0.5, rotation_period=10_000)
        protected = ProtectedCache(cache, scheme)
        for address in stream():
            protected.access(address)
        for way in scheme.inverted_ways():
            for set_index in range(CONFIG.sets):
                assert cache.line_state(set_index, way) is \
                    LineState.INVERTED

    def test_population_is_exact(self):
        cache = Cache(CONFIG)
        scheme = WayFixedScheme(0.5, rotation_period=10_000)
        ProtectedCache(cache, scheme)
        assert cache.inverted_count() == CONFIG.lines // 2
        assert len(scheme.inverted_ways()) == 2

    def test_acts_as_lower_associativity(self):
        # A working set needing all four ways per set thrashes.
        cache = Cache(CONFIG)
        protected = ProtectedCache(cache, WayFixedScheme(0.5,
                                                         rotation_period=10**6))
        sets = CONFIG.sets
        line = CONFIG.line_bytes
        # Four lines mapping to set 0.
        addresses = [i * sets * line for i in range(4)]
        for __ in range(8):
            for address in addresses:
                protected.access(address)
        # Only two live ways: at most two of the four lines resident.
        hits = protected.stats.hits
        protected_rate = hits / protected.stats.accesses
        baseline = Cache(CONFIG)
        for __ in range(8):
            for address in addresses:
                baseline.access(address)
        assert protected_rate < baseline.stats.hit_rate

    def test_small_working_set_unharmed(self):
        base = Cache(CONFIG)
        addresses = stream(span=1024)
        for address in addresses:
            base.access(address)
        protected = ProtectedCache(Cache(CONFIG),
                                   WayFixedScheme(0.5,
                                                  rotation_period=10**6))
        for address in addresses:
            protected.access(address)
        assert protected.stats.miss_rate <= base.stats.miss_rate + 0.02

    def test_rotation_moves_window(self):
        cache = Cache(CONFIG)
        scheme = WayFixedScheme(0.5, rotation_period=50)
        protected = ProtectedCache(cache, scheme)
        before = tuple(scheme.inverted_ways())
        # 120 accesses = 2 rotations (not a multiple of the 4-way cycle).
        for address in stream(120):
            protected.access(address)
        assert tuple(scheme.inverted_ways()) != before
        assert cache.inverted_count() == CONFIG.lines // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WayFixedScheme(ratio=1.0)
        with pytest.raises(ValueError):
            WayFixedScheme(rotation_period=0)
        cache = Cache(CacheConfig(name="direct", size_bytes=4096, ways=1))
        with pytest.raises(ValueError):
            ProtectedCache(cache, WayFixedScheme(0.5))


class TestVictimPolicyInteraction:
    def test_fills_never_land_in_inverted_ways(self):
        cache = Cache(CONFIG)
        scheme = WayFixedScheme(0.5, rotation_period=10**6)
        protected = ProtectedCache(cache, scheme)
        inverted = set(scheme.inverted_ways())
        for address in stream(2000, span=64 * 1024):
            protected.access(address)
        for set_index in range(CONFIG.sets):
            for way in inverted:
                assert cache.line_state(set_index, way) is \
                    LineState.INVERTED

    def test_cached_lines_are_rereferencable(self):
        protected = ProtectedCache(Cache(CONFIG),
                                   WayFixedScheme(0.5,
                                                  rotation_period=10**6))
        protected.access(0x100)
        assert protected.access(0x100)
