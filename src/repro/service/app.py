"""The sweep service: asyncio HTTP+WebSocket frontend over one store.

Routes (all JSON, all under ``/v1``)::

    GET  /v1/healthz            liveness + drain state (no auth)
    POST /v1/jobs               submit a StudySpec/SweepSpec payload
    GET  /v1/jobs               list jobs
    GET  /v1/jobs/{id}          one job's status
    GET  /v1/jobs/{id}/result   terminal rows (409 until done)
    GET  /v1/results            store query (?key=… | ?study=…&limit=…)
    GET  /v1/ws/jobs/{id}       WebSocket: telemetry + event stream

Submit bodies are either a bare spec payload or ``{"spec": …,
"fabric": bool, "workers": n}``.  The lifecycle is deliberately
boring: one process, one store directory, jobs deduplicated by spec
hash (HTTP 200 on a dedup hit, 202 on a fresh launch), SIGTERM → stop
accepting, ask fabric runs to journal out, drain, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Any, Optional

from repro.config.specs import SpecError
from repro.obs.log import EventLog, new_run_id
from repro.service import ws
from repro.service.auth import TokenAuth
from repro.service.http import (
    HTTPError,
    Request,
    json_response,
    read_request,
)
from repro.service.hub import CLOSE
from repro.service.jobs import DONE, JobManager

__all__ = ["SweepService"]

#: Close code sent to subscribers dropped for falling behind.
WS_CLOSE_SLOW = 1013


class SweepService:
    """One service instance: a bound socket plus a job manager."""

    def __init__(
        self,
        directory: str,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        max_jobs: int = 2,
        default_workers: int = 1,
        default_fabric: bool = False,
        drain_grace: float = 30.0,
        ready_file: Optional[str] = None,
        quiet: bool = False,
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.host = host
        self.port = port
        self.auth = TokenAuth(token)
        self.max_jobs = max_jobs
        self.default_workers = default_workers
        self.default_fabric = default_fabric
        self.drain_grace = drain_grace
        self.ready_file = ready_file
        self.quiet = quiet
        self.manager: Optional[JobManager] = None
        self.log: Optional[EventLog] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> int:
        """Bind the socket and start accepting; returns the real port."""
        loop = asyncio.get_running_loop()
        os.makedirs(self.directory, exist_ok=True)
        self.log = EventLog(
            path=os.path.join(self.directory, "events.jsonl"),
            run_id=f"svc-{new_run_id()[:8]}")
        self.manager = JobManager(
            self.directory, max_jobs=self.max_jobs,
            default_workers=self.default_workers, log=self.log,
            loop=loop)
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers(loop)
        self.log.info("service_start", host=self.host, port=self.port,
                      store=self.directory, auth=self.auth.enabled,
                      max_jobs=self.max_jobs)
        if self.ready_file:
            self._write_ready_file()
        if not self.quiet:
            print(f"repro service listening on "
                  f"http://{self.host}:{self.port} "
                  f"(store {self.directory})", flush=True)
        return self.port

    def _install_signal_handlers(
            self, loop: asyncio.AbstractEventLoop) -> None:
        for signame in ("SIGTERM", "SIGINT"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread (tests) or platform without signal
                # support: request_stop() is still callable directly.
                return

    def _write_ready_file(self) -> None:
        # Atomic write so a poller never reads a torn JSON file.
        assert self.ready_file is not None
        payload = json.dumps({
            "url": f"http://{self.host}:{self.port}",
            "pid": os.getpid(),
            "store": self.directory,
        }, sort_keys=True)
        tmp = f"{self.ready_file}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, self.ready_file)

    def request_stop(self) -> None:
        """Begin graceful shutdown (signal handler / test hook)."""
        if self._stop is not None and not self._stop.is_set():
            self._stop.set()

    async def run(self) -> int:
        """Serve until stopped, then drain; the ``repro serve`` body."""
        await self.start()
        assert self._stop is not None
        await self._stop.wait()
        await self.shutdown()
        return 0

    async def shutdown(self) -> None:
        """Stop accepting, drain jobs, close everything."""
        assert self.manager is not None and self.log is not None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.log.info("service_drain",
                      jobs=len(self.manager.jobs()))
        summary = await self.manager.drain(grace=self.drain_grace)
        self.log.info("service_stop", **summary)
        self.manager.close()
        if not self.quiet:
            unfinished = summary.get("unfinished") or []
            note = (f"; resume with repro sweep --resume "
                    f"{' '.join(unfinished)}" if unfinished else "")
            print(f"repro service drained "
                  f"({len(unfinished)} unfinished job(s)){note}",
                  flush=True)

    # -- connection handling --------------------------------------------
    async def _handle_connection(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter) -> None:
        keep_open = False
        try:
            request = await read_request(reader)
            if request is None:
                return
            keep_open = await self._dispatch(request, reader, writer)
        except HTTPError as exc:
            await self._send(writer, json_response(
                exc.status, {"error": exc.message}))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # a handler bug must not kill accept
            if self.log is not None:
                self.log.error("request_error",
                               error=f"{type(exc).__name__}: {exc}")
            try:
                await self._send(writer, json_response(
                    500, {"error": "internal error"}))
            except (ConnectionError, OSError):
                pass
        finally:
            if not keep_open:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    async def _dispatch(self, request: Request,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; True when the connection stays open."""
        assert self.manager is not None
        path = request.path.rstrip("/") or "/"
        if request.method == "GET" and path == "/v1/healthz":
            await self._send(writer, json_response(200, {
                "status": "ok",
                "draining": self.manager.draining,
                "jobs": len(self.manager.jobs()),
            }))
            return False
        if not self.auth.check(request.headers):
            if self.log is not None:
                self.log.warning("auth_denied", path=path)
            await self._send(writer, json_response(
                401, {"error": "missing or invalid bearer token"}))
            return False
        if request.method == "POST" and path == "/v1/jobs":
            await self._send(writer, self._submit(request))
            return False
        if request.method == "GET" and path == "/v1/jobs":
            await self._send(writer, json_response(200, {
                "jobs": [job.status()
                         for job in self.manager.jobs()],
            }))
            return False
        if request.method == "GET" and path.startswith("/v1/jobs/"):
            await self._send(writer, self._job_query(path))
            return False
        if request.method == "GET" and path == "/v1/results":
            await self._send(writer, self._results(request))
            return False
        if request.method == "GET" and path.startswith("/v1/ws/jobs/"):
            return await self._websocket(request, reader, writer,
                                         path[len("/v1/ws/jobs/"):])
        raise HTTPError(404, f"no route for {request.method} {path}")

    # -- HTTP handlers --------------------------------------------------
    def _submit(self, request: Request) -> bytes:
        assert self.manager is not None
        if self.manager.draining:
            raise HTTPError(503, "service is draining")
        body = request.json()
        if not isinstance(body, dict):
            raise HTTPError(400, "submit body must be a JSON object")
        spec_payload = body.get("spec", body)
        fabric = body.get("fabric", self.default_fabric)
        workers = body.get("workers")
        if workers is not None and (
                not isinstance(workers, int) or workers < 1):
            raise HTTPError(400, "workers must be a positive integer")
        try:
            job, deduplicated = self.manager.submit(
                spec_payload, fabric=bool(fabric), workers=workers)
        except (SpecError, KeyError, ValueError, TypeError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise HTTPError(400, f"bad spec: {message}") from exc
        status = 200 if deduplicated else 202
        return json_response(status, {
            "job": job.run_id,
            "deduplicated": deduplicated,
            **job.status(),
        })

    def _job_query(self, path: str) -> bytes:
        assert self.manager is not None
        tail = path[len("/v1/jobs/"):]
        if tail.endswith("/result"):
            job_id, want_result = tail[:-len("/result")], True
        else:
            job_id, want_result = tail, False
        job = self.manager.get(job_id)
        if job is None or "/" in job_id:
            raise HTTPError(404, f"unknown job {job_id!r}")
        if not want_result:
            return json_response(200, job.status())
        if job.state != DONE:
            raise HTTPError(
                409, f"job {job_id} is {job.state}, not done")
        return json_response(200, {
            "job": job.run_id,
            "run_id": job.run_id,
            "study": job.spec.study,
            "manifest": job.manifest_path,
            "rows": job.results,
        })

    def _results(self, request: Request) -> bytes:
        assert self.manager is not None
        key = request.param("key")
        study = request.param("study")
        try:
            limit = int(request.param("limit", "100") or "100")
        except ValueError as exc:
            raise HTTPError(400, "limit must be an integer") from exc
        rows = self.manager.query_results(key=key, study=study,
                                          limit=limit)
        if key and not rows:
            raise HTTPError(404, f"no stored result for key {key!r}")
        return json_response(200, {"records": rows})

    # -- WebSocket ------------------------------------------------------
    async def _websocket(self, request: Request,
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         job_id: str) -> bool:
        assert self.manager is not None
        job = self.manager.get(job_id)
        if job is None:
            raise HTTPError(404, f"unknown job {job_id!r}")
        try:
            response = ws.handshake_response(request.headers)
        except ws.HandshakeError as exc:
            raise HTTPError(400, str(exc)) from exc
        await self._send(writer, response)
        if self.log is not None:
            self.log.info("ws_subscribe", job=job_id)
        sub = job.hub.subscribe()
        try:
            await ws.send_text(writer, json.dumps({
                "type": "hello",
                "job": job.run_id,
                "run_id": job.run_id,
                "state": job.state,
                "study": job.spec.study,
                "total": job.total,
            }, sort_keys=True))
            sender = asyncio.create_task(self._ws_send(writer, sub))
            receiver = asyncio.create_task(
                self._ws_receive(reader, writer))
            done, pending = await asyncio.wait(
                {sender, receiver},
                return_when=asyncio.FIRST_COMPLETED)
            for task in pending:
                task.cancel()
            for task in pending:
                try:
                    await task
                except (asyncio.CancelledError, ConnectionError,
                        OSError):
                    pass
        except (ConnectionError, OSError):
            pass
        finally:
            job.hub.unsubscribe(sub)
            if sub.dropped and self.log is not None:
                self.log.warning("ws_dropped", job=job_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return True

    async def _ws_send(self, writer: asyncio.StreamWriter,
                       sub: Any) -> None:
        """Queue → frames; ends at the hub's close sentinel."""
        while True:
            message = await sub.queue.get()
            if message is CLOSE:
                break
            await ws.send_text(writer, json.dumps(
                message, sort_keys=True, default=str))
        code = WS_CLOSE_SLOW if sub.dropped else 1000
        reason = "subscriber too slow" if sub.dropped else "stream end"
        await ws.send_close(writer, code, reason)

    async def _ws_receive(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Client frames: answer pings, honour close, ignore data."""
        decoder = ws.FrameDecoder(require_mask=True)
        assembler = ws.MessageAssembler()
        while True:
            data = await reader.read(4096)
            if not data:
                return
            try:
                frames = decoder.feed(data)
            except ws.WSProtocolError as exc:
                await ws.send_close(writer, exc.code, str(exc))
                return
            for frame in frames:
                for opcode, payload in assembler.feed(frame):
                    if opcode == ws.OP_PING:
                        await ws.send_frame(writer, ws.OP_PONG,
                                            payload)
                    elif opcode == ws.OP_CLOSE:
                        code, __ = ws.parse_close(payload)
                        await ws.send_close(writer, code or 1000)
                        return
