"""Extension: the Vmin / power benefit (Section 1, Conclusions).

"Vmin does not increase as much in memory-like structures by mitigating
NBTI, hence leading to higher power efficiency of such structures."
This bench quantifies that claim for the register file using the
measured baseline/ISV biases and the first-order SRAM power model, plus
a way-granularity inversion data point (the paper's third granularity).
"""

import pytest

from repro.analysis import format_table
from repro.core.cache_like import WayFixedScheme, run_cache_study
from repro.core.memory_like import ISVRegisterFileProtector
from repro.nbti.power import ArrayPowerModel
from repro.uarch import TraceDrivenCore
from repro.uarch.cache import CacheConfig
from repro.uarch.uop import INT_WIDTH
from repro.workloads import TraceGenerator, generate_address_stream

from conftest import write_result


def measure_biases():
    trace = TraceGenerator(seed=88).generate("specint2000", length=8000)
    base = TraceDrivenCore().run(trace)
    protector = ISVRegisterFileProtector("int_rf", INT_WIDTH, 512.0)
    prot = TraceDrivenCore(hooks=protector).run(trace)
    return base.int_rf.worst_bias, prot.int_rf.worst_bias


def test_ablation_vmin_power(benchmark):
    base_bias, isv_bias = benchmark.pedantic(measure_biases, rounds=1,
                                             iterations=1)
    model = ArrayPowerModel()
    base_vmin = model.vmin(base_bias)
    isv_vmin = model.vmin(isv_bias)
    assert isv_vmin < base_vmin

    rows = []
    savings_by_target = {}
    for target in (0.60, 0.70, 0.80):
        savings = model.savings_from_balancing(base_bias, isv_bias,
                                               target)
        savings_by_target[target] = savings
        rows.append([
            f"{target:.2f} V",
            f"{model.power_at_scaled_voltage(base_bias, target):.3f}",
            f"{model.power_at_scaled_voltage(isv_bias, target):.3f}",
            f"{savings:.1%}",
        ])
    # Deeper scaling exposes more of the Vmin benefit.
    ordered = [savings_by_target[t] for t in (0.80, 0.70, 0.60)]
    assert ordered == sorted(ordered)
    assert savings_by_target[0.60] > 0.0

    # The way-granularity scheme (Section 3.2.1's third option): cheap
    # on small working sets.
    streams = [generate_address_stream("office", 8000, seed=88)]
    way = run_cache_study(
        CacheConfig(name="DL0-16K-8w", size_bytes=16 * 1024, ways=8),
        lambda: WayFixedScheme(0.5), streams,
    )

    text = format_table(
        ["voltage target", "baseline power", "ISV power", "savings"],
        rows,
        title=(f"Extension — Vmin/power benefit (INT RF, bias "
               f"{base_bias:.1%} -> {isv_bias:.1%}; Vmin "
               f"{base_vmin:.3f}V -> {isv_vmin:.3f}V)"),
    )
    text += (f"\nWayFixed50% on DL0-16K (office): perf loss "
             f"{way.mean_loss:.2%}, inverted ratio "
             f"{way.mean_inverted_ratio:.0%}")
    write_result("ablation_vmin_power.txt", text)
