"""Minimal asyncio HTTP/1.1: request parsing and response rendering.

Exactly the subset the sweep service needs — request line, headers,
``Content-Length`` bodies, query strings — kept separate from routing
so the parser is unit-testable over ``asyncio.StreamReader`` pairs.
Every response carries ``Connection: close``: one request per
connection keeps the server free of keep-alive timer bookkeeping, and
the WebSocket upgrade path (the only long-lived connection) bypasses
this module entirely after the 101.
"""

from __future__ import annotations

import asyncio
import json
from http import HTTPStatus
from typing import Any, Dict, List, NamedTuple, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HTTPError",
    "Request",
    "json_response",
    "read_request",
    "render_response",
]

MAX_HEADER_LINE = 16 * 1024
MAX_HEADERS = 64
MAX_BODY = 16 * 1024 * 1024


class HTTPError(Exception):
    """Abort request handling with a specific status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request(NamedTuple):
    """One parsed request."""

    method: str
    target: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    body: bytes

    def param(self, name: str, default: Optional[str] = None
              ) -> Optional[str]:
        """Last value of a query parameter (curl-friendly override)."""
        values = self.query.get(name)
        return values[-1] if values else default

    def json(self) -> Any:
        """The body as JSON; 400 on syntax errors."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        raise HTTPError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(431, "header line too long") from exc
    if len(line) > MAX_HEADER_LINE:
        raise HTTPError(431, "header line too long")
    return line


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise HTTPError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(505, f"unsupported version {version!r}")
    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if raw in (b"\r\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise HTTPError(431, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(501, "chunked request bodies not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HTTPError(400, "bad Content-Length") from exc
        if length < 0 or length > MAX_BODY:
            raise HTTPError(413, f"body over {MAX_BODY} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HTTPError(400, "truncated body") from exc
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def render_response(status: int, body: bytes = b"",
                    content_type: str = "application/json",
                    extra_headers: Tuple[Tuple[str, str], ...] = (),
                    ) -> bytes:
    """Serialize one complete ``Connection: close`` response."""
    try:
        reason = HTTPStatus(status).phrase
    except ValueError:
        reason = "Unknown"
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Server: repro-sweep-service",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines += [f"{name}: {value}" for name, value in extra_headers]
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(status: int, payload: Any) -> bytes:
    """A JSON response (sorted keys: byte-stable for tests/curl)."""
    body = (json.dumps(payload, sort_keys=True, default=str)
            + "\n").encode("utf-8")
    return render_response(status, body)
