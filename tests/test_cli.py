"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        invocations = {
            "physics": ["physics"],
            "adder": ["adder"],
            "regfile": ["regfile", "--length", "100"],
            "caches": ["caches", "--length", "100"],
            "penelope": ["penelope", "--length", "100"],
            "list-suites": ["list-suites"],
            "sweep": ["sweep", "caches"],
            "results": ["results"],
            "bench-smoke": ["bench-smoke", "--scale", "50"],
            "run": ["run", "--config", "study.json"],
            "show-config": ["show-config", "--study", "caches"],
            "report": ["report", "--study", "caches"],
            "trace": ["trace", "export", "out.trace.json"],
            "serve": ["serve", "--port", "0", "--token-env",
                      "REPRO_TOKEN", "--max-jobs", "4"],
            "trace-follow": ["trace", "events", "--follow",
                             "--run-id", "abc"],
        }
        for argv in invocations.values():
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regfile", "--suites", "bogus"])


class TestCommands:
    def test_physics(self, capsys):
        assert main(["physics", "--duty", "0.6", "--cycles", "20"]) == 0
        out = capsys.readouterr().out
        assert "steady state" in out

    def test_adder_small_width(self, capsys):
        assert main(["adder", "--width", "8",
                     "--utilization", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "best idle pair" in out
        assert "(1, 8)" in out

    def test_regfile(self, capsys):
        assert main(["regfile", "--suites", "kernels",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "worst bias" in out

    def test_caches(self, capsys):
        assert main(["caches", "--suites", "office",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "LineDynamic60%" in out

    def test_penelope(self, capsys):
        assert main(["penelope", "--suites", "kernels",
                     "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "penelope processor" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_list_suites(self, capsys):
        assert main(["list-suites"]) == 0
        out = capsys.readouterr().out
        for name in ("specint2000", "office", "server"):
            assert name in out
        assert "531" in out  # Table 1 total trace count

    def test_sweep_and_results(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        argv = ["sweep", "caches", "--grid", "ratio=0.4,0.6",
                "--suites", "office", "kernels", "--length", "600",
                "--store", store, "--verbose"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "0 cache hits, 4 executed" in out
        assert "mean_loss" in out

        # Immediate rerun: every point comes from the result store.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 cache hits, 0 executed" in out

        assert main(["results", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 stored results" in out
        assert "suite=office" in out

        assert main(["results", "--store", store, "--study",
                     "regfile"]) == 0
        assert "no stored results" in capsys.readouterr().out

    def test_report_renders_stored_sweep(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(["sweep", "caches", "--grid", "ratio=0.4,0.6",
                     "--suites", "office", "kernels", "--length", "600",
                     "--store", store]) == 0
        capsys.readouterr()

        # Default grouping: every parameter that varies (ratio, suite).
        assert main(["report", "--study", "caches", "--store",
                     store]) == 0
        out = capsys.readouterr().out
        assert "4 stored points" in out
        assert "mean_loss" in out and "office" in out

        # Grouping across ratios: scheme_name becomes an explicit
        # (mixed) cell instead of a silently dropped column.
        assert main(["report", "--study", "caches", "--store", store,
                     "--group-by", "suite",
                     "--metrics", "scheme_name,mean_loss"]) == 0
        out = capsys.readouterr().out
        assert "(mixed)" in out

    def test_report_bad_inputs_exit_cleanly(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(["report", "--store", store]) == 2
        assert "--study" in capsys.readouterr().err

        assert main(["report", "--study", "caches", "--store",
                     store]) == 1
        assert "no stored results" in capsys.readouterr().err

        assert main(["sweep", "caches", "--grid", "ratio=0.4",
                     "--suites", "office", "--length", "400",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["report", "--study", "caches", "--store", store,
                     "--group-by", "bogus"]) == 2
        assert "unknown --group-by" in capsys.readouterr().err
        assert main(["report", "--study", "caches", "--store", store,
                     "--metrics", "bogus"]) == 2
        assert "unknown metric" in capsys.readouterr().err

        assert main(["report", "--intervals",
                     str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_renders_interval_artefact(self, capsys, tmp_path):
        import random

        from repro.metrics import IntervalTelemetry
        from repro.uarch.cache import Cache, CacheConfig

        cache = Cache(CacheConfig(name="DL0-4K-4w",
                                  size_bytes=4 * 1024, ways=4))
        telemetry = IntervalTelemetry(cache, every=500)
        rng = random.Random(4)
        telemetry.replay(
            [rng.randrange(1 << 14) * 64 for __ in range(1500)]
        )
        path = tmp_path / "intervals.json"
        telemetry.save(str(path))

        assert main(["report", "--intervals", str(path)]) == 0
        out = capsys.readouterr().out
        assert "misses" in out and "0..500" in out

        assert main(["report", "--intervals", str(path),
                     "--metrics", "bogus"]) == 2
        assert "unknown or non-numeric" in capsys.readouterr().err

    def test_sweep_help_epilog_in_sync_with_registry(self, capsys):
        from repro.experiments import study_names

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in study_names():
            assert name in out

    def test_bench_smoke_rejects_bad_inputs(self, capsys, tmp_path):
        assert main(["bench-smoke", "--path",
                     str(tmp_path / "missing")]) == 2
        assert "not found" in capsys.readouterr().err
        assert main(["bench-smoke", "--scale", "0"]) == 2
        assert "--scale" in capsys.readouterr().err

    def test_bench_smoke_executes_selected_bench(self, capsys,
                                                 tmp_path, monkeypatch):
        # One real (fast) bench through the full smoke plumbing: env
        # wiring, bench_*.py collection override, artefact redirect.
        monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        results = tmp_path / "smoke-results"
        assert main(["bench-smoke", "--scale", "50",
                     "--results-dir", str(results),
                     "--only", "fig1"]) == 0
        assert (results / "fig1_nbti_physics.json").exists()

    def test_show_config_emits_loadable_study_spec(self, capsys):
        from repro.config import StudySpec

        assert main(["show-config", "--study", "caches"]) == 0
        out = capsys.readouterr().out
        spec = StudySpec.from_json(out)
        assert spec.study == "caches"
        assert spec.processor.dl0.size_kb == 16  # the study's default
        assert spec.protection.dl0.name == "line_fixed"

    def test_show_config_unknown_study(self, capsys):
        assert main(["show-config", "--study", "bogus"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_run_config_end_to_end(self, capsys, tmp_path):
        """show-config output, edited, drives a sweep through `run`."""
        from repro.config import StudySpec, with_path

        assert main(["show-config", "--study", "caches"]) == 0
        spec = StudySpec.from_json(capsys.readouterr().out)
        spec = with_path(spec, "workload.length", 600)
        spec = spec.replace(
            sweep={"protection.dl0.params.ratio": [0.4, 0.6]})
        config = tmp_path / "study.json"
        config.write_text(spec.to_json())
        store = str(tmp_path / "store.jsonl")

        argv = ["run", "--config", str(config), "--store", store,
                "--verbose"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "0 cache hits, 2 executed" in out
        assert "mean_loss" in out

        # Rerun: the result store serves both points.
        assert main(argv) == 0
        assert "2 cache hits, 0 executed" in capsys.readouterr().out

        # The spec-driven run shares the store with flat sweeps: the
        # same points arrive as pure cache hits via `sweep`.
        assert main(["sweep", "caches", "--grid", "ratio=0.4,0.6",
                     "--suites", "specint2000", "--length", "600",
                     "--store", store]) == 0
        assert "2 cache hits, 0 executed" in capsys.readouterr().out

    def test_run_bad_inputs_exit_cleanly(self, capsys, tmp_path):
        missing = tmp_path / "missing.json"
        assert main(["run", "--config", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err

        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        assert main(["run", "--config", str(bad_json)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

        bad_key = tmp_path / "bad_key.json"
        bad_key.write_text('{"study": "caches", "procesor": {}}')
        assert main(["run", "--config", str(bad_key)]) == 2
        assert "procesor" in capsys.readouterr().err

        unknown_study = tmp_path / "unknown.json"
        unknown_study.write_text('{"study": "bogus"}')
        assert main(["run", "--config", str(unknown_study),
                     "--no-store"]) == 2
        assert "unknown study" in capsys.readouterr().err

        bad_axis = tmp_path / "bad_axis.json"
        bad_axis.write_text(
            '{"study": "caches", '
            '"sweep": {"protection.l2.ratio": [0.5]}}')
        assert main(["run", "--config", str(bad_axis),
                     "--no-store"]) == 2
        assert "sweepable" in capsys.readouterr().err

        bad_metrics = tmp_path / "ok.json"
        bad_metrics.write_text(
            '{"study": "caches", "workload": {"length": 500}}')
        assert main(["run", "--config", str(bad_metrics), "--no-store",
                     "--metrics", "mean_losss"]) == 2
        assert "unknown metric" in capsys.readouterr().err

        null_section = tmp_path / "null.json"
        null_section.write_text('{"study": "caches", "workload": null}')
        assert main(["run", "--config", str(null_section)]) == 2
        assert "not null" in capsys.readouterr().err

        # An edit the study cannot honour must error, not no-op.
        unconsumed = tmp_path / "unconsumed.json"
        unconsumed.write_text(
            '{"study": "regfile", '
            '"protection": {"dl0": {"name": "set_fixed"}}}')
        assert main(["run", "--config", str(unconsumed),
                     "--no-store"]) == 2
        assert "does not consume" in capsys.readouterr().err

    def test_sweep_study_option_alias(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(["sweep", "--study", "caches", "--grid",
                     "ratio=0.4", "--suites", "office", "--length",
                     "400", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 points" in out and "1 executed" in out

        # Positional and --study conflict when they disagree...
        assert main(["sweep", "caches", "--study", "regfile",
                     "--no-store"]) == 2
        assert "conflicts" in capsys.readouterr().err
        # ...and omitting both is an error, not a crash.
        assert main(["sweep", "--no-store"]) == 2
        assert "pass a study" in capsys.readouterr().err

    def test_sweep_quiet_suppresses_output(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(["sweep", "caches", "--grid", "ratio=0.4",
                     "--suites", "office", "--length", "400",
                     "--store", store, "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_sweep_json_progress(self, capsys, tmp_path):
        import json

        store = str(tmp_path / "store.jsonl")
        assert main(["sweep", "caches", "--grid", "ratio=0.4,0.6",
                     "--suites", "office", "--length", "400",
                     "--store", store, "--progress", "json"]) == 0
        events = [json.loads(line) for line in
                  capsys.readouterr().out.splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds == ["start", "point", "point", "summary"]
        # The first event announces where to watch: a consumer can
        # attach to the run (resume, tail events) before any point
        # lands.
        assert events[0]["run_id"] == events[-1]["run_id"]
        assert events[0]["store"] == store
        assert events[0]["total"] == 2
        assert events[-1]["points"] == 2
        assert events[-1]["executed"] == 2
        assert events[-1]["run_id"]

    def test_sweep_footer_names_slowest_point(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(["sweep", "caches", "--grid", "ratio=0.4,0.6",
                     "--suites", "office", "--length", "400",
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "slowest point:" in out
        # All-cached rerun: nothing executed, so no slowest line.
        assert main(["sweep", "caches", "--grid", "ratio=0.4,0.6",
                     "--suites", "office", "--length", "400",
                     "--store", store]) == 0
        assert "slowest point:" not in capsys.readouterr().out

    def test_sweep_trace_writes_artefacts_and_exports(self, capsys,
                                                      tmp_path):
        """The acceptance-criteria pipeline: a traced sweep writes a
        manifest + raw spans, and `repro trace export` turns the spans
        into Chrome trace JSON."""
        import json

        from repro.obs.trace import TRACER

        store = str(tmp_path / "store.jsonl")
        try:
            assert main(["sweep", "--study", "caches", "--trace",
                         "--grid", "ratio=0.4,0.6", "--suites",
                         "office", "--length", "400", "--store",
                         store]) == 0
        finally:
            TRACER.disable()
            TRACER.clear()
        out = capsys.readouterr().out
        assert "trace:" in out

        manifest = json.load(open(tmp_path / "manifest.json"))
        assert manifest["schema"] == "repro.manifest/1"
        assert manifest["trace"] == str(tmp_path / "trace.json")
        chrome = json.load(open(tmp_path / "trace.json"))
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {"sweep.run", "sweep.execute", "study.caches",
                "cache.replay", "scheme.replay"} <= names

        exported = str(tmp_path / "out.trace.json")
        assert main(["trace", "export", exported, "--spans",
                     str(tmp_path / "spans.jsonl")]) == 0
        assert "Perfetto" in capsys.readouterr().out
        assert json.load(open(exported))["traceEvents"]

        assert main(["trace", "events", "--events",
                     str(tmp_path / "events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out and "point_done" in out

    def test_trace_bad_inputs_exit_cleanly(self, capsys, tmp_path):
        assert main(["trace", "export"]) == 2
        assert "output path" in capsys.readouterr().err
        assert main(["trace", "export", str(tmp_path / "o.json"),
                     "--spans", str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "other/1"}\n')
        assert main(["trace", "export", str(tmp_path / "o.json"),
                     "--spans", str(bad)]) == 2
        assert "not a span file" in capsys.readouterr().err
        assert main(["trace", "events", "--events",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_results_and_report_show_provenance_header(self, capsys,
                                                       tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert main(["sweep", "caches", "--grid", "ratio=0.4",
                     "--suites", "office", "--length", "400",
                     "--store", store, "--quiet"]) == 0
        assert main(["results", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "provenance: run" in out
        assert main(["report", "--study", "caches", "--store",
                     store]) == 0
        assert "provenance: run" in capsys.readouterr().out

    def test_sweep_point_error_exits_cleanly_with_point_name(
            self, capsys):
        # A study raising mid-point must name the failing point's hash
        # and params, not dump a traceback.
        assert main(["sweep", "caches", "--grid", "suite=bogus",
                     "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "suite=bogus" in err

    def test_sweep_unknown_study(self, capsys):
        assert main(["sweep", "bogus", "--suites", "office",
                     "--no-store"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_sweep_bad_inputs_exit_cleanly(self, capsys):
        cases = [
            ["sweep", "caches", "--grid", "noequals", "--no-store"],
            ["sweep", "caches", "--grid", "ratio=", "--no-store"],
            ["sweep", "caches", "--grid", "suite=bogus", "--no-store"],
            ["sweep", "caches", "--grid", "scheme=bogus", "--length",
             "300", "--suites", "office", "--no-store"],
            ["sweep", "caches", "--workers", "0", "--suites", "office",
             "--no-store"],
            ["sweep", "caches", "--grid", "ratio=0.4", "--grid",
             "ratio=0.6", "--no-store"],
            ["sweep", "caches", "--grid", "suite=office", "--suites",
             "kernels", "--no-store"],
            ["sweep", "caches", "--suites", "office", "--length",
             "300", "--no-store", "--group-by", "ratoi"],
            ["sweep", "caches", "--suites", "office", "--length",
             "300", "--no-store", "--metrics", "mean_losss"],
            ["sweep", "caches", "--grid", "ratoi=0.4,0.6", "--suites",
             "office", "--no-store"],
        ]
        for argv in cases:
            assert main(argv) == 2, argv
            assert "error:" in capsys.readouterr().err, argv
