"""Unit tests for the cache, TLB and line states."""

import pytest

from repro.uarch.cache import Cache, CacheConfig, LineState
from repro.uarch.tlb import TLB, TLBConfig


def small_cache(size=1024, ways=2, line=64, name="c"):
    return Cache(CacheConfig(name=name, size_bytes=size, ways=ways,
                             line_bytes=line))


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(name="DL0-32K-8w", size_bytes=32 * 1024, ways=8)
        assert config.sets == 64
        assert config.lines == 512

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, ways=3)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=0, ways=1)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_words_hit(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13C)  # same 64B line

    def test_lru_eviction(self):
        cache = small_cache(size=256, ways=2, line=64)  # 2 sets
        # Three lines mapping to set 0: 0, 128, 256 with 2 sets? sets=2:
        # line_addr % 2 chooses set; use addresses 0, 128, 256.
        cache.access(0x000)
        cache.access(0x080)
        cache.access(0x100)  # evicts LRU (0x000)
        assert not cache.access(0x000)

    def test_lru_updated_on_hit(self):
        cache = small_cache(size=256, ways=2, line=64)
        cache.access(0x000)
        cache.access(0x080)
        cache.access(0x000)  # refresh
        cache.access(0x100)  # evicts 0x080 now
        assert cache.access(0x000)
        assert not cache.access(0x080)

    def test_probe_does_not_allocate(self):
        cache = small_cache()
        assert not cache.probe(0x100)
        assert not cache.probe(0x100)
        assert cache.stats.accesses == 0

    def test_hit_position_histogram(self):
        cache = small_cache()
        cache.access(0x100)
        cache.access(0x100)
        assert cache.stats.mru_hit_fraction() == 1.0

    def test_reset_stats(self):
        cache = small_cache()
        cache.access(0x100)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_replay_counts_hits(self):
        cache = small_cache()
        assert cache.replay([0x100, 0x100, 0x200, 0x100]) == 2
        assert cache.stats.accesses == 4
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2

    def test_reset_restores_cold_state(self):
        cache = small_cache()
        cache.access(0x100)
        set_index, __ = cache.index_of(0x100)
        cache.invert_line(set_index, cache.valid_ways(set_index)[0])
        cache.set_shadow(set_index, 1, True)
        cache.allow_inverted_victims = False
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.inverted_count() == 0
        assert cache.shadow_count() == 0
        assert cache.allow_inverted_victims
        assert not cache.probe(0x100)
        # LRU stacks are back to construction order.
        assert cache.lru_position(set_index, 0) == 0


class TestInversionStates:
    def test_invert_line_makes_it_unusable(self):
        cache = small_cache()
        cache.access(0x100)
        set_index, __ = cache.index_of(0x100)
        way = cache.valid_ways(set_index)[0]
        cache.invert_line(set_index, way)
        assert cache.line_state(set_index, way) is LineState.INVERTED
        assert not cache.access(0x100)  # the line was invalidated

    def test_inverted_count(self):
        cache = small_cache()
        assert cache.inverted_count() == 0
        cache.invert_line(0, 0)
        cache.invert_line(0, 1)
        assert cache.inverted_count() == 2

    def test_victim_prefers_invalid_then_inverted(self):
        cache = small_cache(size=256, ways=2, line=64)
        cache.access(0x000)
        set_index, __ = cache.index_of(0x000)
        # One valid line, one invalid: victim must be the invalid way.
        victim = cache.victim_way(set_index)
        assert cache.line_state(set_index, victim) is LineState.INVALID
        # Fill it, then invert it: victim must be the inverted way.
        cache.access(0x080)
        cache.invert_line(set_index, victim)
        assert cache.victim_way(set_index) == victim

    def test_refill_of_inverted_counted(self):
        cache = small_cache(size=128, ways=1, line=64)
        cache.access(0x000)
        set_index, __ = cache.index_of(0x000)
        cache.invert_line(set_index, 0)
        cache.access(0x000)
        assert cache.stats.refills_of_inverted == 1

    def test_shadow_hits_counted(self):
        cache = small_cache()
        cache.access(0x100)
        set_index, __ = cache.index_of(0x100)
        way = cache.valid_ways(set_index)[0]
        cache.set_shadow(set_index, way, True)
        assert cache.is_shadow(set_index, way)
        cache.access(0x100)
        assert cache.stats.shadow_hits == 1
        cache.clear_shadow()
        assert cache.shadow_count() == 0

    def test_invalidate_line(self):
        cache = small_cache()
        cache.access(0x100)
        set_index, __ = cache.index_of(0x100)
        way = cache.valid_ways(set_index)[0]
        cache.invalidate_line(set_index, way)
        assert cache.line_state(set_index, way) is LineState.INVALID
        assert not cache.access(0x100)


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB(TLBConfig(name="DTLB-8", entries=8, ways=8))
        assert not tlb.translate(0x1000)
        assert tlb.translate(0x1FFF)   # same 4K page
        assert not tlb.translate(0x2000)  # next page

    def test_entry_capacity(self):
        tlb = TLB(TLBConfig(name="DTLB-8", entries=8, ways=8))
        for page in range(8):
            tlb.translate(page * 4096)
        for page in range(8):
            assert tlb.translate(page * 4096)
        tlb.translate(9 * 4096)  # evicts the LRU page
        assert not tlb.translate(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(name="bad", entries=10, ways=8)
        with pytest.raises(ValueError):
            TLBConfig(name="bad", entries=0, ways=1)

    def test_cache_config_mapping(self):
        config = TLBConfig(name="DTLB-128", entries=128, ways=8)
        assert config.cache_config().sets == 16
