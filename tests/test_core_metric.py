"""Tests for the NBTIefficiency metric — every number the paper quotes."""

import pytest

from repro.core.metric import (
    BASELINE_GUARDBAND,
    BlockCost,
    INVERT_MODE_DELAY,
    ProcessorCost,
    baseline_block_cost,
    invert_periodically_cost,
    nbti_efficiency,
)


class TestPaperWorkedExamples:
    """Section 4.2-4.7: the seven worked NBTIefficiency values."""

    def test_baseline_173(self):
        assert nbti_efficiency(1.0, 0.20, 1.0) == pytest.approx(1.73, abs=0.005)

    def test_invert_periodically_141(self):
        assert nbti_efficiency(1.10, 0.02, 1.0) == pytest.approx(1.41, abs=0.005)

    def test_adder_124(self):
        assert nbti_efficiency(1.0, 0.074, 1.0) == pytest.approx(1.24, abs=0.005)

    def test_register_file_112(self):
        assert nbti_efficiency(1.0, 0.036, 1.01) == pytest.approx(1.12, abs=0.005)

    def test_scheduler_124(self):
        assert nbti_efficiency(1.0, 0.067, 1.02) == pytest.approx(1.24, abs=0.005)

    def test_dl0_linefixed_109(self):
        assert nbti_efficiency(1.0053, 0.02, 1.01) == pytest.approx(1.09, abs=0.005)

    def test_penelope_processor_128(self):
        assert nbti_efficiency(1.007, 0.074, 1.01) == pytest.approx(1.28, abs=0.005)


class TestNbtiEfficiency:
    def test_lower_guardband_is_better(self):
        assert nbti_efficiency(1.0, 0.02, 1.0) < nbti_efficiency(1.0, 0.2, 1.0)

    def test_delay_cubed(self):
        # Doubling delay should multiply efficiency by 8.
        ratio = nbti_efficiency(2.0, 0.0, 1.0) / nbti_efficiency(1.0, 0.0, 1.0)
        assert ratio == pytest.approx(8.0)

    def test_tdp_linear(self):
        ratio = nbti_efficiency(1.0, 0.0, 2.0) / nbti_efficiency(1.0, 0.0, 1.0)
        assert ratio == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            nbti_efficiency(0.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            nbti_efficiency(1.0, -0.1, 1.0)
        with pytest.raises(ValueError):
            nbti_efficiency(1.0, 0.1, 0.0)


class TestBlockCost:
    def test_efficiency_property(self):
        block = BlockCost("x", delay=1.0, guardband=0.074, tdp=1.0)
        assert block.efficiency == pytest.approx(1.24, abs=0.005)

    def test_helpers(self):
        assert baseline_block_cost().guardband == BASELINE_GUARDBAND
        inverted = invert_periodically_cost()
        assert inverted.delay == INVERT_MODE_DELAY
        assert inverted.efficiency == pytest.approx(1.41, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCost("x", delay=0.0)
        with pytest.raises(ValueError):
            BlockCost("x", guardband=-0.1)


class TestProcessorCost:
    def _paper_blocks(self):
        """The five Section 4.7 blocks with their published numbers."""
        return [
            BlockCost("adder", guardband=0.074, tdp=1.0),
            BlockCost("int_rf", guardband=0.036, tdp=1.01),
            BlockCost("fp_rf", guardband=0.036, tdp=1.01),
            BlockCost("scheduler", guardband=0.067, tdp=1.02),
            BlockCost("dl0+dtlb", guardband=0.02, tdp=1.01),
        ]

    def test_section_47_combination(self):
        processor = ProcessorCost(blocks=self._paper_blocks(),
                                  combined_cpi=1.007)
        # Eq (2): no cycle-time impact, so delay = CPI.
        assert processor.delay == pytest.approx(1.007)
        # Eq (3): equal-weight TDP accumulation = 1.01.
        assert processor.tdp == pytest.approx(1.01)
        # Eq (4): the adder's guardband dominates.
        assert processor.guardband == pytest.approx(0.074)
        # The headline number.
        assert processor.efficiency == pytest.approx(1.28, abs=0.005)

    def test_beats_baseline_and_inverting(self):
        penelope = ProcessorCost(blocks=self._paper_blocks(),
                                 combined_cpi=1.007)
        baseline = ProcessorCost(
            blocks=[baseline_block_cost(b.name) for b in self._paper_blocks()]
        )
        assert penelope.efficiency < 1.41 < baseline.efficiency

    def test_worst_cycle_time_dominates_delay(self):
        blocks = [BlockCost("a", delay=1.0), BlockCost("b", delay=1.1)]
        assert ProcessorCost(blocks=blocks).delay == pytest.approx(1.1)

    def test_tdp_weighting(self):
        blocks = [
            BlockCost("a", tdp=1.0, tdp_weight=3.0),
            BlockCost("b", tdp=2.0, tdp_weight=1.0),
        ]
        assert ProcessorCost(blocks=blocks).tdp == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorCost(blocks=[])
        with pytest.raises(ValueError):
            ProcessorCost(blocks=[BlockCost("a")], combined_cpi=0.0)
