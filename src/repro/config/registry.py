"""String-keyed component registries for protection mechanisms.

The repo's mechanisms were constructed through ad-hoc factories — the
``builders`` dict inside ``repro.experiments.registry._scheme_factory``,
the hard-wired ``LineFixedScheme``/``ISVRegisterFileProtector`` calls in
``repro.core.penelope`` and ``cli.py``.  This module replaces them with
one pattern: each structure kind owns a :class:`ComponentRegistry`
mapping a mechanism *name* (the string a :class:`~repro.config.specs.
MechanismSpec` carries) to a factory.  New schemes plug in with
``@CACHE_SCHEMES.register("my_scheme")`` and are immediately reachable
from JSON configs, ``repro run``, the experiment engine, and
:mod:`repro.api` — no construction code changes.

Factories take two kinds of arguments:

- *context* arguments, positional, supplied by the builder (e.g. the
  register-file name and width, or the scheduler policy) — callers of
  :meth:`ComponentRegistry.build` pass them; specs never contain them;
- *parameters*, keyword, supplied by the spec's ``params`` mapping and
  validated against the factory signature before construction.

Registered mechanisms (every registry also accepts ``"none"``, which
builds nothing and leaves the structure unprotected):

- cache-like (DL0 / DTLB): ``set_fixed``, ``way_fixed``, ``line_fixed``,
  ``line_dynamic`` (Section 3.2.1 / 4.6);
- register files: ``isv`` (Section 4.4);
- scheduler: ``derived_policy`` (profile + Figure 3 casuistic),
  ``paper_policy`` (the published Section 4.5 classification);
- adder: ``idle_injection`` (Section 3.1 / 4.3).
"""

from __future__ import annotations

import inspect
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.config.specs import SpecError

if TYPE_CHECKING:
    from repro.core.memory_like import (
        ISVRegisterFileProtector,
        SchedulerProtector,
    )


class ComponentRegistry:
    """Maps mechanism names to factories, with parameter validation."""

    def __init__(self, kind: str,
                 context_params: Tuple[str, ...] = ()) -> None:
        self.kind = kind
        self.context_params = context_params
        self._factories: Dict[str, Callable[..., Any]] = {}

    def register(self, name: str) -> Callable:
        """Decorator: register ``factory`` under ``name``."""
        if name in self._factories:
            raise ValueError(
                f"{self.kind} {name!r} is already registered"
            )

        def wrap(factory: Callable[..., Any]) -> Callable[..., Any]:
            self._factories[name] = factory
            return factory

        return wrap

    def names(self) -> List[str]:
        return sorted(self._factories)

    def accepted_params(self, name: str) -> List[str]:
        """The spec-settable parameter names of one mechanism."""
        factory = self._get(name, where=self.kind)
        if factory is None:  # "none" takes no parameters
            return []
        signature = inspect.signature(factory)
        return [
            p.name for p in signature.parameters.values()
            if p.name not in self.context_params
            and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        ]

    def validate(self, name: str, params: Mapping[str, Any],
                 where: str = "") -> None:
        """Raise :class:`SpecError` on unknown names or parameters."""
        prefix = f"{where}: " if where else ""
        factory = self._get(name, where=where)
        if factory is None:
            if params:
                raise SpecError(
                    f"{prefix}mechanism 'none' takes no parameters, got "
                    f"{', '.join(sorted(params))}"
                )
            return
        accepted = self.accepted_params(name)
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise SpecError(
                f"{prefix}unknown parameter(s) "
                f"{', '.join(map(repr, unknown))} for {self.kind} "
                f"{name!r}; accepted: "
                f"{', '.join(accepted) if accepted else '(none)'}"
            )

    def build(self, name: str, params: Mapping[str, Any] = (),
              *context: Any, where: str = "") -> Any:
        """Instantiate ``name`` with context args + spec params.

        Returns ``None`` for the ``"none"`` mechanism.
        """
        params = dict(params or {})
        self.validate(name, params, where=where)
        factory = self._get(name, where=where)
        if factory is None:
            return None
        try:
            return factory(*context, **params)
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            prefix = f"{where}: " if where else ""
            raise SpecError(
                f"{prefix}cannot build {self.kind} {name!r} with params "
                f"{params!r}: {exc}"
            ) from exc

    def _get(self, name: str,
             where: str = "") -> Optional[Callable[..., Any]]:
        if name == "none":
            return None
        try:
            return self._factories[name]
        except KeyError:
            prefix = f"{where}: " if where else ""
            raise SpecError(
                f"{prefix}unknown {self.kind} {name!r}; registered: "
                f"{', '.join(self.names() + ['none'])}"
            ) from None


# ----------------------------------------------------------------------
# Kernel backends — the simulation engines behind the cache-like models
# ----------------------------------------------------------------------
KERNEL_BACKENDS = ComponentRegistry("kernel backend")


def _register_kernel_backends() -> None:
    from repro.uarch.backends import backend_names, get_backend

    for backend_name in backend_names():
        # Bind the name per-iteration; ``get_backend`` resolves lazily so
        # registering "vectorized" never imports numpy.
        KERNEL_BACKENDS.register(backend_name)(
            lambda _name=backend_name: get_backend(_name)
        )


_register_kernel_backends()


# ----------------------------------------------------------------------
# Cache-like structures (DL0, DTLB) — inversion schemes
# ----------------------------------------------------------------------
CACHE_SCHEMES = ComponentRegistry("cache inversion scheme")


def _register_cache_schemes() -> None:
    from repro.core.cache_like import (
        LineDynamicScheme,
        LineFixedScheme,
        SetFixedScheme,
        WayFixedScheme,
    )

    CACHE_SCHEMES.register("set_fixed")(SetFixedScheme)
    CACHE_SCHEMES.register("way_fixed")(WayFixedScheme)
    CACHE_SCHEMES.register("line_fixed")(LineFixedScheme)
    CACHE_SCHEMES.register("line_dynamic")(LineDynamicScheme)


_register_cache_schemes()


# ----------------------------------------------------------------------
# Register files — release-time protectors
# ----------------------------------------------------------------------
RF_PROTECTORS = ComponentRegistry(
    "register-file protector",
    context_params=("rf_name", "width", "sample_period"),
)


@RF_PROTECTORS.register("isv")
def _build_isv(rf_name: str, width: int, sample_period: float,
               entries_hint: int = 128) -> "ISVRegisterFileProtector":
    from repro.core.memory_like import ISVRegisterFileProtector

    return ISVRegisterFileProtector(rf_name, width, sample_period,
                                    entries_hint=entries_hint)


# ----------------------------------------------------------------------
# Scheduler — per-field repair policies
# ----------------------------------------------------------------------
SCHEDULER_PROTECTORS = ComponentRegistry(
    "scheduler protector",
    context_params=("policy", "sample_period"),
)


@SCHEDULER_PROTECTORS.register("derived_policy")
def _build_derived_policy(policy: Any,
                          sample_period: float) -> "SchedulerProtector":
    """Apply a policy derived from profiling (``policy`` is supplied by
    the builder — :class:`~repro.core.penelope.PenelopeProcessor`
    profiles the first workload trace when none is given)."""
    from repro.core.memory_like import SchedulerProtector

    return SchedulerProtector(policy, sample_period)


@SCHEDULER_PROTECTORS.register("paper_policy")
def _build_paper_policy(policy: Any,
                        sample_period: float) -> "SchedulerProtector":
    """Apply the published Section 4.5 classification, ignoring any
    derived ``policy``."""
    from repro.core.memory_like import (
        PAPER_SCHEDULER_POLICY,
        SchedulerProtector,
    )

    return SchedulerProtector(PAPER_SCHEDULER_POLICY, sample_period)


# ----------------------------------------------------------------------
# Adder — combinational idle-input mechanisms
# ----------------------------------------------------------------------
ADDER_MECHANISMS = ComponentRegistry("adder mechanism")


@ADDER_MECHANISMS.register("idle_injection")
def _build_idle_injection(
    pair: Tuple[int, int] = (1, 8),
) -> Dict[str, Any]:
    """Settings for idle-input injection: the synthetic input pair to
    alternate during idle cycles (Section 4.3's best pair by default)."""
    pair = tuple(pair)
    if len(pair) != 2:
        raise ValueError(f"pair must have two entries, got {pair!r}")
    return {"pair": pair, "inject": True}


_STRUCTURE_REGISTRIES: Mapping[str, ComponentRegistry] = {
    "adder": ADDER_MECHANISMS,
    "int_rf": RF_PROTECTORS,
    "fp_rf": RF_PROTECTORS,
    "scheduler": SCHEDULER_PROTECTORS,
    "dl0": CACHE_SCHEMES,
    "dtlb": CACHE_SCHEMES,
}


def registry_for_structure(structure: str) -> ComponentRegistry:
    """The registry validating/building mechanisms of one structure."""
    try:
        return _STRUCTURE_REGISTRIES[structure]
    except KeyError:
        raise SpecError(
            f"unknown structure {structure!r}; known: "
            f"{', '.join(sorted(_STRUCTURE_REGISTRIES))}"
        ) from None


__all__ = [
    "ADDER_MECHANISMS",
    "CACHE_SCHEMES",
    "ComponentRegistry",
    "KERNEL_BACKENDS",
    "RF_PROTECTORS",
    "SCHEDULER_PROTECTORS",
    "registry_for_structure",
]
