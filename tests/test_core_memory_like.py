"""Tests for RINV, the ISV register-file protector and the scheduler
protector."""

import pytest

from repro.core.memory_like import (
    ISVRegisterFileProtector,
    PAPER_SCHEDULER_POLICY,
    RINVRegister,
    SchedulerProfiler,
    SchedulerProtector,
    derive_scheduler_policy,
)
from repro.core.policy import Technique
from repro.uarch import TraceDrivenCore
from repro.uarch.core import CompositeHooks
from repro.uarch.uop import INT_WIDTH, SCHEDULER_LAYOUT
from repro.workloads import TraceGenerator


class TestRINVRegister:
    def test_stores_inversion(self):
        rinv = RINVRegister(8)
        rinv.update_from_sample(0b1010_1010)
        assert rinv.value == 0b0101_0101
        assert rinv.updates == 1

    def test_reset_state_is_all_ones(self):
        # Inversion of the all-zeros power-on value.
        assert RINVRegister(4).value == 0b1111

    def test_validation(self):
        with pytest.raises(ValueError):
            RINVRegister(0)


class TestISVRegisterFileProtector:
    def _run(self, length=4000):
        trace = TraceGenerator(seed=9).generate("specint2000", length=length)
        protector = ISVRegisterFileProtector("int_rf", INT_WIDTH,
                                             sample_period=256.0)
        core = TraceDrivenCore(hooks=protector)
        result = core.run(trace)
        return protector, result

    def test_improves_worst_bias(self):
        protector, result = self._run()
        trace = TraceGenerator(seed=9).generate("specint2000", length=4000)
        baseline = TraceDrivenCore().run(trace)
        assert result.int_rf.worst_bias < baseline.int_rf.worst_bias
        # The paper reduces the worst bias to near 50%; warmup noise on
        # short traces keeps us within a looser band.
        assert result.int_rf.worst_bias < 0.75

    def test_inverted_time_converges_to_half(self):
        protector, __ = self._run()
        assert protector.inverted_time_fraction == pytest.approx(0.5,
                                                                 abs=0.05)

    def test_discards_are_rare(self):
        # Section 4.4: ports are free 92% of the time, so few updates
        # are discarded.
        protector, result = self._run()
        total = protector.updates_written + protector.updates_skipped
        assert total > 0
        assert protector.updates_skipped / total < 0.25

    def test_ignores_other_register_files(self):
        protector = ISVRegisterFileProtector("fp_rf", 80)
        trace = TraceGenerator(seed=9).generate("specint2000", length=800)
        core = TraceDrivenCore(hooks=protector)
        result = core.run(trace)
        # specint hardly touches FP: almost no updates either way, but
        # certainly none on the INT file.
        assert result.int_rf.special_writes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ISVRegisterFileProtector("int_rf", 32, sample_period=0.0)


class TestSchedulerProtector:
    def test_paper_policy_covers_all_fields(self):
        layout_fields = set(SCHEDULER_LAYOUT.fields())
        assert set(PAPER_SCHEDULER_POLICY) == layout_fields
        for name, directives in PAPER_SCHEDULER_POLICY.items():
            assert len(directives) == SCHEDULER_LAYOUT.fields()[name]

    def test_paper_policy_classification(self):
        policy = PAPER_SCHEDULER_POLICY
        assert policy["valid"][0].technique is Technique.UNPROTECTED
        assert policy["flags"][0].technique is Technique.ALL1
        assert policy["latency"][3].technique is Technique.ALL1
        assert policy["latency"][0].technique is Technique.ALL1_K
        assert policy["latency"][0].k == pytest.approx(0.95)
        assert policy["taken"][0].k == pytest.approx(0.50)
        assert policy["ready1"][0].k == pytest.approx(0.60)
        assert policy["src1_data"][0].technique is Technique.ISV
        assert policy["dst_tag"][0].technique is Technique.SELF_BALANCED

    def test_protection_flattens_bias(self):
        trace = TraceGenerator(seed=9).generate("specint2000", length=4000)
        baseline = TraceDrivenCore().run(trace)
        protector = SchedulerProtector()
        protected = TraceDrivenCore(hooks=protector).run(trace)
        assert protector.updates_written > 0
        assert (protected.scheduler.worst_bias()
                < baseline.scheduler.worst_bias())

    def test_flags_specifically_repaired(self):
        trace = TraceGenerator(seed=9).generate("specint2000", length=4000)
        baseline = TraceDrivenCore().run(trace)
        protected = TraceDrivenCore(hooks=SchedulerProtector()).run(trace)
        base_flags = max(baseline.scheduler.field_bias["flags"])
        prot_flags = max(protected.scheduler.field_bias["flags"])
        assert prot_flags < base_flags

    def test_valid_bit_untouched(self):
        trace = TraceGenerator(seed=9).generate("specint2000", length=2000)
        protector = SchedulerProtector()
        result = TraceDrivenCore(hooks=protector).run(trace)
        # The valid bit's bias reflects occupancy only (cannot repair).
        valid_bias = result.scheduler.field_bias["valid"][0]
        assert valid_bias == pytest.approx(1.0 - result.scheduler.occupancy,
                                           abs=0.05)


class TestDerivedPolicy:
    def _profile(self):
        trace = TraceGenerator(seed=9).generate("specint2000", length=3000)
        profiler = SchedulerProfiler()
        result = TraceDrivenCore(hooks=profiler).run(trace)
        return profiler, result

    def test_profiler_collects_fills(self):
        profiler, __ = self._profile()
        assert profiler.fills == 3000
        bias = profiler.busy_bias_to_zero()
        assert set(bias) == set(SCHEDULER_LAYOUT.fields())

    def test_derive_policy_structure(self):
        profiler, result = self._profile()
        policy = derive_scheduler_policy(profiler,
                                         result.scheduler.occupancy)
        assert policy["valid"][0].technique is Technique.UNPROTECTED
        assert policy["dst_tag"][0].technique is Technique.SELF_BALANCED
        # Highly zero-biased flag bits get ALL1-flavoured techniques.
        assert policy["flags"][2].technique in (
            Technique.ALL1, Technique.ALL1_K
        )

    def test_derived_policy_beats_baseline(self):
        profiler, result = self._profile()
        policy = derive_scheduler_policy(profiler,
                                         result.scheduler.occupancy)
        trace = TraceGenerator(seed=10).generate("specint2000", length=4000)
        baseline = TraceDrivenCore().run(trace)
        protected = TraceDrivenCore(
            hooks=SchedulerProtector(policy)
        ).run(trace)
        assert (protected.scheduler.worst_bias()
                < baseline.scheduler.worst_bias())

    def test_profiler_requires_fills(self):
        with pytest.raises(ValueError):
            SchedulerProfiler().busy_bias_to_zero()
