"""Unit tests for the stress ledgers."""

import pytest

from repro.nbti.stress import BitCellStress, NodeStress, StressLedger


class TestNodeStress:
    def test_duty_accumulation(self):
        node = NodeStress()
        node.observe(0, 3.0)
        node.observe(1, 1.0)
        assert node.duty == pytest.approx(0.75)
        assert node.total_time == pytest.approx(4.0)

    def test_unobserved_duty_is_zero(self):
        assert NodeStress().duty == 0.0

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            NodeStress().observe(2)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            NodeStress().observe(0, -1.0)

    def test_merge(self):
        a = NodeStress()
        a.observe(0, 2.0)
        b = NodeStress()
        b.observe(1, 2.0)
        a.merge(b)
        assert a.duty == pytest.approx(0.5)


class TestStressLedger:
    def test_observe_and_duty(self):
        ledger = StressLedger()
        ledger.observe("n", 0, 9.0)
        ledger.observe("n", 1, 1.0)
        assert ledger.duty("n") == pytest.approx(0.9)

    def test_unknown_node_duty_zero(self):
        assert StressLedger().duty("missing") == 0.0

    def test_observe_word_bits(self):
        ledger = StressLedger()
        ledger.observe_word("w", 0b101, width=3, duration=2.0)
        assert ledger.duty(("w", 0)) == 0.0
        assert ledger.duty(("w", 1)) == 1.0
        assert ledger.duty(("w", 2)) == 0.0

    def test_observe_word_rejects_bad_width(self):
        with pytest.raises(ValueError):
            StressLedger().observe_word("w", 1, width=0)

    def test_worst(self):
        ledger = StressLedger()
        ledger.observe("a", 0, 1.0)
        ledger.observe("a", 1, 1.0)
        ledger.observe("b", 0, 3.0)
        ledger.observe("b", 1, 1.0)
        node, duty = ledger.worst()
        assert node == "b"
        assert duty == pytest.approx(0.75)

    def test_worst_on_empty_raises(self):
        with pytest.raises(ValueError):
            StressLedger().worst()

    def test_merge_ledgers(self):
        a = StressLedger()
        a.observe("x", 0, 1.0)
        b = StressLedger()
        b.observe("x", 1, 1.0)
        b.observe("y", 0, 1.0)
        a.merge(b)
        assert a.duty("x") == pytest.approx(0.5)
        assert "y" in a
        assert len(a) == 2

    def test_duties_mapping(self):
        ledger = StressLedger()
        ledger.observe("x", 0, 1.0)
        assert ledger.duties() == {"x": 1.0}

    def test_total_time(self):
        ledger = StressLedger()
        ledger.observe("x", 0, 2.5)
        assert ledger.total_time("x") == 2.5
        assert ledger.total_time("y") == 0.0


class TestBitCellStress:
    def test_worst_duty_is_max_of_complements(self):
        cell = BitCellStress()
        cell.observe(0, 7.0)
        cell.observe(1, 3.0)
        assert cell.bias_to_zero == pytest.approx(0.7)
        assert cell.worst_duty == pytest.approx(0.7)

    def test_biased_to_one_still_stresses(self):
        # Storing "1" stresses the opposite PMOS (Section 3.2).
        cell = BitCellStress()
        cell.observe(1, 9.0)
        cell.observe(0, 1.0)
        assert cell.worst_duty == pytest.approx(0.9)

    def test_balanced_cell_is_optimal(self):
        cell = BitCellStress()
        cell.observe(0, 5.0)
        cell.observe(1, 5.0)
        assert cell.worst_duty == pytest.approx(0.5)
        assert cell.imbalance == pytest.approx(0.0)

    def test_imbalance(self):
        cell = BitCellStress()
        cell.observe(0, 3.0)
        cell.observe(1, 1.0)
        assert cell.imbalance == pytest.approx(0.25)

    def test_empty_cell(self):
        cell = BitCellStress()
        assert cell.worst_duty == 0.0
        assert cell.imbalance == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            BitCellStress().observe(3)
        with pytest.raises(ValueError):
            BitCellStress().observe(0, -2.0)
