"""Shared fixtures.

Expensive artefacts (adder netlists, reference traces) are session-scoped
so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.circuits import build_ladner_fischer_adder
from repro.workloads import TraceGenerator


@pytest.fixture(scope="session")
def adder8():
    """A small 8-bit Ladner-Fischer adder for functional tests."""
    return build_ladner_fischer_adder(width=8)


@pytest.fixture(scope="session")
def adder32():
    """The paper's 32-bit adder (built once per session)."""
    return build_ladner_fischer_adder(width=32)


@pytest.fixture(scope="session")
def small_trace():
    """A short deterministic specint trace."""
    return TraceGenerator(seed=11).generate("specint2000", length=1500)


@pytest.fixture(scope="session")
def fp_trace():
    """A short deterministic FP-heavy trace."""
    return TraceGenerator(seed=11).generate("specfp2000", length=1500)


def assert_reset_zeroes_counters(source, exercise) -> None:
    """Audit helper: ``reset()`` must zero every counter of a
    :class:`~repro.metrics.stats.MetricSource`.

    "Zero" means the post-construction value: plain components start
    all-zero, while protected wrappers legitimately register their
    scheme's cold-start work (e.g. the initial inversion window), which
    ``reset()`` must reproduce exactly.  ``exercise(source)`` drives
    some activity; the helper checks the activity registered (at least
    one counter moved — an audit that exercises nothing proves
    nothing), resets, and asserts every counter in a freshly-built
    metric tree reads its post-construction value again.
    """
    name = type(source).__name__
    tree = source.metrics()
    counters = [path for path, kind in tree.kinds().items()
                if kind == "counter"]
    assert counters, f"{name} exposes no counters"
    construction = tree.snapshot().values
    pristine = {path: construction[path] for path in counters}
    exercise(source)
    before = source.metrics().snapshot().values
    assert any(before[path] != pristine[path] for path in counters), (
        f"exercise() drove no counter of {name}: "
        f"{ {p: before[p] for p in counters} }"
    )
    source.reset()
    after = source.metrics().snapshot().values
    dirty = {path: after[path] for path in counters
             if after[path] != pristine[path]}
    assert not dirty, (
        f"{name}.reset() did not restore counters to their "
        f"post-construction values: {dirty} (expected "
        f"{ {p: pristine[p] for p in dirty} })"
    )


@pytest.fixture
def reset_audit():
    """The shared ``reset()``-zeroes-counters audit (see
    :func:`assert_reset_zeroes_counters`)."""
    return assert_reset_zeroes_counters
