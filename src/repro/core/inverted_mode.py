"""The conventional alternative: operating in inverted mode (Section 3).

Prior work [Kumar et al., ISQED 2006] flips a memory-like structure
between normal and inverted modes so each bit cell statistically holds
"0" half of the time.  The costs the paper charges it with:

- an XNOR in every read/write data path (~1 FO4 on a 10 FO4 cycle:
  ~10% cycle-time impact),
- no coverage of combinational blocks (inverted and non-inverted inputs
  may stress the same PMOS), and
- for caches, either flushing on every mode flip or tolerating stale
  inverted contents.

:class:`PeriodicInversionScheme` implements it for cache-like blocks so
the trade-off is measurable rather than asserted, and
:func:`inverted_mode_block_cost` prices it for the metric.
"""

from __future__ import annotations

import random
from repro.core.cache_like import InversionScheme
from repro.core.metric import (
    BlockCost,
    INVERT_MODE_DELAY,
    MIN_GUARDBAND,
)
from repro.uarch.cache import Cache


class PeriodicInversionScheme(InversionScheme):
    """Whole-structure periodic inversion for cache-like blocks.

    Every ``period`` accesses the mode flips.  With ``flush_on_flip``
    (the conservative implementation) the whole structure is invalidated
    at each flip — contents stored in the old polarity are unreadable in
    the new one without the double-pumped arrays the paper deems too
    expensive.  ``flush_on_flip=False`` models dual-polarity arrays that
    re-interpret contents on the fly (no misses, pure delay cost).
    """

    __slots__ = ("period", "flush_on_flip", "_accesses",
                 "_inverted_accesses", "inverted_mode", "flips")

    def __init__(self, period: int = 100_000,
                 flush_on_flip: bool = True) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.flush_on_flip = flush_on_flip
        self.name = "InvertPeriodically"
        self._accesses = 0
        self._inverted_accesses = 0
        self.inverted_mode = False
        self.flips = 0

    def attach(self, cache: Cache, rng: random.Random) -> None:
        super().attach(cache, rng)

    def reset(self) -> None:
        """Forget access counts and mode so a re-attach starts cold.

        Without this, a :class:`~repro.core.cache_like.ProtectedCache`
        ``reset()`` (e.g. between two ``replay()`` runs of one study
        point) kept the scheme mid-period and possibly inverted —
        the second run was not bit-identical to the first.
        """
        self._accesses = 0
        self._inverted_accesses = 0
        self.inverted_mode = False
        self.flips = 0

    def access(self, address: int) -> bool:
        self._accesses += 1
        if self.inverted_mode:
            self._inverted_accesses += 1
        if self._accesses % self.period == 0:
            self._flip()
        return self.cache.access(address)

    @property
    def mode_balance(self) -> float:
        """Fraction of time spent inverted (-> 0.5 after many periods)."""
        if self._accesses == 0:
            return 0.0
        return self._inverted_accesses / self._accesses

    def _flip(self) -> None:
        self.inverted_mode = not self.inverted_mode
        self.flips += 1
        if self.flush_on_flip:
            for set_index in range(self.cache.config.sets):
                for way in range(self.cache.config.ways):
                    self.cache.invalidate_line(set_index, way)


def inverted_mode_block_cost(
    name: str = "invert-periodically",
    cpi_factor: float = 1.0,
    tdp: float = 1.0,
) -> BlockCost:
    """Metric cost of a memory-like block run in inverted mode.

    ``cpi_factor`` carries any measured flush-induced CPI loss (use a
    :class:`PeriodicInversionScheme` study to obtain it); the cycle-time
    cost of the data-path XNOR and the post-balancing guardband floor
    are the paper's Section 4.2 constants.
    """
    if cpi_factor < 1.0:
        raise ValueError("cpi_factor cannot be below 1.0")
    return BlockCost(
        name=name,
        delay=INVERT_MODE_DELAY * cpi_factor,
        guardband=MIN_GUARDBAND,
        tdp=tdp,
    )
