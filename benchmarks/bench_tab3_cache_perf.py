"""Table 3: average performance loss of the three inversion schemes on
six DL0 configurations and three DTLB configurations.

Shape targets: LineDynamic60% has the lowest loss everywhere; losses
grow as the structure shrinks; all losses are small (sub-3%).
"""

import pytest

from repro.analysis import format_table
from repro.api import build_scheme
from repro.config import CacheGeometrySpec, MechanismSpec, TLBGeometrySpec
from repro.core.cache_like import (
    DL0_EFFECTIVE_PENALTY,
    DTLB_EFFECTIVE_PENALTY,
    PAPER_DYNAMIC_THRESHOLDS,
    run_cache_study,
)
from repro.workloads import generate_address_stream, suite_names

from conftest import SMOKE, scaled, write_result

STREAM_LENGTH = scaled(20_000)

DL0_CONFIGS = [
    CacheGeometrySpec(size_kb=kb, ways=ways).to_cache_config()
    for ways in (8, 4)
    for kb in (32, 16, 8)
]
DTLB_CONFIGS = [
    TLBGeometrySpec(entries=entries, ways=8).to_tlb_config()
    for entries in (128, 64, 32)
]

#: Paper Table 3 for reference (average performance loss).
PAPER_TABLE3 = {
    ("DL0-32K-8w", "SetFixed50%"): 0.0075,
    ("DL0-32K-8w", "LineFixed50%"): 0.0053,
    ("DL0-32K-8w", "LineDynamic60%"): 0.0045,
    ("DL0-8K-4w", "SetFixed50%"): 0.0173,
    ("DL0-8K-4w", "LineFixed50%"): 0.0231,
    ("DL0-8K-4w", "LineDynamic60%"): 0.0102,
    ("DTLB-128", "LineDynamic60%"): 0.0014,
}


@pytest.fixture(scope="module")
def streams():
    return [
        generate_address_stream(suite, length=STREAM_LENGTH, seed=77)
        for suite in suite_names()
    ]


def _factory(mechanism: MechanismSpec):
    """Zero-arg scheme factory resolved through the component registry."""
    return lambda: build_scheme(mechanism)


def _dynamic_factory(threshold):
    return _factory(MechanismSpec("line_dynamic", {
        "ratio": 0.6,
        "threshold": threshold,
        "warmup": 2000,
        "test_window": 2000,
        "period": 10_000,
    }))


def _threshold_for(name):
    key = name.rsplit("-", 1)[0] if name.startswith("DL0") else name
    return PAPER_DYNAMIC_THRESHOLDS.get(key, 0.02)


def run_table3(streams):
    rows = []
    losses = {}
    for config in DL0_CONFIGS:
        cache_config = config
        schemes = {
            "SetFixed50%": _factory(MechanismSpec("set_fixed",
                                                  {"ratio": 0.5})),
            "LineFixed50%": _factory(MechanismSpec("line_fixed",
                                                   {"ratio": 0.5})),
            "LineDynamic60%": _dynamic_factory(_threshold_for(config.name)),
        }
        row = [config.name]
        for scheme_name, factory in schemes.items():
            study = run_cache_study(
                cache_config, factory, streams,
                accesses_per_uop=0.36,
                effective_penalty=DL0_EFFECTIVE_PENALTY,
            )
            row.append(f"{study.mean_loss:.2%}")
            losses[(config.name, scheme_name)] = study.mean_loss
        rows.append(row)
    for config in DTLB_CONFIGS:
        cache_config = config.cache_config()
        schemes = {
            "SetFixed50%": _factory(MechanismSpec("set_fixed",
                                                  {"ratio": 0.5})),
            "LineFixed50%": _factory(MechanismSpec("line_fixed",
                                                   {"ratio": 0.5})),
            "LineDynamic60%": _dynamic_factory(_threshold_for(config.name)),
        }
        row = [config.name]
        for scheme_name, factory in schemes.items():
            study = run_cache_study(
                cache_config, factory, streams,
                accesses_per_uop=0.36,
                effective_penalty=DTLB_EFFECTIVE_PENALTY,
            )
            row.append(f"{study.mean_loss:.2%}")
            losses[(config.name, scheme_name)] = study.mean_loss
        rows.append(row)
    return rows, losses


def test_tab3_cache_performance(benchmark, streams):
    rows, losses = benchmark.pedantic(
        run_table3, args=(streams,), rounds=1, iterations=1
    )

    if not SMOKE:
        # Shape assertions: dynamic wins (or ties) everywhere.
        for config in [c.name for c in DL0_CONFIGS] + [c.name for c in
                                                       DTLB_CONFIGS]:
            dynamic = losses[(config, "LineDynamic60%")]
            assert dynamic <= losses[(config, "LineFixed50%")] + 0.003
            assert dynamic <= losses[(config, "SetFixed50%")] + 0.003
        # Losses grow as the DL0 shrinks (per associativity).
        for ways in ("8w", "4w"):
            fixed = [losses[(f"DL0-{kb}K-{ways}", "LineFixed50%")]
                     for kb in (32, 16, 8)]
            assert fixed[0] <= fixed[2] + 0.003
        # All losses stay small (the 8KB configs overshoot the paper's
        # 1.6-2.3% because the synthetic streams have a fatter reuse
        # tail; see EXPERIMENTS.md).
        assert all(loss < 0.08 for loss in losses.values())

    text = format_table(
        ["config", "SetFixed50%", "LineFixed50%", "LineDynamic60%"],
        rows,
        title="Table 3 — average performance loss per inversion scheme",
    )
    text += "\npaper anchors: DL0-32K-8w 0.75%/0.53%/0.45%; "
    text += "DL0-8K-4w 1.73%/2.31%/1.02%; DTLB-128 0.32%/0.34%/0.14%"
    write_result("tab3_cache_perf.txt", text)
