#!/usr/bin/env python
"""Cache inversion study (Section 4.6 / Table 3).

Compares the three invalidate-and-invert schemes on a DL0 configuration
across the ten Table 1 suites, showing per-suite losses and the dynamic
scheme's activation decisions.

Driven through the declarative API: two ``StudySpec``\ s (the fixed
schemes at K=50%, the dynamic scheme at K=60%) whose sweep axes are
spec field paths; each expands to one point per (scheme, suite).  Pass
``--workers N`` to fan them out over processes.

Run:  python examples/cache_inversion_study.py [--workers N]
"""

import argparse

from repro import api
from repro.analysis import format_table
from repro.config import (
    CacheGeometrySpec,
    MechanismSpec,
    ProcessorSpec,
    ProtectionSpec,
    StudySpec,
    WorkloadSpec,
)
from repro.experiments import group_results
from repro.workloads import suite_names

PROCESSOR = ProcessorSpec(dl0=CacheGeometrySpec(size_kb=16, ways=8))
WORKLOAD = WorkloadSpec(suites=tuple(suite_names()), length=15_000,
                        seed=5)

FIXED_SPEC = StudySpec(
    "caches",
    processor=PROCESSOR,
    protection=ProtectionSpec(
        dl0=MechanismSpec("line_fixed", {"ratio": 0.5})),
    workload=WORKLOAD,
    sweep={"protection.dl0.name": ["set_fixed", "line_fixed"]},
)

DYNAMIC_SPEC = StudySpec(
    "caches",
    processor=PROCESSOR,
    protection=ProtectionSpec(
        dl0=MechanismSpec("line_dynamic", {
            "ratio": 0.6, "threshold": 0.03, "warmup": 1500,
            "test_window": 1500, "period": 8000,
        })),
    workload=WORKLOAD,
)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    results = (
        api.run_study(FIXED_SPEC, workers=args.workers).results
        + api.run_study(DYNAMIC_SPEC, workers=args.workers).results
    )

    by_suite = group_results(results, ["suite"])
    scheme_columns = ["SetFixed50%", "LineFixed50%", "LineDynamic60%"]
    rows = []
    decisions = {}
    for (suite,), members in by_suite.items():
        losses = {m.metrics["scheme_name"]: m.metrics["mean_loss"]
                  for m in members}
        base_miss = members[0].metrics["baseline_miss_rate"]
        rows.append([suite, f"{base_miss:.2%}"]
                    + [f"{losses[name]:.2%}" for name in scheme_columns])
        for member in members:
            if "activations" in member.metrics:
                decisions[suite] = member.metrics["activations"]

    print(format_table(
        ["suite", "base miss"] + scheme_columns,
        rows,
        title=(f"Per-suite performance loss on "
               f"{PROCESSOR.dl0.to_cache_config().name}"),
    ))

    print("\nLineDynamic60% activation decisions per test period")
    print("(- = the self-test measured too many induced misses and")
    print(" disabled inversion for that period — the paper's cache-filler")
    print(" escape hatch):")
    for suite, shown in decisions.items():
        print(f"  {suite:14s} {shown}")


if __name__ == "__main__":
    main()
