"""Netlist container and builder DSL for combinational circuits.

:class:`Circuit` holds named nodes and primitive gates, computes a
topological evaluation order once, and then evaluates input vectors into
full node-value maps.  :class:`CircuitBuilder` provides composite-function
helpers (AND, OR, XOR, ...) that expand into primitives so that every
internal node is visible to the aging simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.gates import Gate, GateKind
from repro.nbti.transistor import PMOSTransistor, WidthClass


class Circuit:
    """A combinational netlist of primitive gates.

    Nodes are identified by strings.  Primary inputs are nodes not driven
    by any gate; primary outputs are explicitly declared.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: List[Gate] = []
        self._driver: Dict[str, Gate] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._order: Optional[List[Gate]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, node: str) -> str:
        """Declare a primary input node."""
        if node in self._driver:
            raise ValueError(f"node {node!r} is already driven by a gate")
        if node not in self._inputs:
            self._inputs.append(node)
        return node

    def add_output(self, node: str) -> str:
        """Declare a primary output node."""
        if node not in self._outputs:
            self._outputs.append(node)
        return node

    def add_gate(self, gate: Gate) -> Gate:
        """Add a primitive gate; its output node must be undriven so far."""
        if gate.output in self._driver:
            raise ValueError(f"node {gate.output!r} already has a driver")
        if gate.output in self._inputs:
            raise ValueError(f"node {gate.output!r} is a primary input")
        self._gates.append(gate)
        self._driver[gate.output] = gate
        self._order = None
        return gate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All nodes: primary inputs followed by gate outputs."""
        return tuple(self._inputs) + tuple(g.output for g in self._gates)

    def pmos_transistors(self) -> Tuple[PMOSTransistor, ...]:
        """Every PMOS transistor in the design."""
        return tuple(p for gate in self._gates for p in gate.pmos)

    def narrow_pmos(self) -> Tuple[PMOSTransistor, ...]:
        return tuple(p for p in self.pmos_transistors() if p.is_narrow)

    def fanout(self, node: str) -> int:
        """Number of gate input pins driven by ``node``."""
        return sum(gate.inputs.count(node) for gate in self._gates)

    def driver_of(self, node: str) -> Optional[Gate]:
        return self._driver.get(node)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Gate]:
        """Gates in dependency order; cached until the netlist changes."""
        if self._order is not None:
            return self._order
        ready = set(self._inputs)
        remaining = list(self._gates)
        order: List[Gate] = []
        while remaining:
            progress = False
            still: List[Gate] = []
            for gate in remaining:
                if all(node in ready for node in gate.inputs):
                    order.append(gate)
                    ready.add(gate.output)
                    progress = True
                else:
                    still.append(gate)
            if not progress:
                dangling = sorted(
                    {n for g in still for n in g.inputs if n not in ready}
                )
                raise ValueError(
                    "netlist has undriven nodes or a combinational loop: "
                    f"{dangling[:8]}"
                )
            remaining = still
        self._order = order
        return order

    def evaluate(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate the circuit for one input vector.

        Parameters
        ----------
        input_values:
            Mapping from every primary-input node to 0/1.

        Returns
        -------
        dict
            Logic value of *every* node (inputs and gate outputs).
        """
        missing = [n for n in self._inputs if n not in input_values]
        if missing:
            raise ValueError(f"missing values for inputs: {missing[:8]}")
        values: Dict[str, int] = {}
        for node in self._inputs:
            value = input_values[node]
            if value not in (0, 1):
                raise ValueError(f"input {node!r} must be 0/1, got {value!r}")
            values[node] = value
        for gate in self.topological_order():
            values[gate.output] = gate.evaluate(
                [values[node] for node in gate.inputs]
            )
        return values

    def output_values(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate and return only the declared primary outputs."""
        values = self.evaluate(input_values)
        return {node: values[node] for node in self._outputs}

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def resize_gates(
        self, names: Iterable[str], width_class: WidthClass
    ) -> int:
        """Replace the named gates with copies of the given width class.

        Returns the number of gates whose class actually changed.  Gates
        are immutable, so resizing swaps in fresh instances.
        """
        wanted = set(names)
        converted = 0
        for index, gate in enumerate(self._gates):
            if gate.name not in wanted or gate.width_class is width_class:
                continue
            replacement = Gate(
                name=gate.name,
                kind=gate.kind,
                inputs=gate.inputs,
                output=gate.output,
                width_class=width_class,
            )
            self._gates[index] = replacement
            self._driver[gate.output] = replacement
            converted += 1
        self._order = None
        return converted

    def apply_fanout_sizing(self, wide_threshold: int = 4) -> int:
        """Re-size gates whose output fanout meets ``wide_threshold``.

        High-fanout drivers (carry trees, buffers) are implemented with
        wide transistors in real designs; per the paper's Figure 4
        discussion those tolerate full bias.  Returns the number of gates
        converted to WIDE.
        """
        if wide_threshold <= 0:
            raise ValueError("wide_threshold must be positive")
        heavy = [
            gate.name
            for gate in self._gates
            if self.fanout(gate.output) >= wide_threshold
        ]
        return self.resize_gates(heavy, WidthClass.WIDE)

    def __len__(self) -> int:
        return len(self._gates)


class CircuitBuilder:
    """Composite-function DSL on top of :class:`Circuit`.

    Every helper returns the name of the node holding the function value;
    composite functions expand into INV/NAND2/NOR2 primitives so all
    internal nodes are first-class.

    Examples
    --------
    >>> builder = CircuitBuilder("demo")
    >>> a, b = builder.input("a"), builder.input("b")
    >>> s = builder.xor2(a, b, name="s")
    >>> builder.mark_output(s)
    's'
    >>> builder.circuit.output_values({"a": 1, "b": 0})
    {'s': 1}
    """

    def __init__(self, name: str = "circuit") -> None:
        self.circuit = Circuit(name)
        self._counter = 0

    # ------------------------------------------------------------------
    def input(self, node: str) -> str:
        return self.circuit.add_input(node)

    def inputs(self, prefix: str, width: int) -> List[str]:
        """Declare a bus of primary inputs ``prefix0 .. prefix<width-1>``."""
        return [self.input(f"{prefix}{i}") for i in range(width)]

    def mark_output(self, node: str) -> str:
        return self.circuit.add_output(node)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def inv(self, a: str, name: Optional[str] = None) -> str:
        return self._emit(GateKind.INV, (a,), name)

    def nand2(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self._emit(GateKind.NAND2, (a, b), name)

    def nor2(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self._emit(GateKind.NOR2, (a, b), name)

    # ------------------------------------------------------------------
    # Composites
    # ------------------------------------------------------------------
    def and2(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.inv(self.nand2(a, b), name)

    def or2(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.inv(self.nor2(a, b), name)

    def xor2(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Four-NAND XOR; all three internal nodes are explicit."""
        nab = self.nand2(a, b)
        return self.nand2(self.nand2(a, nab), self.nand2(b, nab), name)

    def xnor2(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.inv(self.xor2(a, b), name)

    def aoi21(self, a: str, b: str, c: str, name: Optional[str] = None) -> str:
        """(a AND b) OR c — the carry-operator kernel g + p*g'."""
        return self.or2(self.and2(a, b), c, name)

    def and_tree(self, nodes: Sequence[str], name: Optional[str] = None) -> str:
        """Balanced AND over an arbitrary number of nodes."""
        return self._tree(self.and2, nodes, name)

    def or_tree(self, nodes: Sequence[str], name: Optional[str] = None) -> str:
        """Balanced OR over an arbitrary number of nodes."""
        return self._tree(self.or2, nodes, name)

    # ------------------------------------------------------------------
    def _tree(self, op, nodes: Sequence[str], name: Optional[str]) -> str:
        if not nodes:
            raise ValueError("tree reduction needs at least one node")
        level = list(nodes)
        while len(level) > 1:
            nxt: List[str] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        if name is not None and level[0] != name:
            # Buffer through two inverters to land on the requested name.
            return self.inv(self.inv(level[0]), name)
        return level[0]

    def _emit(
        self, kind: GateKind, inputs: Tuple[str, ...], name: Optional[str]
    ) -> str:
        self._counter += 1
        output = name if name is not None else f"n{self._counter}"
        gate = Gate(
            name=f"g{self._counter}_{kind.value}",
            kind=kind,
            inputs=inputs,
            output=output,
        )
        self.circuit.add_gate(gate)
        return output
