"""PMOS transistor descriptors for the gate-level aging simulator.

Section 2.1 of the paper notes that NBTI can be mitigated with wider
transistors at a delay/area/power cost, and the Figure 4 analysis counts
only the *narrow* transistors with 100% zero-signal probability because
"wide PMOS with 100% zero-signal probability degrade less than narrow
PMOS with 50% probability".  The gate library therefore tags every PMOS
with a :class:`WidthClass`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WidthClass(enum.Enum):
    """Sizing class of a PMOS transistor.

    NARROW transistors are minimum-width devices on non-critical inputs;
    WIDE transistors drive large fan-outs (carry trees, output buffers)
    and, per ref [19] of the paper, tolerate full bias without failing
    within the product lifetime.
    """

    NARROW = "narrow"
    WIDE = "wide"


@dataclass(frozen=True)
class PMOSTransistor:
    """One PMOS transistor inside a gate.

    Attributes
    ----------
    name:
        Unique identifier, conventionally ``<gate>.<input pin>``.
    gate_node:
        Netlist node whose logic value drives this transistor's gate.
        The transistor is under NBTI stress whenever that node is "0".
    width_class:
        Sizing class; Figure 4's metric counts only NARROW devices.
    """

    name: str
    gate_node: str
    width_class: WidthClass = WidthClass.NARROW

    @property
    def is_narrow(self) -> bool:
        return self.width_class is WidthClass.NARROW

    def stressed_by(self, node_value: int) -> bool:
        """Whether a given logic value at the gate node stresses the PMOS."""
        if node_value not in (0, 1):
            raise ValueError(f"node_value must be 0 or 1, got {node_value!r}")
        return node_value == 0
