"""Functional and structural tests for the Ladner-Fischer adder."""

import random

import pytest

from repro.circuits import AgingSimulator, build_ladner_fischer_adder
from repro.nbti.transistor import WidthClass


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("a,b,cin", [
        (0, 0, 0),
        (0, 0, 1),
        (255, 1, 0),
        (255, 255, 1),
        (170, 85, 0),
        (128, 128, 0),
    ])
    def test_exhaustive_corners_8bit(self, adder8, a, b, cin):
        total, cout = adder8.add(a, b, cin)
        reference = a + b + cin
        assert total == reference & 0xFF
        assert cout == reference >> 8

    def test_random_vectors_8bit(self, adder8):
        rng = random.Random(42)
        for __ in range(200):
            a, b = rng.randrange(256), rng.randrange(256)
            cin = rng.randrange(2)
            total, cout = adder8.add(a, b, cin)
            reference = a + b + cin
            assert total == reference & 0xFF
            assert cout == reference >> 8

    def test_random_vectors_32bit(self, adder32):
        rng = random.Random(7)
        mask = (1 << 32) - 1
        for __ in range(50):
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            cin = rng.randrange(2)
            total, cout = adder32.add(a, b, cin)
            reference = a + b + cin
            assert total == reference & mask
            assert cout == reference >> 32

    def test_non_power_of_two_width(self):
        adder = build_ladner_fischer_adder(width=5)
        for a in range(32):
            total, cout = adder.add(a, 31 - a, 1)
            assert total == 0
            assert cout == 1

    def test_width_one(self):
        adder = build_ladner_fischer_adder(width=1)
        assert adder.add(1, 1, 1) == (1, 1)

    def test_operand_range_checked(self, adder8):
        with pytest.raises(ValueError):
            adder8.add(256, 0, 0)
        with pytest.raises(ValueError):
            adder8.add(0, 0, 2)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            build_ladner_fischer_adder(width=0)


class TestStructure:
    def test_counts_scale_with_width(self, adder8, adder32):
        assert adder32.gate_count > adder8.gate_count
        assert adder32.pmos_count > adder8.pmos_count
        assert adder32.transistor_count == 2 * adder32.pmos_count

    def test_has_wide_transistors_from_sizing(self, adder32):
        wide = adder32.pmos_count - adder32.narrow_pmos_count
        assert wide > 0
        # The wide population is a minority: only block boundaries and
        # output stages are upsized.
        assert wide < adder32.pmos_count / 2

    def test_block_boundary_fanout_exists(self, adder32):
        # Ladner-Fischer's hallmark: some prefix node drives many
        # consumers (fanout >= 4 triggers wide sizing).
        circuit = adder32.circuit
        assert any(
            circuit.fanout(g.output) >= 4 for g in circuit.gates
        )

    def test_output_stage_is_wide(self, adder32):
        circuit = adder32.circuit
        for node in circuit.outputs:
            driver = circuit.driver_of(node)
            assert driver.width_class is WidthClass.WIDE

    def test_pin_names(self, adder8):
        assert adder8.a_pin(0) == "a0"
        assert adder8.b_pin(7) == "b7"
        assert adder8.sum_pin(3) == "s3"
        assert adder8.cin_pin == "cin"
        assert adder8.cout_pin == "cout"


class TestIdlePairBehaviour:
    def test_pair_1_8_leaves_no_narrow_fully_stressed(self, adder32):
        """The paper's winning pair: all-zeros + all-ones round-robin."""
        ones = (1 << 32) - 1
        sim = AgingSimulator(adder32.circuit)
        sim.apply(adder32.input_vector(0, 0, 0), 1.0)
        sim.apply(adder32.input_vector(ones, ones, 1), 1.0)
        report = sim.report()
        assert report.narrow_fully_stressed == 0
        # "only few wide PMOS have 100% zero-signal probability"
        assert 0 < report.wide_fully_stressed < adder32.pmos_count * 0.1

    def test_bad_pair_stresses_narrow_transistors(self, adder32):
        """<0,0,0> + <0,0,1> keeps operand inputs at zero throughout."""
        sim = AgingSimulator(adder32.circuit)
        sim.apply(adder32.input_vector(0, 0, 0), 1.0)
        sim.apply(adder32.input_vector(0, 0, 1), 1.0)
        report = sim.report()
        assert report.narrow_fully_stressed > 0
