"""Job lifecycle for the sweep service: dedup, execute, stream.

A *job* is one submitted StudySpec/SweepSpec resolved to the engine's
:class:`~repro.experiments.spec.SweepSpec`.  Jobs are identified by
their run_id (so journals, manifests, and event-log records line up
with the job id a client holds) and deduplicated by spec hash: two
clients POSTing the same spec — concurrently or hours apart — attach
to one execution sharing one result-store write per point.  Point-level
dedup then happens inside the runner against the shared
:class:`~repro.fabric.store.ShardedResultStore`, so even *different*
specs overlapping in grid points share work.

Threading model (the part that has to be right):

- all job bookkeeping (submit, status, subscribe) runs on the event
  loop — the asyncio server is single-threaded, which makes concurrent
  identical submits naturally race-free;
- each job's sweep runs in a ``ThreadPoolExecutor`` slot, opening its
  *own* store handle over the shared directory (SQLite connections are
  thread-affine);
- the only executor→loop traffic is plain-int counter updates (GIL
  atomic) plus terminal-state flags; the per-job pump task on the loop
  turns those, and the tailed ``events.jsonl``, into hub messages.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import api
from repro.experiments.runner import EVENTS_NAME, SweepRunner, SweepResult
from repro.experiments.spec import SweepSpec
from repro.fabric.runner import FabricIncompleteError, FabricRunner
from repro.fabric.store import ShardedResultStore
from repro.metrics.stats import MetricSet
from repro.metrics.telemetry import IntervalTelemetry
from repro.obs.log import EventLog, EventTailer, new_run_id
from repro.obs.provenance import spec_hash
from repro.service.hub import Hub

__all__ = ["Job", "JobManager", "TERMINAL_STATES"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
INCOMPLETE = "incomplete"

TERMINAL_STATES = (DONE, ERROR, INCOMPLETE)

PUMP_INTERVAL = 0.05


class Job:
    """One deduplicated sweep execution and its streaming state."""

    def __init__(self, run_id: str, spec: SweepSpec, digest: str,
                 fabric: bool, workers: int,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.run_id = run_id
        self.spec = spec
        self.spec_hash = digest
        self.fabric = fabric
        self.workers = workers
        self.state = QUEUED
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.submissions = 1
        self.total = spec.size
        self.done = 0
        self.cache_hits = 0
        self.executed = 0
        self.manifest_path: Optional[str] = None
        self.results: List[Dict[str, Any]] = []
        self.hub = Hub(loop)
        self._runner: Optional[Any] = None
        # Job-level telemetry: read-backed stats over the live counters,
        # snapshotted by the pump whenever progress moved.
        metrics = MetricSet()
        metrics.gauge("total", read=lambda: self.total)
        metrics.counter("done", read=lambda: self.done)
        metrics.counter("cache_hits", read=lambda: self.cache_hits)
        metrics.counter("executed", read=lambda: self.executed)
        self.telemetry = IntervalTelemetry(metrics, every=1)

    # ------------------------------------------------------------------
    def note_point(self, result: Any) -> None:
        """Runner progress callback (executor thread: plain ints only)."""
        self.done += 1
        if result.cached:
            self.cache_hits += 1
        else:
            self.executed += 1

    def status(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job": self.run_id,
            "run_id": self.run_id,
            "state": self.state,
            "study": self.spec.study,
            "spec_hash": self.spec_hash,
            "fabric": self.fabric,
            "workers": self.workers,
            "submissions": self.submissions,
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "manifest": self.manifest_path,
            "telemetry_snapshots": len(self.telemetry.snapshots),
        }
        if self.state == INCOMPLETE:
            payload["resume"] = (
                f"repro sweep --resume {self.run_id} --fabric")
        return payload


class JobManager:
    """Submit, deduplicate, execute and stream sweep jobs."""

    def __init__(self, directory: str, max_jobs: int = 2,
                 default_workers: int = 1,
                 log: Optional[EventLog] = None,
                 loop: Optional[asyncio.AbstractEventLoop] = None,
                 ) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.events_path = os.path.join(self.directory, EVENTS_NAME)
        self.default_workers = default_workers
        self.log = log
        self._loop = loop or asyncio.get_event_loop()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_jobs, thread_name_prefix="repro-job")
        self._jobs: Dict[str, Job] = {}
        self._by_hash: Dict[str, str] = {}
        self._futures: Dict[str, asyncio.Future] = {}
        self._pumps: Dict[str, asyncio.Task] = {}
        self.draining = False
        # The loop-thread query handle over the shared store directory.
        self.store = ShardedResultStore(self.directory)

    # -- submission -----------------------------------------------------
    def submit(self, payload: Any, fabric: Optional[bool] = None,
               workers: Optional[int] = None) -> Tuple[Job, bool]:
        """Resolve, dedupe and (if new) launch a job.

        Returns ``(job, deduplicated)``.  Must be called on the event
        loop: loop serialization is what makes two simultaneous
        identical submits resolve to one execution.
        """
        if self.draining:
            raise RuntimeError("service is draining; not accepting jobs")
        spec = api.sweep_from_payload(payload)
        digest = spec_hash(spec.payload())
        known = self._by_hash.get(digest)
        if known is not None:
            job = self._jobs[known]
            if job.state != ERROR:
                job.submissions += 1
                return job, True
            # A failed attempt does not poison the spec forever:
            # fall through and run it afresh.
        job = Job(
            run_id=new_run_id(),
            spec=spec,
            digest=digest,
            fabric=bool(fabric),
            workers=max(1, workers or self.default_workers),
            loop=self._loop,
        )
        self._jobs[job.run_id] = job
        self._by_hash[digest] = job.run_id
        if self.log is not None:
            self.log.info("job_submitted", job=job.run_id,
                          study=job.spec.study, points=job.total,
                          spec_hash=digest, fabric=job.fabric,
                          workers=job.workers)
        # Capture the event-log watermark *before* the job thread can
        # write run_start: the pump must not start tailing "at the end"
        # of a file the runner already appended to.
        try:
            tail_from = os.path.getsize(self.events_path)
        except OSError:
            tail_from = 0
        future = self._loop.run_in_executor(
            self._executor, self._run_job, job)
        self._futures[job.run_id] = future
        self._pumps[job.run_id] = self._loop.create_task(
            self._pump(job, tail_from))
        return job, False

    def get(self, run_id: str) -> Optional[Job]:
        return self._jobs.get(run_id)

    def jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.created)

    # -- execution (executor thread) ------------------------------------
    def _run_job(self, job: Job) -> None:
        job.started = time.time()
        job.state = RUNNING
        store = ShardedResultStore(self.directory)
        runner: Any = None
        try:
            if job.fabric:
                runner = FabricRunner(
                    store, workers=job.workers, run_id=job.run_id,
                    progress=job.note_point)
            else:
                runner = SweepRunner(
                    store=store, workers=job.workers,
                    run_id=job.run_id, progress=job.note_point)
            job._runner = runner
            outcome = runner.run(job.spec)
            job.results = _result_rows(outcome)
            job.manifest_path = outcome.manifest_path
            job.state = DONE
        except FabricIncompleteError as exc:
            job.error = str(exc)
            job.state = INCOMPLETE
        except Exception as exc:  # surfaced via status, never raised
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = ERROR
        finally:
            job.finished = time.time()
            job._runner = None
            if isinstance(runner, FabricRunner):
                runner.close()
            store.close()

    # -- streaming (event loop) -----------------------------------------
    async def _pump(self, job: Job, tail_from: int = 0) -> None:
        """Bridge the event log and counters into the job's hub.

        Tails ``events.jsonl`` from the moment of submission (filtered
        to this job's run_id — the file is shared by every run in the
        directory) and snapshots telemetry whenever progress moved.
        One pump per job, any number of hub subscribers.
        """
        tailer = EventTailer(self.events_path, offset=tail_from,
                             run_id=job.run_id)
        job.hub.publish(_telemetry_message(job))
        last_done = job.done
        while True:
            for record in tailer.poll():
                job.hub.publish({"type": "event", "record": record})
            if job.done != last_done:
                last_done = job.done
                job.hub.publish(_telemetry_message(job))
            if job.state in TERMINAL_STATES:
                # One final poll: the runner wrote run_end before the
                # state flipped, but possibly after our last read.
                for record in tailer.poll():
                    job.hub.publish({"type": "event", "record": record})
                job.hub.publish(_telemetry_message(job))
                job.hub.close({"type": "job", **job.status()})
                return
            await asyncio.sleep(PUMP_INTERVAL)

    # -- queries --------------------------------------------------------
    def query_results(self, key: Optional[str] = None,
                      study: Optional[str] = None,
                      limit: int = 100) -> List[Dict[str, Any]]:
        """Store rows by key or study (the ``/v1/results`` endpoint)."""
        self.store.refresh()
        if key:
            record = self.store.get(key)
            return [_record_row(record)] if record is not None else []
        rows = self.store.records(study or None)
        return [_record_row(record) for record in rows[:max(0, limit)]]

    # -- drain ----------------------------------------------------------
    async def drain(self, grace: float = 30.0) -> Dict[str, Any]:
        """Stop accepting work; wind down what is running.

        Fabric jobs are asked to stop cooperatively (their journals
        make ``--resume`` bit-identical later); in-process sweep jobs
        are awaited up to ``grace`` seconds.  Counts what happened so
        the caller can log it.
        """
        self.draining = True
        stopped = 0
        for job in self._jobs.values():
            runner = job._runner
            if isinstance(runner, FabricRunner):
                runner.request_stop()
                stopped += 1
        pending = [f for f in self._futures.values() if not f.done()]
        if pending:
            await asyncio.wait(pending, timeout=grace)
        for task in self._pumps.values():
            if not task.done():
                try:
                    await asyncio.wait_for(task, timeout=2.0)
                except asyncio.TimeoutError:
                    task.cancel()
        self._executor.shutdown(wait=False)
        unfinished = [j.run_id for j in self._jobs.values()
                      if j.state not in TERMINAL_STATES]
        return {"stopped_fabric": stopped, "unfinished": unfinished}

    def close(self) -> None:
        self.store.close()


def _telemetry_message(job: Job) -> Dict[str, Any]:
    snapshot = job.telemetry.record(label=job.done)
    return {
        "type": "telemetry",
        "job": job.run_id,
        "label": snapshot.label,
        "values": dict(snapshot.values),
    }


def _result_rows(outcome: SweepResult) -> List[Dict[str, Any]]:
    return [{
        "key": r.point.key,
        "params": r.point.as_dict(),
        "metrics": dict(r.metrics),
        "cached": r.cached,
        "elapsed": r.elapsed,
    } for r in outcome.results]


def _record_row(record: Any) -> Dict[str, Any]:
    return {
        "key": record.key,
        "study": record.study,
        "params": dict(record.params),
        "metrics": dict(record.metrics),
        "elapsed": record.elapsed,
        "created": record.created,
    }
