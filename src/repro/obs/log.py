"""Structured run logging: a JSONL event stream plus a console renderer.

Every record is one self-contained JSON object::

    {"ts": 1690000000.0, "run_id": "3f9c2a1b04de", "span_id": "1a2f.3",
     "level": "info", "event": "point_done",
     "payload": {"key": "ab12...", "cached": false, "elapsed": 0.42}}

Records are appended with the PR 4 store discipline — one ``os.write``
on an ``O_APPEND`` fd per record — so concurrent sweep workers (threads
*or* processes) can log to the same file without ever interleaving
partial lines; a threaded test asserts this.  ``span_id`` is filled
from the calling thread's innermost open tracer span, which is how a
log line links back to the execution trace.

The console renderer (:func:`render_event`) is the human view of the
same stream — what the CLI shows instead of ad-hoc ``print``\\ s — and
``repro trace events`` replays a stored stream through it.
"""

from __future__ import annotations

import json
import os
import sys
import time
import uuid
from typing import (
    Any, Callable, Dict, IO, Iterator, List, Optional, Tuple, Union,
)

from repro.obs.trace import TRACER

#: Numeric severities (subset of stdlib logging, by design: the stream
#: is an event log, not a debug firehose).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}


def new_run_id() -> str:
    """A short, collision-resistant id naming one sweep/run."""
    return uuid.uuid4().hex[:12]


def render_event(record: Dict[str, Any]) -> str:
    """One human-readable line for a structured event record."""
    ts = record.get("ts", 0.0)
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    millis = int((ts % 1.0) * 1000)
    level = str(record.get("level", "info")).upper()
    payload = record.get("payload") or {}
    detail = " ".join(f"{key}={_compact(value)}"
                      for key, value in payload.items())
    line = (f"{clock}.{millis:03d} {level:<7} "
            f"{record.get('event', '?')}")
    return f"{line}  {detail}" if detail else line


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str):
        return value if len(value) <= 40 else value[:37] + "..."
    return json.dumps(value, sort_keys=True, default=str)


class EventLog:
    """Leveled, structured event sink: JSONL file and/or console.

    Parameters
    ----------
    path:
        JSONL destination; ``None`` keeps the log console-only (or
        fully inert when ``console`` is also off).
    run_id:
        Stamped into every record so multi-run files stay separable.
    level:
        Minimum severity that is recorded.
    console:
        When true, every recorded event is also rendered human-readably
        to ``stream`` (default ``sys.stderr``).
    """

    def __init__(self, path: Optional[str] = None,
                 run_id: Optional[str] = None, level: str = "info",
                 console: bool = False,
                 stream: Optional[IO[str]] = None) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; choose from "
                f"{', '.join(sorted(LEVELS, key=LEVELS.get))}"
            )
        self.path = path
        self.run_id = run_id or new_run_id()
        self.level = level
        self.console = console
        self.stream = stream
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def emit(self, event: str, level: str = "info",
             **payload: Any) -> Optional[Dict[str, Any]]:
        """Record one event; returns the record, or ``None`` if filtered."""
        if LEVELS.get(level, 0) < LEVELS[self.level]:
            return None
        record = {
            "ts": time.time(),
            "run_id": self.run_id,
            "span_id": TRACER.current_span_id(),
            "level": level,
            "event": event,
            "payload": payload,
        }
        if self.path:
            # One O_APPEND fd + one os.write per record (the PR 4 store
            # pattern): concurrent writers append whole lines atomically.
            data = (json.dumps(record, sort_keys=True, default=str)
                    + "\n").encode("utf-8")
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                written = os.write(fd, data)
            finally:
                os.close(fd)
            if written != len(data):
                raise OSError(
                    f"short write to {self.path}: {written} of "
                    f"{len(data)} bytes"
                )
        if self.console:
            print(render_event(record),
                  file=self.stream or sys.stderr)
        return record

    # Severity shorthands ------------------------------------------------
    def debug(self, event: str, **payload: Any):
        return self.emit(event, level="debug", **payload)

    def info(self, event: str, **payload: Any):
        return self.emit(event, level="info", **payload)

    def warning(self, event: str, **payload: Any):
        return self.emit(event, level="warning", **payload)

    def error(self, event: str, **payload: Any):
        return self.emit(event, level="error", **payload)


def _parse_event_line(line: bytes, floor: int,
                      run_id: Optional[str]) -> Optional[Dict[str, Any]]:
    """Decode + filter one log line; ``None`` for noise/filtered."""
    text = line.strip()
    if not text:
        return None
    try:
        record = json.loads(text.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "event" not in record:
        return None
    if LEVELS.get(record.get("level", "info"), 0) < floor:
        return None
    if run_id and record.get("run_id") != run_id:
        return None
    return record


def tail_events(
    path: str,
    offset: int = 0,
    level: Optional[str] = None,
    run_id: Optional[str] = None,
) -> Tuple[List[Dict[str, Any]], int]:
    """One incremental poll of an event log: ``(records, new_offset)``.

    The byte-offset watermark discipline of the store's ``refresh``:
    only complete lines (ending in ``\\n``) are consumed, so a torn
    final line — a writer caught mid-append — stays beyond the returned
    offset and is retried on the next poll.  A missing file is an empty
    poll (the sweep may not have started yet); a file *shorter* than
    the watermark (rotated/truncated) restarts from byte zero.
    """
    floor = LEVELS[level] if level else 0
    try:
        size = os.path.getsize(path)
    except OSError:
        return [], offset
    if size < offset:
        offset = 0
    if size == offset:
        return [], offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        tail = handle.read()
    records: List[Dict[str, Any]] = []
    consumed = 0
    for raw in tail.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            break  # torn final line: leave for the next poll
        consumed += len(raw)
        record = _parse_event_line(raw, floor, run_id)
        if record is not None:
            records.append(record)
    return records, offset + consumed


class EventTailer:
    """Stateful wrapper over :func:`tail_events` (one watermark).

    ``start_at_end=True`` begins tailing at the file's current size —
    what a live subscriber wants (the service's WS bridge): only events
    appended after attach, not the whole multi-run history.
    """

    def __init__(self, path: str, offset: int = 0,
                 level: Optional[str] = None,
                 run_id: Optional[str] = None,
                 start_at_end: bool = False) -> None:
        self.path = path
        self.level = level
        self.run_id = run_id
        if start_at_end:
            try:
                offset = os.path.getsize(path)
            except OSError:
                offset = 0
        self.offset = offset

    def poll(self) -> List[Dict[str, Any]]:
        """Records appended since the last poll (watermark advances)."""
        records, self.offset = tail_events(
            self.path, self.offset, self.level, self.run_id)
        return records


def read_events(
    path: str,
    level: Optional[str] = None,
    run_id: Optional[str] = None,
    follow: bool = False,
    poll_interval: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
) -> Union[List[Dict[str, Any]], Iterator[Dict[str, Any]]]:
    """Load an event-log file, optionally filtered by level / run id.

    Corrupt lines are skipped (the same tolerance as the result store:
    a crashed writer must not take the whole log down with it).

    ``follow=True`` returns an *iterator* instead: existing records
    first, then new ones as they are appended (``tail -f`` semantics,
    shared by ``repro trace events --follow`` and the service's WS
    bridge).  The optional ``stop`` callable is checked between polls.
    """
    if follow:
        return _follow_events(path, level, run_id, poll_interval, stop)
    records, __ = tail_events(path, 0, level, run_id)
    return records


def _follow_events(path: str, level: Optional[str],
                   run_id: Optional[str], poll_interval: float,
                   stop: Optional[Callable[[], bool]],
                   ) -> Iterator[Dict[str, Any]]:
    tailer = EventTailer(path, level=level, run_id=run_id)
    while True:
        yield from tailer.poll()
        if stop is not None and stop():
            return
        time.sleep(poll_interval)
