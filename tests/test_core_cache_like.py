"""Tests for the cache inversion schemes and the Table 3 harness."""

import random

import pytest

from repro.core.cache_like import (
    LineDynamicScheme,
    LineFixedScheme,
    ProtectedCache,
    SetFixedScheme,
    performance_loss,
    run_cache_study,
)
from repro.uarch.cache import Cache, CacheConfig, LineState
from repro.workloads import generate_address_stream

CONFIG = CacheConfig(name="DL0-8K-4w", size_bytes=8 * 1024, ways=4)


def hot_stream(n=4000, span=2048, seed=0):
    """A stream that fits comfortably in half the cache."""
    rng = random.Random(seed)
    return [rng.randrange(span // 4) * 4 for __ in range(n)]


def big_stream(n=4000, span=16 * 1024, seed=0):
    """A stream that uses the full cache (and then some)."""
    rng = random.Random(seed)
    return [rng.randrange(span // 4) * 4 for __ in range(n)]


class TestSetFixedScheme:
    def test_everything_stays_cacheable(self):
        cache = Cache(CONFIG)
        protected = ProtectedCache(cache, SetFixedScheme(0.5))
        # Addresses mapping to inverted sets are folded into live sets:
        # they hit on re-access.
        for address in (0x0, 0x40, 0x1000, 0x12345 & ~0x3F):
            protected.access(address)
        for address in (0x0, 0x40, 0x1000, 0x12345 & ~0x3F):
            assert protected.access(address)

    def test_inverted_population(self):
        cache = Cache(CONFIG)
        scheme = SetFixedScheme(0.5)
        ProtectedCache(cache, scheme)
        assert cache.inverted_count() == CONFIG.lines // 2
        assert len(scheme.inverted_sets()) == CONFIG.sets // 2

    def test_capacity_effectively_halved(self):
        # A working set equal to the full cache thrashes under SetFixed.
        base = Cache(CONFIG)
        stream = big_stream(6000, span=CONFIG.size_bytes)
        for address in stream:
            base.access(address)
        prot_cache = Cache(CONFIG)
        protected = ProtectedCache(prot_cache, SetFixedScheme(0.5))
        for address in stream:
            protected.access(address)
        assert protected.stats.miss_rate > base.stats.miss_rate

    def test_distinct_lines_stay_distinct_after_folding(self):
        cache = Cache(CONFIG)
        protected = ProtectedCache(cache, SetFixedScheme(0.5))
        # Two lines that fold into the same live set must not alias.
        a = 0x0
        b = CONFIG.sets // 2 * CONFIG.line_bytes
        protected.access(a)
        protected.access(b)
        assert protected.access(a)
        assert protected.access(b)

    def test_rotation_preserves_population(self):
        cache = Cache(CONFIG)
        scheme = SetFixedScheme(0.5, rotation_period=10)
        protected = ProtectedCache(cache, scheme)
        for i in range(10 * (CONFIG.sets // 2 + 1)):
            protected.access(i * 64)
        assert cache.inverted_count() >= CONFIG.lines // 2 - CONFIG.ways

    def test_validation(self):
        with pytest.raises(ValueError):
            SetFixedScheme(ratio=1.0)
        with pytest.raises(ValueError):
            SetFixedScheme(rotation_period=0)


class TestLineFixedScheme:
    def test_maintains_invert_ratio_on_realistic_stream(self):
        cache = Cache(CONFIG)
        protected = ProtectedCache(cache, LineFixedScheme(0.5))
        for address in generate_address_stream("office", 6000, seed=3):
            protected.access(address)
        ratio = cache.inverted_count() / CONFIG.lines
        assert ratio == pytest.approx(0.5, abs=0.06)

    def test_ratio_degrades_gracefully_under_thrash(self):
        # A uniformly random working set twice the cache size consumes
        # inverted lines on ~70% of accesses; the mechanism keeps the
        # ratio within reach of the target without evicting MRU lines.
        cache = Cache(CONFIG)
        protected = ProtectedCache(cache, LineFixedScheme(0.5))
        for address in big_stream():
            protected.access(address)
        ratio = cache.inverted_count() / CONFIG.lines
        assert 0.3 < ratio <= 0.5

    def test_small_working_set_loses_nothing(self):
        base = Cache(CONFIG)
        stream = hot_stream()
        for address in stream:
            base.access(address)
        prot_cache = Cache(CONFIG)
        protected = ProtectedCache(prot_cache, LineFixedScheme(0.5))
        for address in stream:
            protected.access(address)
        assert (protected.stats.miss_rate
                <= base.stats.miss_rate + 0.02)

    def test_big_working_set_pays(self):
        base = Cache(CONFIG)
        stream = big_stream()
        for address in stream:
            base.access(address)
        prot_cache = Cache(CONFIG)
        protected = ProtectedCache(prot_cache, LineFixedScheme(0.5))
        for address in stream:
            protected.access(address)
        assert protected.stats.miss_rate > base.stats.miss_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            LineFixedScheme(ratio=-0.1)


class TestLineDynamicScheme:
    def _scheme(self, threshold):
        return LineDynamicScheme(ratio=0.6, threshold=threshold,
                                 warmup=300, test_window=300, period=2000)

    def test_activates_for_small_working_sets(self):
        cache = Cache(CONFIG)
        scheme = self._scheme(threshold=0.02)
        protected = ProtectedCache(cache, scheme)
        for address in hot_stream(8000):
            protected.access(address)
        assert scheme.activation_history
        assert any(scheme.activation_history)
        assert cache.inverted_count() > 0

    def test_deactivates_for_cache_fillers(self):
        cache = Cache(CONFIG)
        scheme = self._scheme(threshold=0.01)
        protected = ProtectedCache(cache, scheme)
        for address in big_stream(8000, span=32 * 1024):
            protected.access(address)
        assert scheme.activation_history
        assert not all(scheme.activation_history)

    def test_dynamic_beats_fixed_on_cache_fillers(self):
        stream = big_stream(8000, span=32 * 1024)
        fixed_cache = Cache(CONFIG)
        fixed = ProtectedCache(fixed_cache, LineFixedScheme(0.5))
        dynamic_cache = Cache(CONFIG)
        dynamic = ProtectedCache(dynamic_cache, self._scheme(0.01))
        for address in stream:
            fixed.access(address)
            dynamic.access(address)
        assert dynamic.stats.miss_rate <= fixed.stats.miss_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            LineDynamicScheme(period=100, warmup=60, test_window=60)
        with pytest.raises(ValueError):
            LineDynamicScheme(threshold=-0.1)


class TestPerformanceModel:
    def test_loss_proportional_to_delta(self):
        loss = performance_loss(0.02, 0.03, accesses_per_uop=0.36,
                                effective_penalty=3.0, base_cpi=0.8)
        assert loss == pytest.approx(0.36 * 0.01 * 3.0 / 0.8)

    def test_negative_delta_floored(self):
        assert performance_loss(0.05, 0.04, 0.36, 3.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            performance_loss(0.0, 0.0, -1.0, 3.0)


class TestRunCacheStudy:
    def test_baseline_factory_none(self):
        streams = [generate_address_stream("office", 2000, seed=1)]
        result = run_cache_study(CONFIG, None, streams)
        assert result.mean_loss == 0.0
        assert result.scheme_name == "baseline"

    def test_scheme_name_without_streams(self):
        # Regression: with no streams the name used to come from a loop
        # side effect and silently fell back to "baseline".
        result = run_cache_study(CONFIG, lambda: LineFixedScheme(0.5), [])
        assert result.scheme_name == "LineFixed50%"
        assert result.per_stream_loss == ()
        baseline = run_cache_study(CONFIG, None, [])
        assert baseline.scheme_name == "baseline"

    def test_linefixed_study_fields(self):
        streams = [
            generate_address_stream("office", 2000, seed=1),
            generate_address_stream("server", 2000, seed=1),
        ]
        result = run_cache_study(CONFIG, lambda: LineFixedScheme(0.5),
                                 streams)
        assert result.scheme_name == "LineFixed50%"
        assert len(result.per_stream_loss) == 2
        assert result.mean_loss >= 0.0
        assert 0.3 < result.mean_inverted_ratio <= 0.55
        assert 0.0 <= result.fraction_above.above(0.05) <= 1.0
