"""Static bearer-token authentication for the sweep service.

One shared secret, checked in constant time.  Deliberately not a user
model: the service is an internal sweep frontend — the token gates who
may submit compute, nothing finer-grained.  Comparing SHA-256 digests
of the tokens (rather than the tokens themselves) makes the
``hmac.compare_digest`` inputs fixed-length, so even the length of the
configured secret leaks nothing.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Mapping, Optional

__all__ = ["TokenAuth"]

_PREFIX = "bearer "


class TokenAuth:
    """Check ``Authorization: Bearer <token>`` headers.

    ``token=None`` (or empty) disables auth — every request passes,
    which is the open default for local use; ``repro serve --token``
    or ``REPRO_SERVICE_TOKEN`` turns it on.
    """

    def __init__(self, token: Optional[str] = None) -> None:
        self._digest: Optional[bytes] = (
            hashlib.sha256(token.encode("utf-8")).digest()
            if token else None)

    @property
    def enabled(self) -> bool:
        return self._digest is not None

    def check(self, headers: Mapping[str, str]) -> bool:
        """True when the request may proceed (header keys lower-case)."""
        if self._digest is None:
            return True
        value = headers.get("authorization", "")
        if not value.lower().startswith(_PREFIX):
            return False
        supplied = value[len(_PREFIX):].strip()
        digest = hashlib.sha256(supplied.encode("utf-8")).digest()
        return hmac.compare_digest(digest, self._digest)
