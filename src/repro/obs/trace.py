"""Span-based execution tracer with Chrome trace-event export.

The tracer is the *when/where* leg of the telemetry triad (the metrics
tree is the *values* leg, the event log the *what happened* leg).  Code
wraps interesting regions in spans::

    from repro.obs.trace import TRACER

    with TRACER.span("replay", addrs=len(stream)):
        cache.replay(stream)

or, on hot paths where a ``with`` block would re-indent a large loop,
the allocation-free token form::

    _t = TRACER.begin()
    ...                       # the traced region
    if _t is not None:
        TRACER.end(_t, "cache.replay", accesses=n)

Design constraints (DESIGN.md §7):

- **Near-zero cost disabled.**  ``begin()`` is one attribute test
  returning ``None``; ``span()`` returns a shared no-op singleton; no
  argument dicts, records or timestamps are materialised.  The kernel
  benches gate this at <1% of the seed-counter replay.
- **Bounded memory enabled.**  Records land in a ``deque(maxlen=
  capacity)`` ring: a multi-year simulated run keeps the most recent
  ``capacity`` spans instead of growing without bound.
- **Cross-process mergeable.**  Records are plain dicts with epoch
  timestamps and the recording pid/tid, so sweep workers can ship their
  spans back through the multiprocessing pool and the parent's ring
  holds one coherent timeline (:meth:`Tracer.extend`).

Export targets the Chrome trace-event JSON format (``"X"`` complete
events), loadable in Perfetto / ``about://tracing`` — see
:func:`to_chrome_trace` / :func:`export_chrome_trace`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from functools import wraps
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Setting this environment variable to a non-empty value enables the
#: process-global tracer at import time (how spawn-started workers and
#: ad-hoc scripts opt in without code changes).
TRACE_ENV = "REPRO_TRACE"

#: Default ring capacity: enough for ~10k sweep points' worth of spans
#: while staying a few MB at worst.
DEFAULT_CAPACITY = 65_536

#: Schema tag carried by saved span files.
SPANS_SCHEMA = "repro.spans/1"


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Ignore late attributes (mirrors :meth:`_Span.set`)."""


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records itself into the tracer's ring on exit."""

    __slots__ = ("_tracer", "name", "args", "_wall", "_perf", "span_id",
                 "parent_id")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (counts, outcomes)."""
        self.args.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.parent_id = tracer.current_span_id()
        self.span_id = tracer._next_id()
        tracer._push(self.span_id)
        self._wall = time.time()
        self._perf = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._perf
        tracer = self._tracer
        tracer._pop()
        tracer._record(self.name, self._wall, duration, self.span_id,
                       self.parent_id, self.args)
        return False


class Tracer:
    """Bounded in-memory span recorder (one per process, usually).

    All state-changing methods are cheap and the ring is append-only
    (``deque.append`` is atomic under the GIL), so tracing from worker
    threads is safe; span *nesting* is tracked per thread.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._stacks = threading.local()

    # -- lifecycle ------------------------------------------------------
    def enable(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity != self.capacity:
            self.capacity = capacity
            self._ring = deque(self._ring, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    # -- span identity --------------------------------------------------
    def _next_id(self) -> str:
        return f"{os.getpid():x}.{next(self._ids):x}"

    def _stack(self) -> List[str]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _push(self, span_id: str) -> None:
        self._stack().append(span_id)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def current_span_id(self) -> Optional[str]:
        """Innermost open span of the calling thread (None at top level)."""
        stack = getattr(self._stacks, "stack", None)
        return stack[-1] if stack else None

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Context manager tracing one region (no-op while disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def begin(self) -> Optional[Tuple[float, float, Optional[str]]]:
        """Token form for hot paths: ``None`` (free) while disabled."""
        if not self.enabled:
            return None
        return (time.time(), time.perf_counter(), self.current_span_id())

    def end(self, token, name: str, **attrs: Any) -> None:
        """Close a :meth:`begin` token.  ``end(None, ...)`` is a no-op,
        but guard the call with ``if token is not None`` anyway so the
        ``attrs`` dict is never built on the disabled path."""
        if token is None:
            return
        wall, perf, parent_id = token
        self._record(name, wall, time.perf_counter() - perf,
                     self._next_id(), parent_id, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Zero-duration marker (rare discrete events, e.g. a scheme
        activation decision)."""
        if not self.enabled:
            return
        self._record(name, time.time(), 0.0, self._next_id(),
                     self.current_span_id(), attrs, phase="i")

    def _record(self, name: str, wall: float, duration: float,
                span_id: str, parent_id: Optional[str],
                args: Dict[str, Any], phase: str = "X") -> None:
        self._ring.append({
            "name": name,
            "ph": phase,
            "ts": wall,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "span_id": span_id,
            "parent_id": parent_id,
            "args": args,
        })

    # -- access / merge -------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of the ring, oldest first."""
        return list(self._ring)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop every record (how pool workers ship spans back)."""
        records = list(self._ring)
        self._ring.clear()
        return records

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        """Merge records from another process into this ring."""
        self._ring.extend(records)

    def record_span(self, name: str, wall: float, duration: float,
                    **attrs: Any) -> None:
        """Append a span observed externally (e.g. a queue wait whose
        endpoints were measured in two different processes)."""
        if not self.enabled:
            return
        self._record(name, wall, duration, self._next_id(), None, attrs)


#: The process-global tracer every instrumented module shares.
TRACER = Tracer(enabled=bool(os.environ.get(TRACE_ENV)))


def get_tracer() -> Tracer:
    return TRACER


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator tracing every call of a function as one span."""

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            if not TRACER.enabled:
                return func(*args, **kwargs)
            with TRACER.span(span_name, **attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Persistence: raw span JSONL <-> Chrome trace-event JSON
# ----------------------------------------------------------------------
def save_spans(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write records as JSONL (one header line + one line per span).

    Returns the number of spans written.  The raw form (not Chrome
    JSON) is what sweeps persist: it keeps span/parent ids and epoch
    timestamps, so later exports can filter, merge, or re-anchor.
    """
    records = list(records)
    lines = [json.dumps({"schema": SPANS_SCHEMA, "spans": len(records)})]
    lines += [json.dumps(record, sort_keys=True) for record in records]
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(records)


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Read a :func:`save_spans` file back; validates the header."""
    with open(path, encoding="utf-8") as handle:
        lines = [line for line in (l.strip() for l in handle) if line]
    if not lines:
        raise ValueError(f"{path}: empty span file")
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise ValueError(f"{path}: not a span file (bad header)") from None
    if not isinstance(header, dict) or header.get("schema") != SPANS_SCHEMA:
        raise ValueError(
            f"{path}: not a span file (expected schema {SPANS_SCHEMA!r})"
        )
    return [json.loads(line) for line in lines[1:]]


def to_chrome_trace(records: Iterable[Dict[str, Any]],
                    label: str = "repro") -> Dict[str, Any]:
    """Convert span records to a Chrome trace-event JSON object.

    Timestamps are re-anchored to the earliest span (Perfetto renders
    microseconds since trace start far better than epoch microseconds)
    and each pid gets a ``process_name`` metadata event so sweeps show
    one named track per worker.
    """
    records = list(records)
    if records:
        origin = min(record["ts"] for record in records)
    else:
        origin = 0.0
    events: List[Dict[str, Any]] = []
    pids = []
    for record in records:
        pid = record.get("pid", 0)
        if pid not in pids:
            pids.append(pid)
        event = {
            "name": record["name"],
            "cat": record["name"].split(".", 1)[0],
            "ph": record.get("ph", "X"),
            "ts": (record["ts"] - origin) * 1e6,
            "pid": pid,
            "tid": record.get("tid", 0),
            "args": dict(record.get("args", {})),
        }
        if event["ph"] == "X":
            event["dur"] = record.get("dur", 0.0) * 1e6
        else:  # instant events carry a scope instead of a duration
            event["s"] = "t"
        if record.get("span_id"):
            event["args"].setdefault("span_id", record["span_id"])
        events.append(event)
    for index, pid in enumerate(sorted(pids)):
        name = label if index == 0 else f"{label}-worker"
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{name} (pid {pid})"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs.trace",
                          "schema": SPANS_SCHEMA}}


def export_chrome_trace(records: Iterable[Dict[str, Any]], path: str,
                        label: str = "repro") -> int:
    """Write Chrome trace JSON for the records; returns the event count."""
    payload = to_chrome_trace(records, label=label)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])
