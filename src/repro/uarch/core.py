"""Trace-driven core model.

:class:`TraceDrivenCore` replays a uop trace through the structures the
paper protects — register files, scheduler, MOB, adder-equipped issue
ports, DL0 and DTLB — computing per-uop event times (allocate, issue,
complete) with a simplified out-of-order timing model:

- up to ``alloc_width`` uops allocate per cycle, stalling on scheduler /
  register-file space;
- a uop issues once its sources are complete and an issue slot (and, for
  adder uops, an adder) is free;
- loads/stores translate through the DTLB and access the DL0 at issue,
  adding miss penalties to their latency;
- the scheduler slot frees one cycle after issue; the previous physical
  mapping of the destination architectural register frees when the uop
  completes (approximating retirement).

The model is *structural*, not validated-cycle-accurate: occupancies,
value residency and event ordering are faithful, absolute CPI is
qualitative (see DESIGN.md).

NBTI mechanisms observe the run through :class:`CoreHooks` callbacks, so
the substrate stays mechanism-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics import MetricSet
from repro.obs.trace import TRACER as _TRACER
from repro.uarch.backends import get_backend
from repro.uarch.cache import CacheConfig, CacheStats
from repro.uarch.mob import MemoryOrderBuffer
from repro.uarch.ports import AdderPolicy, AdderPool
from repro.uarch.regfile import RegisterFile, RegisterFileStats
from repro.uarch.scheduler import Scheduler, SchedulerStats
from repro.uarch.tlb import TLB, TLBConfig
from repro.uarch.uop import FP_WIDTH, INT_WIDTH, Uop


class CoreHooks:
    """Observer interface for NBTI mechanisms.

    Subclass and override the callbacks of interest; every callback is a
    no-op by default.  ``rf`` is the :class:`RegisterFile` involved,
    ``sched`` the :class:`Scheduler`.

    The base class is slotted (the callbacks run per uop event);
    subclasses declare their own ``__slots__`` — or none, at the cost
    of an instance dict.
    """

    __slots__ = ()

    def on_regfile_write(self, rf: RegisterFile, entry: int, value: int,
                         now: float) -> None:
        """A workload value was written to a physical register."""

    def on_regfile_release(self, rf: RegisterFile, entry: int,
                           now: float) -> None:
        """A physical register was returned to the free list."""

    def on_scheduler_fill(self, sched: Scheduler, slot: int, uop: Uop,
                          now: float) -> None:
        """A uop was dispatched into a scheduler slot."""

    def on_scheduler_release(self, sched: Scheduler, slot: int,
                             now: float) -> None:
        """A scheduler slot was freed at issue."""


class CompositeHooks(CoreHooks):
    """Fans every callback out to a list of hooks."""

    __slots__ = ("hooks",)

    def __init__(self, hooks) -> None:
        self.hooks = list(hooks)

    def on_regfile_write(self, rf, entry, value, now):
        for hook in self.hooks:
            hook.on_regfile_write(rf, entry, value, now)

    def on_regfile_release(self, rf, entry, now):
        for hook in self.hooks:
            hook.on_regfile_release(rf, entry, now)

    def on_scheduler_fill(self, sched, slot, uop, now):
        for hook in self.hooks:
            hook.on_scheduler_fill(sched, slot, uop, now)

    def on_scheduler_release(self, sched, slot, now):
        for hook in self.hooks:
            hook.on_scheduler_release(sched, slot, now)


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Configuration of the trace-driven core (Core(tm)-like defaults)."""

    alloc_width: int = 4
    issue_width: int = 6
    retire_width: int = 4
    rob_entries: int = 96
    redirect_penalty: int = 6
    int_regs: int = 128
    fp_regs: int = 32
    scheduler_entries: int = 32
    regfile_write_ports: int = 4
    n_adders: int = 4
    adder_policy: AdderPolicy = AdderPolicy.UNIFORM
    mob_entries: int = 64
    dl0: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="DL0-32K-8w", size_bytes=32 * 1024, ways=8
        )
    )
    dtlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(name="DTLB-128", entries=128)
    )
    dl0_miss_penalty: int = 6
    dtlb_miss_penalty: int = 20
    seed: int = 0
    #: Kernel backend building the DL0/DTLB engines ("reference" or
    #: "vectorized"); see :mod:`repro.uarch.backends`.
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.alloc_width <= 0 or self.issue_width <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.scheduler_entries <= 0:
            raise ValueError("scheduler_entries must be positive")


@dataclass(slots=True)
class CoreResult:
    """Everything a run produces."""

    uops: int
    cycles: float
    int_rf: RegisterFileStats
    fp_rf: RegisterFileStats
    scheduler: SchedulerStats
    dl0: CacheStats
    dtlb: CacheStats
    adder_utilization: List[float]
    adder_samples: Tuple[Tuple[int, int, int], ...]

    @property
    def cpi(self) -> float:
        return self.cycles / self.uops if self.uops else 0.0

    @property
    def ipc(self) -> float:
        return self.uops / self.cycles if self.cycles else 0.0


class TraceDrivenCore:
    """Replays traces through the modelled structures.

    Examples
    --------
    >>> from repro.workloads import TraceGenerator
    >>> trace = TraceGenerator(seed=7).generate("specint2000", length=500)
    >>> result = TraceDrivenCore().run(trace)
    >>> result.cycles > 0
    True
    """

    __slots__ = (
        "config",
        "hooks",
        "int_rf",
        "fp_rf",
        "scheduler",
        "mob",
        "adders",
        "dl0",
        "dtlb",
        "_ready",
        "_mapping",
        "_issue_use",
    )

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        hooks: Optional[CoreHooks] = None,
        dl0=None,
        dtlb=None,
    ) -> None:
        """``dl0``/``dtlb`` may be overridden with protected wrappers
        (anything exposing ``access``/``translate`` and ``stats``)."""
        self.config = config or CoreConfig()
        self.hooks = hooks or CoreHooks()
        cfg = self.config
        self.int_rf = RegisterFile(
            entries=cfg.int_regs,
            width=INT_WIDTH,
            write_ports=cfg.regfile_write_ports,
            name="int_rf",
        )
        self.fp_rf = RegisterFile(
            entries=cfg.fp_regs,
            width=FP_WIDTH,
            write_ports=cfg.regfile_write_ports,
            name="fp_rf",
        )
        self.scheduler = Scheduler(entries=cfg.scheduler_entries)
        self.mob = MemoryOrderBuffer(entries=cfg.mob_entries)
        self.adders = AdderPool(
            n_adders=cfg.n_adders, policy=cfg.adder_policy, seed=cfg.seed
        )
        engine = get_backend(cfg.backend)
        self.dl0 = dl0 if dl0 is not None else engine.make_cache(cfg.dl0)
        self.dtlb = dtlb if dtlb is not None else engine.make_tlb(cfg.dtlb)
        #: architectural register namespace -> ready time of last writer
        self._ready: Dict[Tuple[bool, int], float] = {}
        #: architectural register namespace -> current physical mapping
        self._mapping: Dict[Tuple[bool, int], int] = {}
        #: sliding window of per-cycle issued-uop counts for issue-width
        #: contention; cycles older than the allocation front are pruned
        #: by :meth:`run`, so its size stays bounded by the run-ahead
        #: distance instead of growing with trace length.
        self._issue_use: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore all per-run state so the core can replay a new trace.

        Called automatically at the top of :meth:`run`: replaying the
        same trace twice through one core yields identical results.
        Externally-supplied ``dl0``/``dtlb`` substitutes are reset when
        they expose a ``reset()`` method and left untouched otherwise.
        """
        self.int_rf.reset()
        self.fp_rf.reset()
        self.scheduler.reset()
        self.mob.reset()
        self.adders.reset()
        for unit in (self.dl0, self.dtlb):
            unit_reset = getattr(unit, "reset", None)
            if unit_reset is not None:
                unit_reset()
        self._ready.clear()
        self._mapping.clear()
        self._issue_use.clear()

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        """Live metric tree over every structure of the core.

        Paths are dotted (``dl0.miss_rate``, ``int_rf.allocations``).
        The tree reads through the component objects, so it stays valid
        across :meth:`reset` / repeated :meth:`run` calls, and —
        because ``run`` fully processes uop k (``dl0.access`` counters
        included) before pulling uop k+1 from the trace iterable — an
        :class:`~repro.metrics.telemetry.IntervalTelemetry` ``watch``
        wrapper snapshots exact N-uop interval state on streaming runs.
        """
        ms = MetricSet()
        ms.child("int_rf", self.int_rf.metrics())
        ms.child("fp_rf", self.fp_rf.metrics())
        ms.child("scheduler", self.scheduler.metrics())
        ms.child("mob", self.mob.metrics())
        for name, unit in (("dl0", self.dl0), ("dtlb", self.dtlb)):
            unit_metrics = getattr(unit, "metrics", None)
            if unit_metrics is not None:
                ms.child(name, unit_metrics())
        return ms

    # ------------------------------------------------------------------
    def run(self, trace: Iterable[Uop]) -> CoreResult:
        """Replay one trace and return the collected statistics.

        ``trace`` may be a materialised :class:`~repro.uarch.trace.Trace`
        or any iterable of uops — e.g. the lazy
        :meth:`~repro.workloads.generator.TraceGenerator.stream` or
        :func:`~repro.uarch.traceio.stream_trace` generators — and is
        consumed exactly once, so the whole replay is bounded-memory.
        """
        _t = _TRACER.begin()
        self.reset()
        # Hoisted hot-loop state: the per-uop loop below runs for every
        # trace uop, so config fields, structures and bound methods are
        # bound to locals once.
        config = self.config
        alloc_width = config.alloc_width
        retire_width = config.retire_width
        redirect_penalty = config.redirect_penalty
        dtlb_miss_penalty = config.dtlb_miss_penalty
        dl0_miss_penalty = config.dl0_miss_penalty
        rob = config.rob_entries
        scheduler = self.scheduler
        hooks = self.hooks
        int_rf, fp_rf = self.int_rf, self.fp_rf
        mob_allocate = self.mob.allocate
        dtlb_translate = self.dtlb.translate
        dl0_access = self.dl0.access
        ready_times = self._ready
        mapping = self._mapping
        issue_use = self._issue_use
        stall_for_space = self._stall_for_space
        find_issue_cycle = self._find_issue_cycle

        alloc_cycle = 0.0
        allocs_this_cycle = 0
        last_complete = 0.0
        # In-order retirement pointer: a uop retires (and frees the
        # previous mapping of its destination) no earlier than every
        # older uop's completion.  Since the pointer never moves
        # backwards, retire-width spreading needs only the count within
        # the current retire cycle, not a per-cycle map.
        retire_t = 0.0
        retire_cycle = -1
        retired_in_cycle = 0
        #: ring buffer of the last ``rob`` retirement times, for the
        #: ROB-occupancy stall (slot ``index % rob`` holds the time of
        #: uop ``index - rob`` when uop ``index`` allocates).
        retire_ring = [0.0] * rob

        index = -1
        for index, uop in enumerate(trace):
            # --- allocate ------------------------------------------------
            if allocs_this_cycle >= alloc_width:
                alloc_cycle += 1.0
                allocs_this_cycle = 0
            alloc_t = stall_for_space(uop, alloc_cycle)
            if index >= rob:
                # The ROB entry of the (index - rob)-th uop must retire
                # before this uop can allocate.
                rob_free_t = retire_ring[index % rob]
                if rob_free_t > alloc_t:
                    alloc_t = rob_free_t
            if alloc_t > alloc_cycle:
                alloc_cycle = alloc_t
                allocs_this_cycle = 0
            allocs_this_cycle += 1
            if len(issue_use) > 1024:
                # Issue lookups never fall behind the allocation front:
                # drop the dead cycles so the window stays bounded.
                floor = int(alloc_cycle)
                for cycle in [c for c in issue_use if c < floor]:
                    del issue_use[cycle]

            slot = scheduler.allocate(alloc_t)
            assert slot is not None  # _stall_for_space guaranteed room
            mob_id = (
                mob_allocate() if uop.uop_class.is_memory else None
            )
            is_fp = uop.is_fp
            rf = fp_rf if is_fp else int_rf
            dst_entry: Optional[int] = None
            if uop.dst is not None:
                dst_entry = rf.allocate(alloc_t)
                assert dst_entry is not None
            src1 = uop.src1
            src2 = uop.src2
            src1_tag = mapping.get((is_fp, src1), 0) if src1 is not None else 0
            src2_tag = mapping.get((is_fp, src2), 0) if src2 is not None else 0
            scheduler.fill(slot, uop, mob_id, alloc_t,
                           dst_tag=dst_entry or 0,
                           src1_tag=src1_tag, src2_tag=src2_tag)
            hooks.on_scheduler_fill(scheduler, slot, uop, alloc_t)

            # --- source readiness ---------------------------------------
            ready_t = alloc_t + 1.0
            arrivals: List[Tuple[float, str]] = []
            for source, ready_field in ((src1, "ready1"),
                                        (src2, "ready2")):
                if source is None:
                    continue
                source_ready = ready_times.get((is_fp, source), 0.0)
                arrivals.append((max(alloc_t, source_ready), ready_field))
                if source_ready > ready_t:
                    ready_t = source_ready
            # Apply in time order: a slot's residency intervals must close
            # monotonically even when src2 arrives before src1.
            for arrival, ready_field in sorted(arrivals):
                scheduler.set_field(slot, ready_field, 1, arrival)

            # --- issue ---------------------------------------------------
            issue_t = find_issue_cycle(uop, ready_t)
            scheduler.release(slot, issue_t + 1.0)
            hooks.on_scheduler_release(scheduler, slot, issue_t + 1.0)

            # --- execute -------------------------------------------------
            latency = float(uop.latency)
            if uop.uop_class.is_memory:
                assert uop.address is not None
                if not dtlb_translate(uop.address):
                    latency += dtlb_miss_penalty
                if not dl0_access(uop.address):
                    latency += dl0_miss_penalty
            complete_t = issue_t + latency
            if complete_t > last_complete:
                last_complete = complete_t
            # Retirement is in order and capacity-limited: without the
            # retire-width spread, long-latency stragglers make whole
            # backlogs retire in one cycle and transiently exhaust the
            # register-file write ports.
            if complete_t > retire_t:
                retire_t = complete_t
            cycle = int(retire_t)
            if cycle > retire_cycle:
                retire_cycle = cycle
                retired_in_cycle = 0
            if retired_in_cycle >= retire_width:
                retire_cycle += 1
                retired_in_cycle = 0
                retire_t = float(retire_cycle)
            retired_in_cycle += 1
            retire_ring[index % rob] = retire_t

            # --- writeback / retire -------------------------------------
            if uop.dst is not None and dst_entry is not None:
                rf.write(dst_entry, uop.result_value, complete_t)
                hooks.on_regfile_write(rf, dst_entry,
                                       uop.result_value, complete_t)
                namespace = (is_fp, uop.dst)
                previous = mapping.get(namespace)
                if previous is not None:
                    rf.release(previous, retire_t)
                    hooks.on_regfile_release(rf, previous, retire_t)
                mapping[namespace] = dst_entry
                ready_times[namespace] = complete_t

            # --- mispredict redirect ------------------------------------
            if uop.mispredicted:
                # The frontend refills from the resolved target: younger
                # uops cannot allocate until the redirect completes.
                drain_until = complete_t + redirect_penalty
                if drain_until > alloc_cycle:
                    alloc_cycle = drain_until
                    allocs_this_cycle = 0

        cycles = max(last_complete, alloc_cycle, 1.0)
        if _t is not None:
            _TRACER.end(_t, "core.run", uops=index + 1, cycles=cycles)
        return CoreResult(
            uops=index + 1,
            cycles=cycles,
            int_rf=self.int_rf.finalize(cycles),
            fp_rf=self.fp_rf.finalize(cycles),
            scheduler=self.scheduler.finalize(cycles),
            dl0=self.dl0.stats,
            dtlb=self.dtlb.stats,
            adder_utilization=self.adders.utilization(cycles),
            adder_samples=tuple(self.adders.all_sampled_vectors()),
        )

    # ------------------------------------------------------------------
    def _stall_for_space(self, uop: Uop, alloc_cycle: float) -> float:
        """Earliest cycle >= ``alloc_cycle`` with scheduler and RF room."""
        t = alloc_cycle
        sched_free = self.scheduler.next_free_time()
        if sched_free is None:
            raise RuntimeError("scheduler free list exhausted permanently")
        t = max(t, sched_free)
        if uop.dst is not None:
            rf = self.fp_rf if uop.is_fp else self.int_rf
            rf_free = rf.next_free_time()
            if rf_free is None:
                raise RuntimeError(
                    f"{rf.name} exhausted: trace holds too many live values"
                )
            t = max(t, rf_free)
        return t

    def _find_issue_cycle(self, uop: Uop, ready_t: float) -> float:
        """First cycle >= ``ready_t`` with an issue slot (and adder)."""
        t = float(int(ready_t)) if ready_t == int(ready_t) else float(
            int(ready_t) + 1
        )
        t = max(t, ready_t)
        while True:
            cycle = int(t)
            if self._issue_use.get(cycle, 0) < self.config.issue_width:
                if uop.uses_adder:
                    if self.adders.issue(uop, t) is None:
                        t += 1.0
                        continue
                self._issue_use[cycle] = self._issue_use.get(cycle, 0) + 1
                return t
            t += 1.0
