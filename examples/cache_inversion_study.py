#!/usr/bin/env python
"""Cache inversion study (Section 4.6 / Table 3).

Compares the three invalidate-and-invert schemes on a DL0 configuration
across the ten Table 1 suites, showing per-suite losses and the dynamic
scheme's activation decisions.

Run:  python examples/cache_inversion_study.py
"""

from repro.analysis import format_table
from repro.core.cache_like import (
    LineDynamicScheme,
    LineFixedScheme,
    ProtectedCache,
    SetFixedScheme,
    performance_loss,
)
from repro.uarch.cache import Cache, CacheConfig
from repro.workloads import generate_address_stream, suite_names

CONFIG = CacheConfig(name="DL0-16K-8w", size_bytes=16 * 1024, ways=8)
LENGTH = 15_000


def scheme_factories():
    return {
        "SetFixed50%": lambda: SetFixedScheme(0.5),
        "LineFixed50%": lambda: LineFixedScheme(0.5),
        "LineDynamic60%": lambda: LineDynamicScheme(
            ratio=0.6, threshold=0.03,
            warmup=1500, test_window=1500, period=8000,
        ),
    }


def main() -> None:
    rows = []
    decisions = {}
    for suite in suite_names():
        stream = generate_address_stream(suite, length=LENGTH, seed=5)
        baseline = Cache(CONFIG)
        for address in stream:
            baseline.access(address)
        row = [suite, f"{baseline.stats.miss_rate:.2%}"]
        for name, factory in scheme_factories().items():
            scheme = factory()
            protected = ProtectedCache(Cache(CONFIG), scheme)
            for address in stream:
                protected.access(address)
            loss = performance_loss(
                baseline.stats.miss_rate, protected.stats.miss_rate,
                accesses_per_uop=0.36, effective_penalty=3.0,
            )
            row.append(f"{loss:.2%}")
            if isinstance(scheme, LineDynamicScheme):
                decisions[suite] = scheme.activation_history
        rows.append(row)

    print(format_table(
        ["suite", "base miss", "SetFixed50%", "LineFixed50%",
         "LineDynamic60%"],
        rows,
        title=f"Per-suite performance loss on {CONFIG.name}",
    ))

    print("\nLineDynamic60% activation decisions per test period")
    print("(False = the self-test measured too many induced misses and")
    print(" disabled inversion for that period — the paper's cache-filler")
    print(" escape hatch):")
    for suite, history in decisions.items():
        shown = "".join("A" if d else "-" for d in history)
        print(f"  {suite:14s} {shown}")


if __name__ == "__main__":
    main()
