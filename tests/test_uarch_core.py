"""Tests for the trace-driven core model."""

import pytest

from repro.uarch import CoreConfig, TraceDrivenCore
from repro.uarch.core import CompositeHooks, CoreHooks
from repro.uarch.trace import Trace
from repro.uarch.uop import Uop, UopClass
from repro.workloads import TraceGenerator


def tiny_trace(uops):
    trace = Trace(name="t", suite="test")
    for uop in uops:
        trace.append(uop)
    return trace


class TestBasicExecution:
    def test_empty_result_fields(self, small_trace):
        result = TraceDrivenCore().run(small_trace)
        assert result.uops == len(small_trace)
        assert result.cycles > 0
        assert 0.0 < result.cpi < 10.0
        assert result.ipc == pytest.approx(1.0 / result.cpi)

    def test_deterministic(self, small_trace):
        a = TraceDrivenCore().run(small_trace)
        b = TraceDrivenCore().run(small_trace)
        assert a.cycles == b.cycles
        assert a.dl0.misses == b.dl0.misses

    def test_core_is_reusable_across_runs(self, small_trace):
        # Regression: the second run() on one instance used to raise
        # "time went backwards" (stale _ready/_mapping/bias timelines).
        core = TraceDrivenCore()
        first = core.run(small_trace)
        second = core.run(small_trace)
        assert first.cycles == second.cycles
        assert first.dl0 == second.dl0
        assert first.dtlb == second.dtlb
        assert first.scheduler.allocations == second.scheduler.allocations
        assert first.scheduler.occupancy == second.scheduler.occupancy
        assert first.int_rf.allocations == second.int_rf.allocations
        assert first.int_rf.worst_bias == second.int_rf.worst_bias
        assert (list(first.int_rf.bias_to_zero)
                == list(second.int_rf.bias_to_zero))
        assert first.fp_rf.worst_bias == second.fp_rf.worst_bias
        assert first.adder_utilization == second.adder_utilization
        assert first.adder_samples == second.adder_samples

    def test_reused_core_matches_fresh_core(self, small_trace, fp_trace):
        # Interleave two different traces: each run must match what a
        # fresh core produces for that trace.
        core = TraceDrivenCore()
        mixed = [core.run(small_trace), core.run(fp_trace),
                 core.run(small_trace)]
        fresh_small = TraceDrivenCore().run(small_trace)
        fresh_fp = TraceDrivenCore().run(fp_trace)
        assert mixed[0].cycles == fresh_small.cycles
        assert mixed[1].cycles == fresh_fp.cycles
        assert mixed[2].cycles == fresh_small.cycles
        assert mixed[1].dl0 == fresh_fp.dl0

    def test_dependency_serialisation(self):
        # A chain of dependent ALU ops cannot run faster than one per
        # cycle; independent ones can.
        chain = tiny_trace([
            Uop(seq=i, uop_class=UopClass.ALU, src1=0, dst=0)
            for i in range(64)
        ])
        parallel = tiny_trace([
            Uop(seq=i, uop_class=UopClass.ALU, src1=i % 8, dst=i % 8)
            for i in range(64)
        ])
        chain_res = TraceDrivenCore().run(chain)
        parallel_res = TraceDrivenCore().run(parallel)
        assert chain_res.cycles >= 63
        assert parallel_res.cycles < chain_res.cycles

    def test_cache_misses_slow_execution(self):
        hits = tiny_trace([
            Uop(seq=i, uop_class=UopClass.LOAD, src1=0, dst=1,
                address=0x1000)
            for i in range(128)
        ])
        misses = tiny_trace([
            Uop(seq=i, uop_class=UopClass.LOAD, src1=0, dst=1,
                address=0x1000 + i * 4096 * 17)
            for i in range(128)
        ])
        fast = TraceDrivenCore().run(hits)
        slow = TraceDrivenCore().run(misses)
        assert slow.cycles > fast.cycles
        assert slow.dl0.miss_rate > fast.dl0.miss_rate

    def test_mispredict_redirect_stalls_alloc(self):
        base_uops = [
            Uop(seq=i, uop_class=UopClass.ALU, src1=i % 4, dst=i % 4)
            for i in range(100)
        ]
        clean = tiny_trace(list(base_uops))
        flushed_uops = list(base_uops)
        flushed_uops[50] = Uop(seq=50, uop_class=UopClass.BRANCH, src1=0,
                               taken=True, mispredicted=True)
        flushed = tiny_trace(flushed_uops)
        assert (TraceDrivenCore().run(flushed).cycles
                > TraceDrivenCore().run(clean).cycles)

    def test_scheduler_capacity_limits_runahead(self):
        # Long-latency producers pile up: a tiny scheduler stalls alloc.
        uops = [
            Uop(seq=i, uop_class=UopClass.MUL, src1=0, dst=0, latency=8)
            for i in range(64)
        ]
        small = TraceDrivenCore(CoreConfig(scheduler_entries=4))
        big = TraceDrivenCore(CoreConfig(scheduler_entries=32))
        assert small.run(tiny_trace(uops)).cycles >= \
            big.run(tiny_trace(uops)).cycles


class TestStatistics:
    def test_occupancies_in_range(self, small_trace):
        result = TraceDrivenCore().run(small_trace)
        assert 0.0 < result.scheduler.occupancy < 1.0
        assert 0.0 < result.int_rf.free_fraction < 1.0

    def test_adder_utilisation_tracked(self, small_trace):
        result = TraceDrivenCore().run(small_trace)
        assert len(result.adder_utilization) == 4
        assert all(0.0 <= u <= 1.0 for u in result.adder_utilization)
        assert result.adder_samples  # reservoir collected vectors

    def test_carry_in_bias_matches_motivation(self, small_trace):
        # Section 1.1: the adder carry-in is "0" more than 90% of the time.
        result = TraceDrivenCore().run(small_trace)
        cins = [v[2] for v in result.adder_samples]
        assert 1.0 - sum(cins) / len(cins) > 0.9

    def test_int_bias_band_matches_motivation(self):
        # Section 1.1: INT RF zero bias between 65% and 90% for all bits
        # (wide tolerance: short traces carry warmup noise).
        trace = TraceGenerator(seed=2).generate("specint2000", length=4000)
        result = TraceDrivenCore().run(trace)
        bias = result.int_rf.bias_to_zero
        assert min(bias) > 0.55
        assert max(bias) < 0.97

    def test_mob_ids_evenly_used(self, small_trace):
        core = TraceDrivenCore()
        core.run(small_trace)
        assert core.mob.usage_imbalance() < 1.5


class TestHooks:
    def test_hooks_fire(self, small_trace):
        events = {"rf_write": 0, "rf_release": 0, "fill": 0, "release": 0}

        class Counter(CoreHooks):
            def on_regfile_write(self, rf, entry, value, now):
                events["rf_write"] += 1

            def on_regfile_release(self, rf, entry, now):
                events["rf_release"] += 1

            def on_scheduler_fill(self, sched, slot, uop, now):
                events["fill"] += 1

            def on_scheduler_release(self, sched, slot, now):
                events["release"] += 1

        TraceDrivenCore(hooks=Counter()).run(small_trace)
        assert events["fill"] == len(small_trace)
        assert events["release"] == len(small_trace)
        assert events["rf_write"] > 0
        assert events["rf_release"] > 0

    def test_composite_hooks_fan_out(self, small_trace):
        counts = [0, 0]

        class Counter(CoreHooks):
            def __init__(self, index):
                self.index = index

            def on_scheduler_fill(self, sched, slot, uop, now):
                counts[self.index] += 1

        hooks = CompositeHooks([Counter(0), Counter(1)])
        TraceDrivenCore(hooks=hooks).run(small_trace)
        assert counts[0] == counts[1] == len(small_trace)

    def test_cache_override(self, small_trace):
        class CountingCache:
            def __init__(self):
                self.calls = 0

            def access(self, address):
                self.calls += 1
                return True

            def translate(self, address):
                self.calls += 1
                return True

            stats = None

        dl0 = CountingCache()
        dtlb = CountingCache()
        TraceDrivenCore(dl0=dl0, dtlb=dtlb).run(small_trace)
        assert dl0.calls > 0
        assert dtlb.calls > 0


class TestConfigValidation:
    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            CoreConfig(alloc_width=0)
        with pytest.raises(ValueError):
            CoreConfig(scheduler_entries=0)
