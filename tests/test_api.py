"""The repro.api facade: spec-built objects vs legacy construction.

The acceptance bar for the declarative layer is *bit-identical* results:
a spec-built core, Penelope processor, or study sweep must produce
exactly the numbers the legacy hand-assembled constructors produce —
including RNG-sensitive paths (inversion-victim choice, ProtectedCache
seeds).  Every study in the experiments registry is exercised from a
spec serialised through real JSON.
"""

import pytest

np = pytest.importorskip("numpy")

from repro import api
from repro.config import (
    CacheGeometrySpec,
    MechanismSpec,
    ProcessorSpec,
    ProtectionSpec,
    SpecError,
    StudySpec,
    TLBGeometrySpec,
    WorkloadSpec,
    with_path,
)


def assert_core_results_equal(lhs, rhs):
    assert lhs.uops == rhs.uops
    assert lhs.cycles == rhs.cycles
    assert np.array_equal(lhs.int_rf.bias_to_zero, rhs.int_rf.bias_to_zero)
    assert np.array_equal(lhs.fp_rf.bias_to_zero, rhs.fp_rf.bias_to_zero)
    assert lhs.scheduler.occupancy == rhs.scheduler.occupancy
    assert (lhs.dl0.hits, lhs.dl0.misses) == (rhs.dl0.hits, rhs.dl0.misses)
    assert (lhs.dtlb.hits, lhs.dtlb.misses) == (rhs.dtlb.hits,
                                                rhs.dtlb.misses)
    assert lhs.adder_utilization == rhs.adder_utilization
    assert lhs.adder_samples == rhs.adder_samples


class TestBuildCore:
    def test_default_spec_bit_identical_to_legacy(self, small_trace):
        from repro.uarch import TraceDrivenCore

        legacy = TraceDrivenCore().run(small_trace)
        built = api.build_core().run(small_trace)
        assert_core_results_equal(legacy, built)

    def test_custom_geometry_bit_identical_to_legacy(self, small_trace):
        from repro.uarch import TraceDrivenCore
        from repro.uarch.cache import CacheConfig
        from repro.uarch.core import CoreConfig
        from repro.uarch.ports import AdderPolicy
        from repro.uarch.tlb import TLBConfig

        legacy_config = CoreConfig(
            scheduler_entries=24,
            n_adders=2,
            adder_policy=AdderPolicy.PRIORITY,
            dl0=CacheConfig(name="DL0-8K-4w", size_bytes=8 * 1024,
                            ways=4),
            dtlb=TLBConfig(name="DTLB-64", entries=64),
        )
        spec = ProcessorSpec(
            scheduler_entries=24,
            n_adders=2,
            adder_policy="priority",
            dl0=CacheGeometrySpec(size_kb=8, ways=4),
            dtlb=TLBGeometrySpec(entries=64),
        )
        legacy = TraceDrivenCore(legacy_config).run(small_trace)
        built = api.build_core(spec).run(small_trace)
        assert_core_results_equal(legacy, built)


class TestBuildHooks:
    RF_ONLY = ProtectionSpec(
        adder=MechanismSpec("none"),
        scheduler=MechanismSpec("none"),
        dl0=MechanismSpec("none"),
        dtlb=MechanismSpec("none"),
    )

    def test_isv_protectors_bit_identical_to_legacy(self, small_trace):
        from repro.core.memory_like import ISVRegisterFileProtector
        from repro.uarch import TraceDrivenCore
        from repro.uarch.core import CompositeHooks
        from repro.uarch.uop import FP_WIDTH, INT_WIDTH

        legacy_hooks = CompositeHooks([
            ISVRegisterFileProtector("int_rf", INT_WIDTH, 512.0),
            ISVRegisterFileProtector("fp_rf", FP_WIDTH, 512.0),
        ])
        legacy = TraceDrivenCore(hooks=legacy_hooks).run(small_trace)
        built = api.build_core(
            hooks=api.build_hooks(self.RF_ONLY)).run(small_trace)
        assert_core_results_equal(legacy, built)

    def test_built_hooks_expose_protectors(self):
        hooks = api.build_hooks(self.RF_ONLY)
        assert [h.rf_name for h in hooks.hooks] == ["int_rf", "fp_rf"]

    def test_derived_policy_requires_profiled_policy(self):
        with pytest.raises(SpecError, match="derived_policy"):
            api.build_hooks(ProtectionSpec())

    def test_paper_policy_needs_no_profiling(self):
        hooks = api.build_hooks(
            ProtectionSpec(scheduler=MechanismSpec("paper_policy")))
        assert len(hooks.hooks) == 3


class TestBuildPenelope:
    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workloads import generate_workload

        return generate_workload(traces_per_suite=1, length=1200,
                                 suites=["specint2000", "office"],
                                 seed=9)

    def test_default_spec_bit_identical_to_legacy(self, workload):
        from repro.core import PenelopeProcessor

        legacy = PenelopeProcessor(seed=9).evaluate(workload)
        built = api.build_penelope(seed=9).evaluate(workload)
        assert legacy.efficiency == built.efficiency
        assert legacy.baseline_efficiency == built.baseline_efficiency
        assert legacy.combined_cpi == built.combined_cpi
        assert legacy.adder_guardband == built.adder_guardband
        assert legacy.int_rf_bias == built.int_rf_bias
        assert legacy.fp_rf_bias == built.fp_rf_bias
        assert legacy.scheduler_bias == built.scheduler_bias
        assert ([(b.name, b.guardband) for b in legacy.block_costs]
                == [(b.name, b.guardband) for b in built.block_costs])

    def test_custom_ratio_bit_identical_to_legacy(self, workload):
        from repro.core import PenelopeProcessor

        legacy = PenelopeProcessor(invert_ratio=0.4, sample_period=256.0,
                                   seed=9).evaluate(workload)
        protection = ProtectionSpec(
            dl0=MechanismSpec("line_fixed", {"ratio": 0.4}),
            dtlb=MechanismSpec("line_fixed", {"ratio": 0.4}),
            sample_period=256.0,
        )
        built = api.build_penelope(protection=protection,
                                   seed=9).evaluate(workload)
        assert legacy.efficiency == built.efficiency
        assert legacy.combined_cpi == built.combined_cpi
        assert legacy.int_rf_bias == built.int_rf_bias

    def test_from_study_spec_slots(self, workload):
        spec = StudySpec(
            study="penelope",
            workload=WorkloadSpec(suites=("specint2000",), seed=9),
        )
        built = api.build_penelope(spec)
        assert built.seed == 9
        assert built.sample_period == 512.0

    def test_unprotected_spec_equals_baseline_run(self, workload):
        """All-'none' protection: the protected pass is a plain core."""
        protection = ProtectionSpec(
            adder=MechanismSpec("none"),
            int_rf=MechanismSpec("none"),
            fp_rf=MechanismSpec("none"),
            scheduler=MechanismSpec("none"),
            dl0=MechanismSpec("none"),
            dtlb=MechanismSpec("none"),
        )
        processor = api.build_penelope(protection=protection, seed=9)
        trace = workload[0]
        assert_core_results_equal(processor.run_baseline(trace),
                                  processor.run_protected(trace))


def _run_legacy(study, base, grid):
    from repro.experiments import SweepRunner, SweepSpec

    outcome = SweepRunner(store=None).run(
        SweepSpec(study, base=base, grid=grid))
    return {r.point.key: r.metrics for r in outcome.results}


def _run_from_json(spec):
    """Serialise -> JSON text -> deserialise -> run (the config-file path)."""
    restored = StudySpec.from_json(spec.to_json())
    assert restored == spec
    outcome = api.run_study(restored)
    return {r.point.key: r.metrics for r in outcome.results}


class TestStudyDifferential:
    """Every registered study, spec-built vs legacy flat parameters."""

    LENGTH = 500

    def _spec(self, study, suites=("office",), seed=1, **kwargs):
        spec = api.default_study_spec(study)
        spec = with_path(spec, "workload.suites", suites)
        spec = with_path(spec, "workload.length", self.LENGTH)
        spec = with_path(spec, "workload.seed", seed)
        return spec.replace(**kwargs)

    def test_caches(self):
        spec = self._spec(
            "caches",
            sweep={"protection.dl0.params.ratio": [0.4, 0.6]},
        )
        legacy = _run_legacy(
            "caches",
            base={"length": self.LENGTH, "seed": 1},
            grid={"suite": ["office"], "ratio": [0.4, 0.6]},
        )
        assert _run_from_json(spec) == legacy

    def test_caches_scheme_axis(self):
        spec = self._spec(
            "caches",
            sweep={"protection.dl0.name": ["set_fixed", "line_fixed"]},
        )
        legacy = _run_legacy(
            "caches",
            base={"length": self.LENGTH, "seed": 1},
            grid={"suite": ["office"],
                  "scheme": ["set_fixed", "line_fixed"]},
        )
        assert _run_from_json(spec) == legacy

    def test_invert_ratio_with_bare_override_axis(self):
        spec = self._spec(
            "invert_ratio", seed=2,
            sweep={"data_bias": [0.8, 0.9]},  # no spec home: bare name
        )
        legacy = _run_legacy(
            "invert_ratio",
            base={"length": self.LENGTH, "seed": 2},
            grid={"suite": ["office"], "data_bias": [0.8, 0.9]},
        )
        assert _run_from_json(spec) == legacy

    def test_victim_policy_geometry_axis(self):
        spec = self._spec(
            "victim_policy", seed=3,
            sweep={"processor.dl0.ways": [4, 8]},
        )
        legacy = _run_legacy(
            "victim_policy",
            base={"length": self.LENGTH, "seed": 3},
            grid={"suite": ["office"], "ways": [4, 8]},
        )
        assert _run_from_json(spec) == legacy

    def test_regfile(self):
        spec = self._spec(
            "regfile", seed=4,
            sweep={"protection.sample_period": [256.0, 512.0]},
        )
        legacy = _run_legacy(
            "regfile",
            base={"length": self.LENGTH, "seed": 4},
            grid={"suite": ["office"],
                  "sample_period": [256.0, 512.0]},
        )
        assert _run_from_json(spec) == legacy

    def test_vmin_power_with_override(self):
        spec = self._spec(
            "vmin_power", suites=("office", "kernels"), seed=5,
            overrides={"target": 0.75},
        )
        legacy = _run_legacy(
            "vmin_power",
            base={"length": self.LENGTH, "seed": 5, "target": 0.75},
            grid={"suite": ["office", "kernels"]},
        )
        assert _run_from_json(spec) == legacy

    def test_penelope(self):
        spec = self._spec("penelope", seed=6)
        legacy = _run_legacy(
            "penelope",
            base={"length": self.LENGTH, "seed": 6},
            grid={"suite": ["office"]},
        )
        assert _run_from_json(spec) == legacy

    def test_multiprog(self):
        # The suite tuple binds as ONE point parameter (the programs
        # sharing the cache), not as a per-suite grid axis.
        spec = self._spec(
            "multiprog", suites=("office", "kernels"), seed=7,
            sweep={"protection.dl0.params.ratio": [0.4, 0.6]},
        )
        legacy = _run_legacy(
            "multiprog",
            base={"length": self.LENGTH, "seed": 7,
                  "suites": ["office", "kernels"]},
            grid={"ratio": [0.4, 0.6]},
        )
        assert _run_from_json(spec) == legacy

    def test_multiprog_policy_axis(self):
        spec = self._spec(
            "multiprog", suites=("office", "kernels"), seed=8,
            sweep={"workload.interleave": ["round_robin",
                                           "random_slice"]},
        )
        legacy = _run_legacy(
            "multiprog",
            base={"length": self.LENGTH, "seed": 8,
                  "suites": ["office", "kernels"]},
            grid={"policy": ["round_robin", "random_slice"]},
        )
        assert _run_from_json(spec) == legacy

    def test_every_registered_study_has_a_differential_case(self):
        """New studies must be added to this class (and get spec_paths)."""
        from repro.experiments import get_study, study_names

        covered = {"caches", "invert_ratio", "victim_policy", "regfile",
                   "vmin_power", "penelope", "multiprog"}
        assert set(study_names()) == covered
        for name in covered:
            # Workload axes must be spec-bound for run_study to work
            # ("suite" fans out per suite; "suites" binds the whole
            # multiprogram tuple).
            spec_paths = get_study(name).spec_paths
            assert "suite" in spec_paths or "suites" in spec_paths


class TestStudySpecErrors:
    def test_unknown_study(self):
        with pytest.raises(KeyError, match="unknown study"):
            api.run_study(StudySpec(study="bogus"))

    def test_unknown_sweep_axis_lists_sweepable_paths(self):
        spec = StudySpec(study="caches",
                         sweep={"protection.l2.params.ratio": [0.5]})
        with pytest.raises(SpecError,
                           match="protection.dl0.params.ratio"):
            api.run_study(spec)

    def test_unknown_override_lists_parameters(self):
        spec = StudySpec(study="caches", overrides={"bogus_knob": 1})
        with pytest.raises(SpecError, match="bogus_knob"):
            api.run_study(spec)

    def test_default_study_spec_unknown_study(self):
        with pytest.raises(KeyError, match="unknown study"):
            api.default_study_spec("bogus")

    def test_edit_outside_study_binding_rejected(self):
        # The regfile study never builds a cache: a DL0 edit would run
        # with silently unchanged results, so it must error instead.
        spec = api.default_study_spec("regfile").replace(
            protection=ProtectionSpec(
                dl0=MechanismSpec("set_fixed", {"ratio": 0.4})))
        with pytest.raises(SpecError, match="protection.dl0"):
            api.run_study(spec)

    def test_processor_edit_outside_binding_rejected(self):
        spec = with_path(api.default_study_spec("caches"),
                         "processor.issue_width", 8)
        with pytest.raises(SpecError, match="processor.issue_width"):
            api.run_study(spec)

    def test_bound_edits_still_accepted(self):
        # Geometry axes ARE bound for the cache studies.
        spec = with_path(api.default_study_spec("caches"),
                         "processor.dl0.size_kb", 8)
        assert api.study_sweep_spec(spec).base["size_kb"] == 8


class TestSpecFiles:
    def test_save_and_load_round_trip(self, tmp_path):
        spec = api.default_study_spec("caches")
        path = tmp_path / "study.json"
        api.save_study_spec(spec, str(path))
        assert api.load_study_spec(str(path)) == spec
