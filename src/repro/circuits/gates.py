"""Static-CMOS gate primitives with explicit PMOS transistors.

Keeping the primitive set small (INV, NAND2, NOR2) makes every internal
node of composite functions (AND, OR, XOR, ...) an explicit netlist node,
so the aging simulator can account the zero-signal residency of *every*
PMOS gate terminal in the design — exactly what the paper's electrical
simulator measures.

In static CMOS the pull-up network consists of one PMOS per gate input:

- INV:   one PMOS driven by the input.
- NAND2: two *parallel* PMOS, one per input.
- NOR2:  two *series* PMOS, one per input.

A PMOS is under NBTI stress whenever the node driving its gate is "0",
regardless of the series/parallel arrangement, so for stress accounting
each primitive simply owns one PMOS per input pin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.nbti.transistor import PMOSTransistor, WidthClass


class GateKind(enum.Enum):
    """Primitive gate kinds (all inverting, as in static CMOS)."""

    INV = "inv"
    NAND2 = "nand2"
    NOR2 = "nor2"

    @property
    def arity(self) -> int:
        return 1 if self is GateKind.INV else 2


_EVALUATORS: Dict[GateKind, Callable[..., int]] = {
    GateKind.INV: lambda a: 1 - a,
    GateKind.NAND2: lambda a, b: 1 - (a & b),
    GateKind.NOR2: lambda a, b: 1 - (a | b),
}


@dataclass(frozen=True)
class Gate:
    """One primitive gate instance in a netlist.

    Attributes
    ----------
    name:
        Unique instance name within the circuit.
    kind:
        Primitive kind (INV / NAND2 / NOR2).
    inputs:
        Names of the nodes driving the gate's input pins.
    output:
        Name of the node driven by the gate.
    width_class:
        Sizing class applied to all PMOS in the gate's pull-up network.
    """

    name: str
    kind: GateKind
    inputs: Tuple[str, ...]
    output: str
    width_class: WidthClass = WidthClass.NARROW
    pmos: Tuple[PMOSTransistor, ...] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.inputs) != self.kind.arity:
            raise ValueError(
                f"{self.kind.value} gate {self.name!r} needs "
                f"{self.kind.arity} inputs, got {len(self.inputs)}"
            )
        transistors = tuple(
            PMOSTransistor(
                name=f"{self.name}.p{i}",
                gate_node=node,
                width_class=self.width_class,
            )
            for i, node in enumerate(self.inputs)
        )
        object.__setattr__(self, "pmos", transistors)

    def evaluate(self, values: Sequence[int]) -> int:
        """Logic value of the output for the given input pin values."""
        if len(values) != self.kind.arity:
            raise ValueError(
                f"expected {self.kind.arity} values, got {len(values)}"
            )
        for value in values:
            if value not in (0, 1):
                raise ValueError(f"gate inputs must be 0/1, got {value!r}")
        return _EVALUATORS[self.kind](*values)

    @property
    def transistor_count(self) -> int:
        """Number of PMOS transistors in the pull-up network."""
        return len(self.pmos)
