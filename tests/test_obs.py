"""Tests for the observability subsystem (tracer, event log,
provenance manifests, sweep progress) and its runner integration."""

import io
import json
import os
import threading
import time

import pytest

from repro.obs.log import (
    EventLog,
    new_run_id,
    read_events,
    render_event,
)
from repro.obs.progress import SweepProgress
from repro.obs.provenance import (
    MANIFEST_SCHEMA,
    build_manifest,
    describe_manifest,
    load_manifest,
    manifest_path_for,
    spec_hash,
    write_manifest,
)
from repro.obs.trace import (
    TRACER,
    Tracer,
    export_chrome_trace,
    load_spans,
    save_spans,
    to_chrome_trace,
    traced,
)


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Leave the process-global tracer disabled and empty after each
    test, whatever the test did to it."""
    yield
    TRACER.disable()
    TRACER.clear()


def tracer():
    t = Tracer()
    t.enable()
    return t


class TestTracerDisabled:
    def test_span_is_shared_noop_singleton(self):
        t = Tracer()
        first = t.span("a", k=1)
        second = t.span("b")
        assert first is second  # no per-call allocation
        with first:
            first.set(extra=2)
        assert len(t) == 0

    def test_begin_returns_none_and_end_ignores_it(self):
        t = Tracer()
        token = t.begin()
        assert token is None
        t.end(token, "never")
        t.instant("never")
        t.record_span("never", 0.0, 1.0)
        assert len(t) == 0

    def test_traced_decorator_passthrough(self):
        calls = []

        @traced("decorated.fn")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(21) == 42
        assert calls == [21]
        assert len(TRACER) == 0


class TestTracerEnabled:
    def test_span_nesting_parent_linkage_and_order(self):
        t = tracer()
        with t.span("outer", depth=0):
            with t.span("inner", depth=1):
                pass
        inner, outer = t.records()
        # The inner span closes (and records) first.
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["span_id"] != outer["span_id"]
        assert inner["args"] == {"depth": 1}

    def test_timing_monotonicity(self):
        t = tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.records()
        assert inner["dur"] >= 0.0 and outer["dur"] >= 0.0
        # A nested span starts no earlier and runs no longer than its
        # parent.
        assert inner["ts"] >= outer["ts"]
        assert inner["dur"] <= outer["dur"]

    def test_sibling_spans_record_in_completion_order(self):
        t = tracer()
        for name in ("first", "second", "third"):
            with t.span(name):
                pass
        names = [r["name"] for r in t.records()]
        assert names == ["first", "second", "third"]
        timestamps = [r["ts"] for r in t.records()]
        assert timestamps == sorted(timestamps)

    def test_begin_end_token_form(self):
        t = tracer()
        with t.span("outer"):
            token = t.begin()
            assert token is not None
            t.end(token, "tokened", n=3)
        tokened, outer = t.records()
        assert tokened["name"] == "tokened"
        assert tokened["args"] == {"n": 3}
        assert tokened["parent_id"] == outer["span_id"]

    def test_set_attaches_mid_span_attributes(self):
        t = tracer()
        with t.span("work", planned=4) as span:
            span.set(done=4)
        (record,) = t.records()
        assert record["args"] == {"planned": 4, "done": 4}

    def test_instant_marker(self):
        t = tracer()
        t.instant("decision", active=True)
        (record,) = t.records()
        assert record["ph"] == "i"
        assert record["dur"] == 0.0
        assert record["args"] == {"active": True}

    def test_ring_is_bounded(self):
        t = Tracer(capacity=4, enabled=True)
        for index in range(10):
            with t.span(f"s{index}"):
                pass
        assert len(t) == 4
        assert [r["name"] for r in t.records()] == ["s6", "s7", "s8",
                                                    "s9"]

    def test_drain_and_extend_merge_across_tracers(self):
        worker = tracer()
        with worker.span("remote"):
            pass
        shipped = worker.drain()
        assert len(worker) == 0
        parent = tracer()
        with parent.span("local"):
            pass
        parent.extend(shipped)
        assert {r["name"] for r in parent.records()} == {"local",
                                                         "remote"}

    def test_traced_decorator_records(self):
        t = TRACER
        t.enable()
        t.clear()

        @traced()
        def sample_function():
            return 7

        assert sample_function() == 7
        (record,) = t.records()
        assert "sample_function" in record["name"]


class TestChromeTraceExport:
    def _records(self):
        t = tracer()
        with t.span("sweep.run", points=2):
            with t.span("cache.replay", accesses=100):
                pass
            t.instant("scheme.decide", active=False)
        return t.records()

    def test_event_schema(self):
        payload = to_chrome_trace(self._records())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2 and len(instants) == 1
        assert len(metadata) == 1  # one process_name per pid
        for event in complete:
            for field in ("name", "cat", "ts", "dur", "pid", "tid",
                          "args"):
                assert field in event
            # category = the span-name prefix before the first dot
            assert event["cat"] == event["name"].split(".")[0]
            assert event["dur"] >= 0.0
        for event in instants:
            assert event["s"] == "t" and "dur" not in event
        assert metadata[0]["name"] == "process_name"

    def test_timestamps_reanchored_to_trace_start(self):
        events = to_chrome_trace(self._records())["traceEvents"]
        timed = [e["ts"] for e in events if e["ph"] != "M"]
        assert min(timed) == 0.0
        assert all(ts >= 0.0 for ts in timed)

    def test_empty_records(self):
        payload = to_chrome_trace([])
        assert payload["traceEvents"] == []

    def test_save_load_round_trip(self, tmp_path):
        records = self._records()
        path = str(tmp_path / "spans.jsonl")
        assert save_spans(path, records) == len(records)
        assert load_spans(path) == records

    def test_load_rejects_non_span_files(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"study": "caches", "metrics": {}}\n')
        with pytest.raises(ValueError, match="not a span file"):
            load_spans(str(bad))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_spans(str(empty))

    def test_export_writes_loadable_json(self, tmp_path):
        records = self._records()
        out = str(tmp_path / "trace.json")
        count = export_chrome_trace(records, out)
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["traceEvents"]) == count
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"sweep.run", "cache.replay", "scheme.decide"} <= names


class TestEventLog:
    def test_emit_appends_one_json_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path, run_id="abc123def456")
        record = log.info("point_done", key="k1", cached=False)
        assert record["run_id"] == "abc123def456"
        (loaded,) = read_events(path)
        assert loaded["event"] == "point_done"
        assert loaded["payload"] == {"key": "k1", "cached": False}

    def test_span_id_links_log_to_trace(self, tmp_path):
        TRACER.enable()
        TRACER.clear()
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path)
        with TRACER.span("outer"):
            log.info("inside")
        log.info("outside")
        (outer_span,) = TRACER.records()
        inside, outside = read_events(path)
        assert inside["span_id"] == outer_span["span_id"]
        assert outside["span_id"] is None

    def test_level_filtering(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path, level="warning")
        assert log.debug("noise") is None
        assert log.info("noise") is None
        assert log.warning("kept") is not None
        assert log.error("kept_too") is not None
        assert [e["event"] for e in read_events(path)] == ["kept",
                                                           "kept_too"]

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown level"):
            EventLog(level="loud")

    def test_console_rendering(self, tmp_path):
        stream = io.StringIO()
        log = EventLog(console=True, stream=stream)
        log.info("run_start", study="caches", points=4)
        line = stream.getvalue()
        assert "INFO" in line and "run_start" in line
        assert "study=caches" in line and "points=4" in line

    def test_render_event_is_compact(self):
        line = render_event({
            "ts": 1690000000.5, "level": "error", "event": "point_error",
            "payload": {"elapsed": 0.123456789, "key": "x" * 60},
        })
        assert "ERROR" in line and "point_error" in line
        assert "0.1235" in line      # floats shortened
        assert "x" * 60 not in line  # long strings truncated

    def test_read_events_skips_corrupt_lines_and_filters_run(
            self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        first = EventLog(path=path, run_id="run-aaa")
        second = EventLog(path=path, run_id="run-bbb")
        first.info("one")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn line\n")
        second.info("two")
        assert [e["event"] for e in read_events(path)] == ["one", "two"]
        assert [e["event"]
                for e in read_events(path, run_id="run-bbb")] == ["two"]

    def test_threaded_writers_never_interleave(self, tmp_path):
        """The PR 4 single-os.write O_APPEND discipline: concurrent
        writers produce whole lines, never spliced fragments."""
        path = str(tmp_path / "events.jsonl")
        threads_n, events_n = 8, 50
        barrier = threading.Barrier(threads_n)

        def writer(worker):
            log = EventLog(path=path, run_id=f"run-{worker}")
            barrier.wait()
            for index in range(events_n):
                log.info("tick", worker=worker, index=index,
                         padding="p" * 37)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert len(lines) == threads_n * events_n
        # Every single line parses: no interleaved partial writes.
        records = [json.loads(line) for line in lines]
        for worker in range(threads_n):
            mine = [r for r in records
                    if r["run_id"] == f"run-{worker}"]
            assert sorted(r["payload"]["index"] for r in mine) == list(
                range(events_n))

    def test_new_run_id_shape(self):
        first, second = new_run_id(), new_run_id()
        assert len(first) == 12 and first != second


class TestProvenance:
    def _manifest(self, tmp_path):
        return build_manifest(
            run_id="runid1234567",
            spec_payload={"study": "caches", "base": {"length": 600},
                          "grid": {"ratio": [0.4, 0.6]}, "size": 2},
            points=[
                {"key": "aaa", "params": {"ratio": 0.4},
                 "cached": False, "elapsed": 0.25},
                {"key": "bbb", "params": {"ratio": 0.6},
                 "cached": True, "elapsed": 0.01},
            ],
            workers=2,
            started=1690000000.0,
            finished=1690000010.0,
            store_path=str(tmp_path / "store.jsonl"),
            trace_path=str(tmp_path / "trace.json"),
            events_path=str(tmp_path / "events.jsonl"),
        )

    def test_round_trip(self, tmp_path):
        manifest = self._manifest(tmp_path)
        path = str(tmp_path / "manifest.json")
        write_manifest(path, manifest)
        loaded = load_manifest(path)
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["run_id"] == "runid1234567"
        assert loaded["spec_hash"] == manifest["spec_hash"]
        assert loaded["totals"] == {
            "points": 2, "cache_hits": 1, "executed": 1,
            "slowest_key": "aaa", "slowest_elapsed": 0.25,
        }
        assert loaded["wall_time"] == 10.0
        assert loaded["environment"]["package_version"]
        assert [p["key"] for p in loaded["points"]] == ["aaa", "bbb"]

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        write_manifest(path, self._manifest(tmp_path))
        write_manifest(path, self._manifest(tmp_path))  # overwrite ok
        assert os.listdir(str(tmp_path)) == ["manifest.json"]

    def test_load_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"traceEvents": []}')
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(str(path))

    def test_spec_hash_is_order_insensitive(self):
        a = spec_hash({"study": "caches", "base": {"x": 1, "y": 2}})
        b = spec_hash({"base": {"y": 2, "x": 1}, "study": "caches"})
        assert a == b
        assert a != spec_hash({"study": "caches",
                               "base": {"x": 1, "y": 3}})

    def test_manifest_path_is_next_to_store(self):
        assert manifest_path_for("/data/run/store.jsonl") == \
            "/data/run/manifest.json"
        assert manifest_path_for("store.jsonl") == "./manifest.json"

    def test_describe_manifest_one_liner(self, tmp_path):
        line = describe_manifest(self._manifest(tmp_path))
        assert line.startswith("provenance: run runid1234567")
        assert "caches 2 points (1 cached)" in line
        assert "2 worker(s)" in line


class _FakePoint:
    def __init__(self, key, label):
        self.key = key
        self._label = label

    def describe(self):
        return self._label


class _FakeResult:
    def __init__(self, key="k", label="ratio=0.4", cached=False,
                 elapsed=0.5):
        self.point = _FakePoint(key, label)
        self.cached = cached
        self.elapsed = elapsed


class TestSweepProgress:
    def test_line_mode(self):
        stream = io.StringIO()
        ticks = iter([0.0, 1.0, 2.0])
        progress = SweepProgress(2, mode="line", stream=stream,
                                 clock=lambda: next(ticks))
        progress.update(_FakeResult(elapsed=0.5))
        progress.update(_FakeResult(cached=True))
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("  [  1/2]")
        assert "eta" in lines[0]
        assert "cached" in lines[1] and "done" in lines[1]

    def test_json_mode_emits_parseable_events(self):
        stream = io.StringIO()
        progress = SweepProgress(2, mode="json", stream=stream)
        progress.update(_FakeResult(key="abc"))
        progress.update(_FakeResult(key="def", cached=True))
        events = [json.loads(line)
                  for line in stream.getvalue().splitlines()]
        assert [e["done"] for e in events] == [1, 2]
        assert events[0]["key"] == "abc" and events[1]["cached"]
        assert events[1]["eta_s"] == 0.0

    def test_none_mode_is_silent_but_counts(self):
        stream = io.StringIO()
        progress = SweepProgress(3, mode="none", stream=stream)
        progress.update(_FakeResult(cached=True))
        progress.update(_FakeResult(elapsed=1.5))
        assert stream.getvalue() == ""
        assert progress.done == 2 and progress.cached == 1

    def test_summary_names_slowest_point(self):
        progress = SweepProgress(2, mode="none")
        progress.update(_FakeResult(label="ratio=0.4", elapsed=0.1))
        progress.update(_FakeResult(key="slowkey123", label="ratio=0.6",
                                    elapsed=2.0))
        summary = progress.summary(wall_time=2.5)
        assert "2 points in 2.50s" in summary
        assert "slowest point: ratio=0.6" in summary
        assert "slowkey123" in summary

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown progress mode"):
            SweepProgress(1, mode="fancy")


def _tiny_spec():
    from repro.experiments import SweepSpec

    return SweepSpec(
        "caches",
        base={"length": 400, "seed": 0, "suite": "office"},
        grid={"ratio": [0.4, 0.6]},
    )


class TestRunnerObservability:
    def test_results_bit_identical_with_tracing_on_and_off(
            self, tmp_path):
        """The differential guarantee: enabling the tracer and event
        log must not change a single metric bit."""
        from repro.experiments import run_sweep

        TRACER.disable()
        TRACER.clear()
        plain = run_sweep(_tiny_spec(), manifest=False)

        TRACER.enable()
        log = EventLog(path=str(tmp_path / "events.jsonl"))
        traced_run = run_sweep(_tiny_spec(), manifest=False, log=log)

        assert len(TRACER) > 0  # tracing actually happened
        assert [r.metrics for r in plain] == \
            [r.metrics for r in traced_run]
        assert [r.point.key for r in plain] == \
            [r.point.key for r in traced_run]

    def test_traced_sweep_records_lifecycle_spans(self):
        from repro.experiments import run_sweep

        TRACER.enable()
        TRACER.clear()
        run_sweep(_tiny_spec(), manifest=False)
        names = {r["name"] for r in TRACER.records()}
        assert {"sweep.run", "sweep.execute", "study.caches",
                "cache.replay", "scheme.replay"} <= names

    def test_store_backed_sweep_writes_manifest_and_events(
            self, tmp_path):
        from repro.experiments import ResultStore, run_sweep

        store = ResultStore(str(tmp_path / "store.jsonl"))
        outcome = run_sweep(_tiny_spec(), store=store)
        assert outcome.run_id
        assert outcome.manifest_path == str(tmp_path / "manifest.json")
        manifest = load_manifest(outcome.manifest_path)
        assert manifest["run_id"] == outcome.run_id
        assert manifest["study"] == "caches"
        assert manifest["totals"]["points"] == 2
        assert manifest["totals"]["executed"] == 2
        assert all(p["elapsed"] >= 0.0 for p in manifest["points"])
        events = read_events(str(tmp_path / "events.jsonl"))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("point_done") == 2
        assert kinds.count("worker_heartbeat") == 2
        assert all(e["run_id"] == outcome.run_id for e in events)

        # Rerun: all cache hits, manifest reflects the new run.
        rerun = run_sweep(_tiny_spec(), store=store)
        assert rerun.cache_hits == 2
        manifest = load_manifest(rerun.manifest_path)
        assert manifest["run_id"] == rerun.run_id
        assert manifest["totals"]["cache_hits"] == 2

    def test_point_error_names_point_and_lands_in_event_log(
            self, tmp_path):
        """Satellite: a failing study must name the point's content
        hash and parameters, and emit a structured point_error event."""
        from repro.experiments import (
            PointExecutionError,
            ResultStore,
            SweepSpec,
            run_sweep,
        )

        spec = SweepSpec(
            "caches",
            base={"length": 400, "seed": 0, "suite": "bogus"},
            grid={"ratio": [0.4]},
        )
        store = ResultStore(str(tmp_path / "store.jsonl"))
        with pytest.raises(PointExecutionError) as excinfo:
            run_sweep(spec, store=store)
        error = excinfo.value
        assert error.study == "caches"
        assert error.key and len(error.key) == 20
        assert error.key in str(error)
        assert "suite=bogus" in str(error)
        assert error.params["suite"] == "bogus"
        events = read_events(str(tmp_path / "events.jsonl"),
                             level="error")
        (point_error,) = events
        assert point_error["event"] == "point_error"
        assert point_error["payload"]["key"] == error.key

    def test_point_execution_error_survives_pickling(self):
        import pickle

        from repro.experiments import PointExecutionError

        error = PointExecutionError("study 'x' point abc failed",
                                    key="abc", study="x",
                                    params={"ratio": 0.4})
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.key == "abc" and clone.params == {"ratio": 0.4}

    def test_parallel_traced_sweep_matches_serial(self, tmp_path):
        from repro.experiments import run_sweep

        TRACER.disable()
        TRACER.clear()
        serial = run_sweep(_tiny_spec(), manifest=False)

        TRACER.enable()
        parallel = run_sweep(_tiny_spec(), workers=2, manifest=False)
        assert [r.metrics for r in serial] == \
            [r.metrics for r in parallel]
        names = {r["name"] for r in TRACER.records()}
        assert "sweep.run" in names
        # Pool path ships worker spans + queue waits back; the serial
        # fallback (platforms without multiprocessing) records the same
        # sweep.execute spans directly.
        assert "sweep.execute" in names


# ----------------------------------------------------------------------
# Incremental event tailing (the WS bridge / --follow substrate)
# ----------------------------------------------------------------------
class TestEventTailing:
    def _write(self, path, *lines, newline=True):
        with open(path, "a", encoding="utf-8") as handle:
            for i, line in enumerate(lines):
                last = i == len(lines) - 1
                handle.write(line + ("" if last and not newline
                                     else "\n"))

    def test_tail_events_advances_watermark(self, tmp_path):
        from repro.obs.log import tail_events

        path = str(tmp_path / "events.jsonl")
        self._write(path, json.dumps({"event": "one"}),
                    json.dumps({"event": "two"}))
        records, offset = tail_events(path)
        assert [r["event"] for r in records] == ["one", "two"]
        assert offset == os.path.getsize(path)
        # Nothing new: same watermark, no records.
        assert tail_events(path, offset) == ([], offset)
        self._write(path, json.dumps({"event": "three"}))
        records, offset2 = tail_events(path, offset)
        assert [r["event"] for r in records] == ["three"]
        assert offset2 > offset

    def test_torn_tail_is_retried_not_lost(self, tmp_path):
        from repro.obs.log import tail_events

        path = str(tmp_path / "events.jsonl")
        whole = json.dumps({"event": "whole"})
        torn = json.dumps({"event": "torn"})
        self._write(path, whole)
        self._write(path, torn[:7], newline=False)
        records, offset = tail_events(path)
        assert [r["event"] for r in records] == ["whole"]
        # The watermark stops before the torn line...
        self._write(path, torn[7:])
        records, __ = tail_events(path, offset)
        # ...so completing it yields the whole record, exactly once.
        assert [r["event"] for r in records] == ["torn"]

    def test_missing_file_yields_nothing(self, tmp_path):
        from repro.obs.log import EventTailer, tail_events

        path = str(tmp_path / "nope.jsonl")
        assert tail_events(path) == ([], 0)
        assert EventTailer(path).poll() == []
        assert read_events(path) == []

    def test_truncated_file_restarts_from_zero(self, tmp_path):
        from repro.obs.log import EventTailer

        path = str(tmp_path / "events.jsonl")
        self._write(path, json.dumps({"event": "old1"}),
                    json.dumps({"event": "old2"}))
        tailer = EventTailer(path)
        assert [r["event"] for r in tailer.poll()] == ["old1", "old2"]
        os.unlink(path)
        self._write(path, json.dumps({"event": "fresh"}))
        assert [r["event"] for r in tailer.poll()] == ["fresh"]

    def test_tailer_filters_run_and_level(self, tmp_path):
        from repro.obs.log import EventTailer

        path = str(tmp_path / "events.jsonl")
        log_a = EventLog(path=path, run_id="run-aaa")
        log_b = EventLog(path=path, run_id="run-bbb")
        log_a.info("mine")
        log_b.info("theirs")
        log_a.debug("chatty")
        log_a.warning("loud")
        tailer = EventTailer(path, run_id="run-aaa", level="info")
        assert [r["event"] for r in tailer.poll()] == ["mine", "loud"]

    def test_read_events_follow_streams_until_stopped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path, run_id="run-fff")
        log.info("before")
        stop = threading.Event()
        seen = []

        def consume():
            for record in read_events(path, follow=True,
                                      poll_interval=0.01,
                                      stop=stop.is_set):
                seen.append(record["event"])

        thread = threading.Thread(target=consume)
        thread.start()
        deadline = time.monotonic() + 5
        while "before" not in seen and time.monotonic() < deadline:
            time.sleep(0.01)
        log.info("during")
        while "during" not in seen and time.monotonic() < deadline:
            time.sleep(0.01)
        stop.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen[:2] == ["before", "during"]


class TestSweepProgressBegin:
    def test_json_begin_emits_run_id_and_store_first(self):
        stream = io.StringIO()
        progress = SweepProgress(2, mode="json", stream=stream)
        progress.begin(run_id="run-123", store="/tmp/store.jsonl")
        progress.update(_FakeResult(key="abc"))
        events = [json.loads(line)
                  for line in stream.getvalue().splitlines()]
        assert events[0] == {"event": "start", "run_id": "run-123",
                             "store": "/tmp/store.jsonl", "total": 2}
        assert events[1]["key"] == "abc"

    def test_line_and_none_modes_stay_silent(self):
        for mode in ("line", "none"):
            stream = io.StringIO()
            progress = SweepProgress(1, mode=mode, stream=stream)
            progress.begin(run_id="run-123", store=None)
            assert stream.getvalue() == ""
            assert progress.run_id == "run-123"
