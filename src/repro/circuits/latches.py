"""Input-latch banks and the Section 3.3 latch strategy.

Latches are memory-like (bit cells) but cannot hold arbitrary repair
values: they feed combinational blocks, so their contents are dictated
by whatever the idle-input mechanism writes for the *block's* sake.
Section 3.3 argues this is acceptable — latch transistors are large —
and Section 4.3 adds that alternating the <0,0,0>/<1,1,1> pair keeps
the latches themselves balanced ("latches hold similar amounts of time
opposite values").

:class:`LatchBank` models one block's input latches with per-bit-cell
residency so that claim can be measured rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL, GuardbandModel
from repro.nbti.stress import BitCellStress


class LatchBank:
    """The input latches of a combinational block.

    Latch cells are tracked individually; :meth:`capture` records a new
    input vector being held for a duration, exactly mirroring what the
    aging simulator does for the combinational nodes behind them.
    """

    def __init__(self, pins: Sequence[str]) -> None:
        if not pins:
            raise ValueError("a latch bank needs at least one pin")
        self.pins: Tuple[str, ...] = tuple(pins)
        self._cells: Dict[str, BitCellStress] = {
            pin: BitCellStress() for pin in self.pins
        }

    def capture(self, values: Mapping[str, int], duration: float = 1.0) -> None:
        """Hold ``values`` in the latches for ``duration`` time units."""
        missing = [pin for pin in self.pins if pin not in values]
        if missing:
            raise ValueError(f"missing latch values: {missing[:8]}")
        for pin in self.pins:
            self._cells[pin].observe(values[pin], duration)

    def bias_to_zero(self, pin: str) -> float:
        return self._cell(pin).bias_to_zero

    def worst_duty(self) -> float:
        """Worst per-cell PMOS duty across the bank."""
        return max(cell.worst_duty for cell in self._cells.values())

    def worst_pin(self) -> Tuple[str, float]:
        pin = max(self.pins, key=lambda p: self._cells[p].worst_duty)
        return pin, self._cells[pin].worst_duty

    def imbalances(self) -> Dict[str, float]:
        """Pin -> distance from the balanced 50% point."""
        return {pin: cell.imbalance for pin, cell in self._cells.items()}

    def guardband(
        self, model: GuardbandModel = DEFAULT_GUARDBAND_MODEL
    ) -> float:
        """Cycle-time guardband required by the worst latch cell."""
        return model.guardband_for_duty(self.worst_duty())

    def _cell(self, pin: str) -> BitCellStress:
        try:
            return self._cells[pin]
        except KeyError:
            raise KeyError(f"unknown latch pin {pin!r}") from None


@dataclass(frozen=True)
class LatchStudy:
    """Latch-bank stress under a weighted input schedule."""

    worst_duty: float
    worst_pin: str
    guardband: float
    mean_imbalance: float


def study_latch_bank(
    pins: Sequence[str],
    schedule: Sequence[Tuple[Mapping[str, int], float]],
    model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
) -> LatchStudy:
    """Drive a latch bank with ``(vector, duration)`` pairs and report.

    This is the Section 3.3 measurement: feed the same schedule the
    idle-input mechanism produces for the block and check the latches
    stay balanced enough to skip dedicated latch protection.
    """
    bank = LatchBank(pins)
    for values, duration in schedule:
        bank.capture(values, duration)
    pin, duty = bank.worst_pin()
    imbalances = bank.imbalances()
    return LatchStudy(
        worst_duty=duty,
        worst_pin=pin,
        guardband=bank.guardband(model),
        mean_imbalance=sum(imbalances.values()) / len(imbalances),
    )
