"""Extension: the Vmin / power benefit (Section 1, Conclusions).

"Vmin does not increase as much in memory-like structures by mitigating
NBTI, hence leading to higher power efficiency of such structures."
This bench quantifies that claim for the register file using the
measured baseline/ISV biases and the first-order SRAM power model, plus
a way-granularity inversion data point (the paper's third granularity).

Driven through the experiment engine: the voltage targets are a grid
axis of the ``vmin_power`` study (the underlying core runs are shared
across points via the per-worker bias cache), and the way-granularity
data point is one ``caches`` study point.
"""

import pytest

from repro.analysis import format_table
from repro.experiments import SweepRunner, SweepSpec

from conftest import SMOKE, scaled

TARGETS = (0.60, 0.70, 0.80)

POWER_SPEC = SweepSpec(
    "vmin_power",
    base={"suite": "specint2000", "length": scaled(8000), "seed": 88},
    grid={"target": list(TARGETS)},
)

WAY_SPEC = SweepSpec(
    "caches",
    base={
        "suite": "office", "length": scaled(8000), "seed": 88,
        "size_kb": 16, "ways": 8, "scheme": "way_fixed", "ratio": 0.5,
    },
)


def sweep():
    runner = SweepRunner(store=None, workers=1)
    power = runner.run(POWER_SPEC).results
    way = runner.run(WAY_SPEC).results[0]
    return power, way


def test_ablation_vmin_power(benchmark):
    power, way = benchmark.pedantic(sweep, rounds=1, iterations=1)
    first = power[0].metrics
    base_bias, isv_bias = first["base_bias"], first["isv_bias"]
    base_vmin, isv_vmin = first["base_vmin"], first["isv_vmin"]
    if not SMOKE:
        assert isv_vmin < base_vmin

    rows = []
    savings_by_target = {}
    for result in power:
        target = result.params["target"]
        savings_by_target[target] = result.metrics["savings"]
        rows.append([
            f"{target:.2f} V",
            f"{result.metrics['base_power']:.3f}",
            f"{result.metrics['isv_power']:.3f}",
            f"{result.metrics['savings']:.1%}",
        ])
    # Deeper scaling exposes more of the Vmin benefit.
    ordered = [savings_by_target[t] for t in (0.80, 0.70, 0.60)]
    if not SMOKE:
        assert ordered == sorted(ordered)
        assert savings_by_target[0.60] > 0.0

    text = format_table(
        ["voltage target", "baseline power", "ISV power", "savings"],
        rows,
        title=(f"Extension — Vmin/power benefit (INT RF, bias "
               f"{base_bias:.1%} -> {isv_bias:.1%}; Vmin "
               f"{base_vmin:.3f}V -> {isv_vmin:.3f}V)"),
    )
    text += (f"\nWayFixed50% on DL0-16K (office): perf loss "
             f"{way.metrics['mean_loss']:.2%}, inverted ratio "
             f"{way.metrics['inverted_ratio']:.0%}")
    from conftest import write_result

    write_result(
        "ablation_vmin_power.txt", text,
        data={
            "base_bias": base_bias,
            "isv_bias": isv_bias,
            "base_vmin": base_vmin,
            "isv_vmin": isv_vmin,
            "savings_by_target": {
                f"{t:.2f}": s for t, s in savings_by_target.items()
            },
            "way_fixed": way.metrics,
        },
    )
