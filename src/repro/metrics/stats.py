"""Typed, hierarchical statistics: the repo's one metric vocabulary.

Every stat-bearing component used to invent its own result shape —
``CacheStats`` dataclasses, ``RegisterFileStats`` snapshots, flat study
dicts, strings poked out of ``PointResult.params``.  This module defines
the shared vocabulary all of them now speak:

- :class:`Counter` — a monotonically accumulating count (accesses,
  inversions).  Interval deltas subtract.
- :class:`Gauge` — an instantaneous level (worst bias, occupancy).
  Interval deltas are the current value.
- :class:`Ratio` — a quotient of two sibling stats (miss rate =
  misses / accesses).  Interval deltas divide the *deltas* of the
  referenced counters, yielding honest per-interval rates.
- :class:`Distribution` — a labelled histogram (hit-position counts).
  Interval deltas subtract per key.
- :class:`Text` — a non-numeric annotation (scheme name, activation
  string).
- :class:`Derived` — a formula over sibling stats; eq. (1)'s
  NBTIefficiency is a ``Derived`` over ``delay``/``guardband``/``tdp``
  gauges (see ``repro.experiments.registry`` and
  ``repro.core.penelope``).

Stats live in a :class:`MetricSet` — a tree addressed by dotted paths
(``penelope.dl0.inverted_frac``) that can :meth:`~MetricSet.flatten` to
the flat JSON-serialisable dicts the :class:`~repro.experiments.store.
ResultStore` has always persisted, and :meth:`~MetricSet.snapshot` for
the bounded-memory interval telemetry in
:mod:`repro.metrics.telemetry`.

A stat reads its value either from a plain stored value (study
outputs — picklable, so sweep workers can ship them back) or through a
zero-argument ``read`` callable bound to the owning component (live
component telemetry — snapshots always see current counters, and
building the tree adds nothing to the hot path).

Producers implement the :class:`MetricSource` protocol — ``metrics()
-> MetricSet`` — which every stat-bearing structure in ``repro.uarch``
and ``repro.core`` now does.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

SEPARATOR = "."

#: Stat kinds whose values aggregate arithmetically (mean/min/max).
NUMERIC_KINDS = frozenset({"counter", "gauge", "ratio", "derived"})

#: Kinds whose interval delta subtracts (scalar for counters, per-key
#: for distributions).  This is THE authority consulted by
#: :func:`delta_values` — keep new accumulating kinds in sync here.
CUMULATIVE_KINDS = frozenset({"counter", "distribution"})


def kind_of_value(value: Any) -> str:
    """The stat kind a bare (JSON round-tripped) value maps onto.

    Cached sweep results come back as plain JSON scalars; this is the
    deterministic typing rule that lets consumers (``experiments.
    summary``, ``repro report``) aggregate them by stat type without
    guessing numeric-ness ad hoc.  Booleans are flags, not
    measurements, so they classify as text.
    """
    if isinstance(value, bool):
        return "text"
    if isinstance(value, int):
        return "counter"
    if isinstance(value, float):
        return "gauge"
    if isinstance(value, Mapping):
        return "distribution"
    return "text"


ReadFn = Callable[[], Any]


class Stat:
    """Base stat: one named, typed leaf of a :class:`MetricSet`."""

    kind = "stat"

    __slots__ = ("help", "internal", "_value", "_read", "_owner", "_name")

    def __init__(
        self,
        value: Any = None,
        *,
        read: Optional[ReadFn] = None,
        help: str = "",
        internal: bool = False,
    ) -> None:
        if value is not None and read is not None:
            raise ValueError("pass either a stored value or a read "
                             "callable, not both")
        self.help = help
        #: Internal stats feed Derived formulas and snapshots but are
        #: excluded from flatten() (they are inputs, not results).
        self.internal = internal
        self._value = value
        self._read = read
        self._owner: Optional["MetricSet"] = None
        self._name: Optional[str] = None

    def _attach(self, owner: "MetricSet", name: str) -> None:
        self._owner = owner
        self._name = name

    def value(self) -> Any:
        if self._read is not None:
            return self._read()
        return self._value

    def set(self, value: Any) -> None:
        """Update a stored value (rejected for live ``read`` stats)."""
        if self._read is not None:
            raise ValueError(
                f"stat {self._name!r} reads live component state and "
                f"cannot be set"
            )
        self._value = value

    def schema(self, prefix: str = "") -> Dict[str, Any]:
        """JSON-safe type descriptor (kind + reference paths)."""
        return {"kind": self.kind}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._name!r}={self.value()!r}>"


class Counter(Stat):
    """A monotonically accumulating count; deltas subtract."""

    kind = "counter"
    __slots__ = ()

    def __init__(self, value: Any = None, *, read: Optional[ReadFn] = None,
                 help: str = "", internal: bool = False) -> None:
        if value is None and read is None:
            value = 0
        super().__init__(value, read=read, help=help, internal=internal)

    def add(self, amount: Union[int, float] = 1) -> None:
        if self._read is not None:
            raise ValueError(
                f"counter {self._name!r} reads live component state"
            )
        self._value += amount


class Gauge(Stat):
    """An instantaneous level; the delta of a gauge is its value."""

    kind = "gauge"
    __slots__ = ()

    def __init__(self, value: Any = None, *, read: Optional[ReadFn] = None,
                 help: str = "", internal: bool = False) -> None:
        if value is None and read is None:
            value = 0.0
        super().__init__(value, read=read, help=help, internal=internal)


class Text(Stat):
    """A non-numeric annotation (scheme name, activation history)."""

    kind = "text"
    __slots__ = ()

    def __init__(self, value: Any = None, *, read: Optional[ReadFn] = None,
                 help: str = "", internal: bool = False) -> None:
        if value is None and read is None:
            value = ""
        super().__init__(value, read=read, help=help, internal=internal)


Ref = Union[str, ReadFn]


class Ratio(Stat):
    """A quotient of two sibling stats (or a precomputed value).

    ``numerator`` / ``denominator`` are sibling stat names (dotted
    paths relative to the owning set) or zero-argument callables.  The
    value is ``num / den``; a zero denominator reports ``zero`` — 0.0
    by default, matching the legacy ``CacheStats`` properties, but
    e.g. the port-availability fractions keep their legacy "no checks
    means all free" convention with ``zero=1.0``.  Aggregated study
    outputs (a mean over streams) may instead carry a precomputed
    ``value``.
    """

    kind = "ratio"
    __slots__ = ("numerator", "denominator", "zero")

    def __init__(
        self,
        value: Any = None,
        *,
        numerator: Optional[Ref] = None,
        denominator: Optional[Ref] = None,
        zero: float = 0.0,
        read: Optional[ReadFn] = None,
        help: str = "",
        internal: bool = False,
    ) -> None:
        has_refs = numerator is not None or denominator is not None
        if has_refs and (numerator is None or denominator is None):
            raise ValueError("a Ratio needs both numerator and "
                             "denominator (or neither)")
        if value is None and read is None and not has_refs:
            raise ValueError("a Ratio needs a value, a read callable, "
                             "or numerator+denominator references")
        if (value is not None or read is not None) and has_refs:
            raise ValueError("a Ratio takes either a value/read or "
                             "numerator+denominator, not both")
        super().__init__(value, read=read, help=help, internal=internal)
        self.numerator = numerator
        self.denominator = denominator
        self.zero = zero

    def _resolve(self, ref: Ref) -> Any:
        if callable(ref):
            return ref()
        if self._owner is None:
            raise RuntimeError(
                f"ratio {self._name!r} references sibling {ref!r} but "
                f"is not attached to a MetricSet"
            )
        return self._owner.get(ref).value()

    def value(self) -> Any:
        if self._read is not None:
            return self._read()
        if self.numerator is None:
            return self._value
        denominator = self._resolve(self.denominator)
        return (self._resolve(self.numerator) / denominator
                if denominator else self.zero)

    def schema(self, prefix: str = "") -> Dict[str, Any]:
        info = {"kind": self.kind}
        # Delta computation needs BOTH reference paths; a ratio over a
        # callable stays an opaque (current-value) stat in the schema.
        if (isinstance(self.numerator, str)
                and isinstance(self.denominator, str)):
            info["numerator"] = prefix + self.numerator
            info["denominator"] = prefix + self.denominator
            if self.zero:
                info["zero"] = self.zero
        return info


class Distribution(Stat):
    """A labelled histogram; deltas subtract per key."""

    kind = "distribution"
    __slots__ = ()

    def __init__(self, value: Any = None, *, read: Optional[ReadFn] = None,
                 help: str = "", internal: bool = False) -> None:
        if value is None and read is None:
            value = {}
        super().__init__(value, read=read, help=help, internal=internal)

    def value(self) -> Dict[Any, Any]:
        raw = super().value()
        return dict(raw) if raw is not None else {}


class Derived(Stat):
    """A formula over sibling stats, evaluated on read.

    ``formula`` is called with the current values of ``args`` (sibling
    names, dotted paths relative to the owning set).  Eq. (1) becomes::

        ms.gauge("delay", 1.0, internal=True)
        ms.gauge("guardband", 0.02, internal=True)
        ms.gauge("tdp", 1.0, internal=True)
        ms.derived("efficiency", nbti_efficiency,
                   args=("delay", "guardband", "tdp"))

    Keep ``formula`` picklable (a module-level function or a
    ``functools.partial`` of one) so sweep workers can ship the set
    across processes.
    """

    kind = "derived"
    __slots__ = ("formula", "args")

    def __init__(
        self,
        formula: Callable[..., Any],
        args: Sequence[str] = (),
        *,
        help: str = "",
        internal: bool = False,
    ) -> None:
        super().__init__(None, help=help, internal=internal)
        self.formula = formula
        self.args = tuple(args)

    def value(self) -> Any:
        if self._owner is None:
            raise RuntimeError(
                f"derived stat {self._name!r} is not attached to a "
                f"MetricSet"
            )
        return self.formula(
            *(self._owner.get(arg).value() for arg in self.args)
        )

    def schema(self, prefix: str = "") -> Dict[str, Any]:
        return {"kind": self.kind,
                "args": [prefix + arg for arg in self.args]}


# ----------------------------------------------------------------------
# The tree
# ----------------------------------------------------------------------
class MetricSet:
    """A hierarchical namespace of stats addressed by dotted paths.

    Examples
    --------
    >>> ms = MetricSet()
    >>> _ = ms.counter("hits", 3)
    >>> _ = ms.counter("misses", 1)
    >>> _ = ms.ratio("miss_rate", numerator="misses",
    ...              denominator="accesses")
    >>> _ = ms.counter("accesses", 4)
    >>> ms.flatten()
    {'hits': 3, 'misses': 1, 'miss_rate': 0.25, 'accesses': 4}
    """

    __slots__ = ("_stats", "_children")

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}
        self._children: Dict[str, "MetricSet"] = {}

    # -- construction ---------------------------------------------------
    def _check_name(self, name: str) -> None:
        if not name or SEPARATOR in name:
            raise ValueError(
                f"invalid metric name {name!r}: names are non-empty "
                f"and must not contain {SEPARATOR!r}"
            )
        if name in self._stats or name in self._children:
            raise ValueError(f"duplicate metric name {name!r}")

    def add(self, name: str, stat: Stat) -> Stat:
        """Register a stat under ``name``; returns it for chaining."""
        self._check_name(name)
        stat._attach(self, name)
        self._stats[name] = stat
        return stat

    def counter(self, name: str, value: Any = None, *,
                read: Optional[ReadFn] = None, help: str = "",
                internal: bool = False) -> Counter:
        return self.add(name, Counter(value, read=read, help=help,
                                      internal=internal))

    def gauge(self, name: str, value: Any = None, *,
              read: Optional[ReadFn] = None, help: str = "",
              internal: bool = False) -> Gauge:
        return self.add(name, Gauge(value, read=read, help=help,
                                    internal=internal))

    def ratio(self, name: str, value: Any = None, *,
              numerator: Optional[Ref] = None,
              denominator: Optional[Ref] = None, zero: float = 0.0,
              read: Optional[ReadFn] = None, help: str = "",
              internal: bool = False) -> Ratio:
        return self.add(name, Ratio(value, numerator=numerator,
                                    denominator=denominator, zero=zero,
                                    read=read, help=help,
                                    internal=internal))

    def distribution(self, name: str, value: Any = None, *,
                     read: Optional[ReadFn] = None, help: str = "",
                     internal: bool = False) -> Distribution:
        return self.add(name, Distribution(value, read=read, help=help,
                                           internal=internal))

    def text(self, name: str, value: Any = None, *,
             read: Optional[ReadFn] = None, help: str = "",
             internal: bool = False) -> Text:
        return self.add(name, Text(value, read=read, help=help,
                                   internal=internal))

    def derived(self, name: str, formula: Callable[..., Any],
                args: Sequence[str] = (), *, help: str = "",
                internal: bool = False) -> Derived:
        return self.add(name, Derived(formula, args, help=help,
                                      internal=internal))

    def child(self, name: str,
              child: Optional["MetricSet"] = None) -> "MetricSet":
        """Attach (or create) a nested set under ``name``."""
        self._check_name(name)
        if child is None:
            child = MetricSet()
        self._children[name] = child
        return child

    # -- lookup ---------------------------------------------------------
    def get(self, path: str) -> Stat:
        """The stat at a dotted path; raises ``KeyError`` when absent."""
        head, __, rest = path.partition(SEPARATOR)
        if rest:
            child = self._children.get(head)
            if child is None:
                raise KeyError(f"unknown metric namespace {head!r} in "
                               f"path {path!r}")
            return child.get(rest)
        try:
            return self._stats[head]
        except KeyError:
            raise KeyError(f"unknown metric {path!r}; known: "
                           f"{', '.join(self.paths()) or '(none)'}"
                           ) from None

    def __contains__(self, path: str) -> bool:
        try:
            self.get(path)
        except KeyError:
            return False
        return True

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, Stat]]:
        """Yield ``(dotted path, stat)`` depth-first, insertion order."""
        for name, stat in self._stats.items():
            yield (f"{prefix}{name}", stat)
        for name, node in self._children.items():
            yield from node.walk(f"{prefix}{name}{SEPARATOR}")

    def paths(self) -> List[str]:
        return [path for path, __ in self.walk()]

    def children(self) -> Dict[str, "MetricSet"]:
        return dict(self._children)

    # -- views ----------------------------------------------------------
    def flatten(self, include_internal: bool = False) -> Dict[str, Any]:
        """Flat ``{dotted path: current value}`` dict.

        This is the JSONL-row view the :class:`~repro.experiments.
        store.ResultStore` persists; study sets keep their stats at the
        top level, so their flatten() output is key-for-key identical
        to the legacy flat dicts (differential-tested).
        """
        return {
            path: stat.value()
            for path, stat in self.walk()
            if include_internal or not stat.internal
        }

    def kinds(self, include_internal: bool = True) -> Dict[str, str]:
        """``{dotted path: stat kind}`` over the whole tree."""
        return {
            path: stat.kind
            for path, stat in self.walk()
            if include_internal or not stat.internal
        }

    def schema(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe ``{path: type descriptor}`` for offline delta
        computation (interval-telemetry artefacts)."""
        out: Dict[str, Dict[str, Any]] = {}
        for path, stat in self.walk():
            prefix = path[: len(path) - len(path.rpartition(SEPARATOR)[2])]
            out[path] = stat.schema(prefix)
        return out

    def snapshot(self, label: Any = None) -> "MetricSnapshot":
        """Point-in-time copy of every value (internal stats included)."""
        return MetricSnapshot(
            values={path: stat.value() for path, stat in self.walk()},
            label=label,
        )

    def delta(self, current: "MetricSnapshot",
              previous: Optional["MetricSnapshot"] = None
              ) -> Dict[str, Any]:
        """Typed interval delta between two snapshots of this set."""
        return delta_values(self.schema(), current.values,
                            previous.values if previous else None)

    # -- reconstruction -------------------------------------------------
    @classmethod
    def from_flat(cls, flat: Mapping[str, Any]) -> "MetricSet":
        """Rebuild a tree from a flat dict (e.g. a cached store row).

        Kinds are recovered with :func:`kind_of_value`, so the round
        trip is deterministic for cached and fresh results alike.
        """
        root = cls()
        for path, value in flat.items():
            parts = path.split(SEPARATOR)
            node = root
            for part in parts[:-1]:
                existing = node._children.get(part)
                node = existing if existing is not None else node.child(part)
            kind = kind_of_value(value)
            name = parts[-1]
            if kind == "counter":
                node.counter(name, value)
            elif kind == "gauge":
                node.gauge(name, value)
            elif kind == "distribution":
                node.distribution(name, dict(value))
            else:
                node.text(name, value)
        return root


class MetricSnapshot:
    """A labelled point-in-time copy of a :class:`MetricSet`'s values."""

    __slots__ = ("values", "label")

    def __init__(self, values: Dict[str, Any], label: Any = None) -> None:
        self.values = values
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricSnapshot label={self.label!r} " \
               f"({len(self.values)} stats)>"


def delta_values(
    schema: Mapping[str, Mapping[str, Any]],
    current: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Per-stat interval delta between two snapshot value dicts.

    Counters and distributions subtract (telescoping: consecutive
    deltas sum to end-of-run totals); ratios with counter references
    divide the *deltas* of those counters (an honest per-interval
    rate); everything else reports its current value.  ``schema`` is a
    :meth:`MetricSet.schema` dict — JSON-round-tripped artefact schemas
    work the same as live ones.
    """
    prev: Mapping[str, Any] = previous or {}
    out: Dict[str, Any] = {}
    for path, value in current.items():
        info = schema.get(path) or {"kind": kind_of_value(value)}
        kind = info.get("kind")
        if kind in CUMULATIVE_KINDS:
            if kind == "distribution":
                before = prev.get(path) or {}
                out[path] = {key: count - before.get(key, 0)
                             for key, count in value.items()}
            else:
                out[path] = value - prev.get(path, 0)
        elif (kind == "ratio" and "numerator" in info
              and "denominator" in info):
            num_path, den_path = info["numerator"], info["denominator"]
            if num_path in current and den_path in current:
                dden = current[den_path] - prev.get(den_path, 0)
                dnum = current[num_path] - prev.get(num_path, 0)
                out[path] = (dnum / dden if dden
                             else info.get("zero", 0.0))
            else:
                out[path] = value
        else:
            out[path] = value
    return out


@runtime_checkable
class MetricSource(Protocol):
    """Anything that can report its telemetry as a :class:`MetricSet`.

    Implemented by every stat-bearing structure in the repo:
    ``Cache``/``TLB``/``ProtectedCache``, ``RegisterFile``,
    ``Scheduler``, ``MemoryOrderBuffer``, ``BitBiasAccumulator``,
    ``BimodalPredictor``/``ProtectedBimodalPredictor``,
    ``TraceDrivenCore`` and ``PenelopeProcessor``.
    """

    def metrics(self) -> MetricSet:
        """A live metric tree reading this component's counters."""
        ...  # pragma: no cover - protocol stub
