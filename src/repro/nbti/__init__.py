"""NBTI physics substrate.

This subpackage models the device-level behaviour that the paper's
architectural techniques exploit:

- :mod:`repro.nbti.physics` — a reaction–diffusion model of interface-trap
  (N_IT) generation and recovery reproducing the saw-tooth of Figure 1.
- :mod:`repro.nbti.stress` — bookkeeping of per-node zero-signal residency
  ("duty cycle"), the quantity all architectural mechanisms try to balance.
- :mod:`repro.nbti.guardband` — the calibrated mapping from duty cycle to
  V_TH shift, cycle-time guardband and Vmin increase.
- :mod:`repro.nbti.transistor` — PMOS transistor descriptors (width class,
  circuit node binding) used by the gate-level aging simulator.
"""

from repro.nbti.physics import (
    ReactionDiffusionModel,
    StressPhase,
    simulate_waveform,
    steady_state_fill,
)
from repro.nbti.stress import BitCellStress, StressLedger
from repro.nbti.guardband import (
    GuardbandModel,
    DEFAULT_GUARDBAND_MODEL,
    MIN_GUARDBAND,
    WORST_GUARDBAND,
)
from repro.nbti.power import ArrayPowerModel
from repro.nbti.transistor import PMOSTransistor, WidthClass

__all__ = [
    "ReactionDiffusionModel",
    "StressPhase",
    "simulate_waveform",
    "steady_state_fill",
    "BitCellStress",
    "StressLedger",
    "GuardbandModel",
    "DEFAULT_GUARDBAND_MODEL",
    "MIN_GUARDBAND",
    "WORST_GUARDBAND",
    "ArrayPowerModel",
    "PMOSTransistor",
    "WidthClass",
]
