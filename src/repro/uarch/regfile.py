"""Physical register files with free lists and residency accounting.

The paper's register-file case study (Section 4.4) needs four things from
this model:

1. values written by the workload (to measure the baseline bit bias of
   Figure 6),
2. allocate/release timing (INT registers are free 54% of the time, FP
   69%),
3. write-port availability at release time (ports are found free 92% /
   86% of the time, so ISV updates are rarely discarded), and
4. a way for the NBTI mechanism to write special values into *free*
   entries through ports left idle by the workload.

Free entries keep their stale contents in the baseline — that is exactly
why biased data keeps stressing the same PMOS even when a register is
dead.

Timing contract
---------------
The trace-driven core computes event times uop-by-uop, so calls are
monotonic *per entry* but not globally (a release may carry a timestamp
later than the next uop's allocation).  The free list is therefore a heap
keyed by the time each entry becomes available: :meth:`allocate` only
hands out entries already free at the requested time, and
:meth:`next_free_time` tells a stalled caller how far to advance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:
    import numpy as np

from repro.metrics import MetricSet
from repro.uarch.bitbias import BitBiasAccumulator


@dataclass(frozen=True)
class RegisterFileStats:
    """End-of-run statistics of a register file."""

    entries: int
    width: int
    allocations: int
    releases: int
    special_writes: int
    discarded_special_writes: int
    free_fraction: float
    port_free_fraction: float
    bias_to_zero: "np.ndarray"
    worst_bias: float

    @property
    def worst_imbalance(self) -> float:
        """Distance of the worst aggregated bit from the 50% optimum."""
        return self.worst_bias - 0.5


class RegisterFile:
    """A physical register file with an availability-ordered free list.

    Parameters
    ----------
    entries:
        Number of physical registers.
    width:
        Bits per register (32 INT / 80 FP).
    write_ports:
        Number of write ports; mechanism writes may only use a port left
        idle by the workload in the same cycle.
    """

    def __init__(
        self,
        entries: int = 64,
        width: int = 32,
        write_ports: int = 4,
        name: str = "regfile",
        initial_value: int = 0,
    ) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if write_ports <= 0:
            raise ValueError("write_ports must be positive")
        self.name = name
        self.entries = entries
        self.width = width
        self.write_ports = write_ports
        self.bias = BitBiasAccumulator(entries, width, initial_value)
        self._init_run_state()

    def _init_run_state(self) -> None:
        entries = self.entries
        # (available_time, tiebreak, entry); FIFO tiebreak keeps reuse fair.
        self._free: List[Tuple[float, int, int]] = [
            (0.0, i, i) for i in range(entries)
        ]
        heapq.heapify(self._free)
        self._counter = entries
        self._busy = [False] * entries
        self._busy_since = [0.0] * entries
        self._busy_time = 0.0
        self._allocations = 0
        self._releases = 0
        self._special_writes = 0
        self._discarded_special = 0
        #: cycle -> number of workload writes performed in that cycle
        self._port_use: Dict[int, int] = {}
        self._port_checks = 0
        self._port_free_hits = 0
        self._horizon = 0.0

    def reset(self) -> None:
        """Restore the freshly-constructed state (reusable across runs)."""
        self.bias.reset()
        self._init_run_state()

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------
    def allocate(self, now: float) -> Optional[int]:
        """Take a register free at time ``now`` (None when none is)."""
        if not self._free or self._free[0][0] > now:
            return None
        __, __, entry = heapq.heappop(self._free)
        self._busy[entry] = True
        self._busy_since[entry] = now
        self._allocations += 1
        self._horizon = max(self._horizon, now)
        return entry

    def next_free_time(self) -> Optional[float]:
        """Earliest time an entry becomes available (None if all busy)."""
        if not self._free:
            return None
        return self._free[0][0]

    def write(self, entry: int, value: int, now: float) -> None:
        """Workload write through a regular port."""
        self._check_entry(entry)
        self._use_port(now)
        self.bias.set_value(entry, value, now)
        self._horizon = max(self._horizon, now)

    def read(self, entry: int) -> int:
        self._check_entry(entry)
        return self.bias.current_value(entry)

    def release(self, entry: int, now: float) -> None:
        """Return a register to the free list; contents remain (stale)."""
        self._check_entry(entry)
        if not self._busy[entry]:
            raise ValueError(f"register {entry} is not busy")
        self._busy[entry] = False
        self._busy_time += now - self._busy_since[entry]
        self._counter += 1
        heapq.heappush(self._free, (now, self._counter, entry))
        self._releases += 1
        self._horizon = max(self._horizon, now)

    # ------------------------------------------------------------------
    # Mechanism interface (NBTI special writes)
    # ------------------------------------------------------------------
    def port_available(self, now: float) -> bool:
        """Whether a write port is idle in the cycle containing ``now``."""
        self._port_checks += 1
        free = self._port_use.get(int(now), 0) < self.write_ports
        if free:
            self._port_free_hits += 1
        return free

    def write_special(self, entry: int, value: int, now: float) -> bool:
        """Mechanism write into a *free* entry through an idle port.

        Returns False (and discards the update, as Section 4.4 allows)
        when no port is available or the entry is busy.
        """
        self._check_entry(entry)
        if self._busy[entry] or not self.port_available(now):
            self._discarded_special += 1
            return False
        self._use_port(now)
        self.bias.set_value(entry, value, now)
        self._special_writes += 1
        return True

    def is_busy(self, entry: int) -> bool:
        self._check_entry(entry)
        return self._busy[entry]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def finalize(self, now: Optional[float] = None) -> RegisterFileStats:
        """Close all intervals and produce statistics."""
        end = max(now if now is not None else 0.0, self._horizon)
        for entry in range(self.entries):
            if self._busy[entry]:
                self._busy_time += end - self._busy_since[entry]
                self._busy_since[entry] = end
        self.bias.finalize(end)
        total_time = end * self.entries
        free_fraction = (
            1.0 - self._busy_time / total_time if total_time > 0.0 else 1.0
        )
        port_free = (
            self._port_free_hits / self._port_checks
            if self._port_checks else 1.0
        )
        return RegisterFileStats(
            entries=self.entries,
            width=self.width,
            allocations=self._allocations,
            releases=self._releases,
            special_writes=self._special_writes,
            discarded_special_writes=self._discarded_special,
            free_fraction=free_fraction,
            port_free_fraction=port_free,
            bias_to_zero=self.bias.bias_to_zero(),
            worst_bias=self.bias.worst_bias(),
        )

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        """Live metric tree (no interval-closing: reads never mutate,
        unlike :meth:`finalize`)."""
        ms = MetricSet()
        ms.counter("allocations", read=lambda: self._allocations)
        ms.counter("releases", read=lambda: self._releases)
        ms.counter("special_writes", read=lambda: self._special_writes)
        ms.counter("discarded_special_writes",
                   read=lambda: self._discarded_special)
        ms.counter("port_checks", read=lambda: self._port_checks)
        ms.counter("port_free_hits", read=lambda: self._port_free_hits)
        ms.ratio("port_free_fraction", numerator="port_free_hits",
                 denominator="port_checks", zero=1.0,
                 help="no checks yet means every port is free "
                      "(finalize()'s convention)")
        ms.child("bias", self.bias.metrics())
        return ms

    # ------------------------------------------------------------------
    def _use_port(self, now: float) -> None:
        cycle = int(now)
        self._port_use[cycle] = self._port_use.get(cycle, 0) + 1

    def _check_entry(self, entry: int) -> None:
        if not 0 <= entry < self.entries:
            raise IndexError(f"register index out of range: {entry}")
