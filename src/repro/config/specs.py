"""Typed, serialisable processor/protection/workload/study specs.

One declarative configuration surface for everything the repo can
construct.  Every entry point used to hand-assemble ``CoreConfig``,
``CacheConfig``, TLB geometry and protection mechanisms with duplicated
code; these dataclasses replace that with specs that

- carry the paper's default values (the Core(tm)-like configuration of
  Section 4.1 and the Section 4 mechanism parameters),
- round-trip through ``to_dict()`` / ``from_dict()`` / JSON bit-exactly,
- validate eagerly, raising :class:`SpecError` with the offending path
  and the valid alternatives on unknown keys, unknown mechanism names,
  unknown mechanism parameters, or impossible geometry.

Construction from a spec happens in :mod:`repro.api` (``build_core``,
``build_penelope``, ``run_study``); mechanism names resolve through the
string-keyed registries in :mod:`repro.config.registry`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

if TYPE_CHECKING:
    from repro.uarch.core import CoreConfig

from repro.uarch.cache import CacheConfig
from repro.uarch.ports import AdderPolicy
from repro.uarch.tlb import TLBConfig
from repro.workloads import suite_names


class SpecError(ValueError):
    """A spec could not be validated or deserialised."""


#: Sentinel for "this spec field path does not exist / is unset".
MISSING = object()


def _type_name(value: Any) -> str:
    return type(value).__name__


def _freeze_value(value: Any) -> Any:
    """Canonicalise a parameter value: lists become tuples, recursively.

    Keeps spec equality independent of whether a value arrived as a
    Python tuple or a JSON array (JSON has no tuples).
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _freeze_value(v) for k, v in value.items()}
    return value


def _thaw_value(value: Any) -> Any:
    """Inverse of :func:`_freeze_value` for JSON emission."""
    if isinstance(value, tuple):
        return [_thaw_value(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _thaw_value(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class Spec:
    """Base class: dict/JSON round-trip with strict key validation."""

    #: Field name -> nested Spec subclass, for recursive ``from_dict``.
    _NESTED: ClassVar[Mapping[str, type]] = {}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], path: str = "") -> "Spec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        where = path or cls.__name__
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"{where}: expected a mapping, got {_type_name(payload)}"
            )
        names = [f.name for f in dataclasses.fields(cls)]
        unknown = sorted(set(payload) - set(names))
        if unknown:
            raise SpecError(
                f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(names)}"
            )
        kwargs: Dict[str, Any] = {}
        for name in names:
            if name not in payload:
                continue
            value = payload[name]
            nested = cls._NESTED.get(name)
            if nested is not None:
                # No nested field is nullable: a JSON null here would
                # silently skip the nested spec's validation and crash
                # later with a raw AttributeError.
                if value is None:
                    raise SpecError(
                        f"{where}.{name}: must be a {nested.__name__} "
                        f"mapping, not null (omit the key to use the "
                        f"defaults)"
                    )
                value = nested.from_dict(
                    value, path=f"{where}.{name}" if path else name
                )
            kwargs[name] = value
        try:
            return cls(**kwargs)
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(f"{where}: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-types rendering (tuples become lists)."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Spec):
                out[f.name] = value.to_dict()
            else:
                out[f.name] = _thaw_value(value)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Spec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON for {cls.__name__}: {exc}") from exc
        return cls.from_dict(payload)

    def replace(self, **changes: Any) -> "Spec":
        """``dataclasses.replace`` that re-runs validation."""
        return dataclasses.replace(self, **changes)


def _set(spec: Spec, name: str, value: Any) -> None:
    object.__setattr__(spec, name, value)


def _require_positive(where: str, **values: Any) -> None:
    for name, value in values.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            raise SpecError(
                f"{where}: {name} must be a positive number, got {value!r}"
            )


# ----------------------------------------------------------------------
# Structure geometry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheGeometrySpec(Spec):
    """DL0 geometry in the units the paper quotes (KB, ways).

    Examples
    --------
    >>> CacheGeometrySpec().to_cache_config().name
    'DL0-32K-8w'
    """

    size_kb: int = 32
    ways: int = 8
    line_bytes: int = 64

    def __post_init__(self) -> None:
        _require_positive("cache geometry", size_kb=self.size_kb,
                          ways=self.ways, line_bytes=self.line_bytes)
        size_bytes = self.size_kb * 1024
        if size_bytes % (self.ways * self.line_bytes):
            raise SpecError(
                f"impossible cache geometry: {self.size_kb} KB is not "
                f"divisible into {self.ways} ways of {self.line_bytes}-byte "
                f"lines ({size_bytes} % {self.ways * self.line_bytes} != 0)"
            )

    def to_cache_config(self, prefix: str = "DL0") -> CacheConfig:
        return CacheConfig(
            name=f"{prefix}-{self.size_kb}K-{self.ways}w",
            size_bytes=self.size_kb * 1024,
            ways=self.ways,
            line_bytes=self.line_bytes,
        )


@dataclass(frozen=True)
class TLBGeometrySpec(Spec):
    """DTLB geometry in entries.

    Examples
    --------
    >>> TLBGeometrySpec().to_tlb_config().name
    'DTLB-128'
    """

    entries: int = 128
    ways: int = 8
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        _require_positive("TLB geometry", entries=self.entries,
                          ways=self.ways, page_bytes=self.page_bytes)
        if self.entries % self.ways:
            raise SpecError(
                f"impossible TLB geometry: {self.entries} entries are not "
                f"divisible into {self.ways} ways"
            )

    def to_tlb_config(self) -> TLBConfig:
        return TLBConfig(
            name=f"DTLB-{self.entries}",
            entries=self.entries,
            ways=self.ways,
            page_bytes=self.page_bytes,
        )


# ----------------------------------------------------------------------
# Processor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessorSpec(Spec):
    """The trace-driven core, declaratively (Section 4.1 defaults).

    ``to_core_config()`` converts to the runtime
    :class:`~repro.uarch.core.CoreConfig`; a default spec converts to a
    config identical to ``CoreConfig()``.
    """

    _NESTED: ClassVar[Mapping[str, type]] = {
        "dl0": CacheGeometrySpec,
        "dtlb": TLBGeometrySpec,
    }

    alloc_width: int = 4
    issue_width: int = 6
    retire_width: int = 4
    rob_entries: int = 96
    redirect_penalty: int = 6
    int_regs: int = 128
    fp_regs: int = 32
    scheduler_entries: int = 32
    regfile_write_ports: int = 4
    n_adders: int = 4
    adder_policy: str = "uniform"
    mob_entries: int = 64
    dl0: CacheGeometrySpec = field(default_factory=CacheGeometrySpec)
    dtlb: TLBGeometrySpec = field(default_factory=TLBGeometrySpec)
    dl0_miss_penalty: int = 6
    dtlb_miss_penalty: int = 20
    seed: int = 0
    #: Kernel backend simulating the cache-like structures; validated
    #: against ``KERNEL_BACKENDS`` in :mod:`repro.config.registry`.
    backend: str = "reference"

    def __post_init__(self) -> None:
        _require_positive(
            "processor spec",
            alloc_width=self.alloc_width,
            issue_width=self.issue_width,
            retire_width=self.retire_width,
            rob_entries=self.rob_entries,
            int_regs=self.int_regs,
            fp_regs=self.fp_regs,
            scheduler_entries=self.scheduler_entries,
            regfile_write_ports=self.regfile_write_ports,
            n_adders=self.n_adders,
            mob_entries=self.mob_entries,
        )
        choices = [p.value for p in AdderPolicy]
        if self.adder_policy not in choices:
            raise SpecError(
                f"unknown adder_policy {self.adder_policy!r}; choose from "
                f"{', '.join(choices)}"
            )
        from repro.uarch.backends import backend_names

        if self.backend not in backend_names():
            raise SpecError(
                f"unknown kernel backend {self.backend!r}; choose from "
                f"{', '.join(backend_names())}"
            )

    def to_core_config(self) -> "CoreConfig":
        from repro.uarch.core import CoreConfig

        return CoreConfig(
            alloc_width=self.alloc_width,
            issue_width=self.issue_width,
            retire_width=self.retire_width,
            rob_entries=self.rob_entries,
            redirect_penalty=self.redirect_penalty,
            int_regs=self.int_regs,
            fp_regs=self.fp_regs,
            scheduler_entries=self.scheduler_entries,
            regfile_write_ports=self.regfile_write_ports,
            n_adders=self.n_adders,
            adder_policy=AdderPolicy(self.adder_policy),
            mob_entries=self.mob_entries,
            dl0=self.dl0.to_cache_config(),
            dtlb=self.dtlb.to_tlb_config(),
            dl0_miss_penalty=self.dl0_miss_penalty,
            dtlb_miss_penalty=self.dtlb_miss_penalty,
            seed=self.seed,
            backend=self.backend,
        )


# ----------------------------------------------------------------------
# Protection mechanisms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MechanismSpec(Spec):
    """One protection mechanism chosen by registry name, with params.

    Which names are valid depends on the structure the mechanism guards;
    :class:`ProtectionSpec` validates each slot against the matching
    registry in :mod:`repro.config.registry`.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpecError(
                f"mechanism name must be a non-empty string, "
                f"got {self.name!r}"
            )
        if not isinstance(self.params, Mapping):
            raise SpecError(
                f"mechanism {self.name!r}: params must be a mapping, "
                f"got {_type_name(self.params)}"
            )
        _set(self, "params", _freeze_value(dict(self.params)))


def _default_mechanism(
    name: str, **params: Any
) -> Callable[[], "MechanismSpec"]:
    return lambda: MechanismSpec(name, params)


@dataclass(frozen=True)
class ProtectionSpec(Spec):
    """Per-structure NBTI mechanisms, chosen by name (Sections 3-4).

    Defaults are the full Penelope configuration: idle-input injection on
    the adder, ISV on both register files, the profiling-derived field
    policy on the scheduler, and LineFixed50% inversion on DL0 and DTLB.
    Set a slot to ``{"name": "none"}`` to leave that structure
    unprotected.
    """

    _NESTED: ClassVar[Mapping[str, type]] = {
        "adder": MechanismSpec,
        "int_rf": MechanismSpec,
        "fp_rf": MechanismSpec,
        "scheduler": MechanismSpec,
        "dl0": MechanismSpec,
        "dtlb": MechanismSpec,
    }

    adder: MechanismSpec = field(
        default_factory=_default_mechanism("idle_injection", pair=(1, 8)))
    int_rf: MechanismSpec = field(default_factory=_default_mechanism("isv"))
    fp_rf: MechanismSpec = field(default_factory=_default_mechanism("isv"))
    scheduler: MechanismSpec = field(
        default_factory=_default_mechanism("derived_policy"))
    dl0: MechanismSpec = field(
        default_factory=_default_mechanism("line_fixed", ratio=0.5))
    dtlb: MechanismSpec = field(
        default_factory=_default_mechanism("line_fixed", ratio=0.5))
    sample_period: float = 512.0

    def __post_init__(self) -> None:
        from repro.config.registry import registry_for_structure

        _require_positive("protection spec",
                          sample_period=self.sample_period)
        for structure in ("adder", "int_rf", "fp_rf", "scheduler",
                          "dl0", "dtlb"):
            mechanism = getattr(self, structure)
            registry_for_structure(structure).validate(
                mechanism.name, mechanism.params,
                where=f"protection.{structure}",
            )


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec(Spec):
    """Which Table 1 suites to synthesise, and how much of them.

    ``interleave`` turns the suites into a *multiprogram* scenario: the
    per-suite streams merge slice by slice (see
    :mod:`repro.workloads.multiprog`) instead of running one after
    another.  ``"none"`` (the default) keeps the single-program
    behaviour; ``slice_length`` is the references-per-program slice used
    by the interleaving policies.
    """

    suites: Tuple[str, ...] = ("specint2000",)
    length: int = 5000
    traces_per_suite: int = 1
    seed: int = 0
    interleave: str = "none"
    slice_length: int = 64

    def __post_init__(self) -> None:
        from repro.workloads.multiprog import INTERLEAVE_POLICIES

        _set(self, "suites", _freeze_value(self.suites))
        if not self.suites:
            raise SpecError("workload spec: suites must not be empty")
        known = suite_names()
        bad = [s for s in self.suites if s not in known]
        if bad:
            raise SpecError(
                f"unknown suite(s) {', '.join(map(repr, bad))}; "
                f"available: {', '.join(known)}"
            )
        _require_positive("workload spec", length=self.length,
                          traces_per_suite=self.traces_per_suite,
                          slice_length=self.slice_length)
        choices = ("none",) + tuple(INTERLEAVE_POLICIES)
        if self.interleave not in choices:
            raise SpecError(
                f"unknown interleave policy {self.interleave!r}; "
                f"choose from {', '.join(choices)}"
            )


# ----------------------------------------------------------------------
# Study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StudySpec(Spec):
    """A registered study expressed over the spec surface.

    ``sweep`` axes are *spec field paths* (``"protection.dl0.params.
    ratio"``, ``"processor.dl0.size_kb"``, ...) — the paths each study
    binds via its ``spec_paths`` declaration in
    :mod:`repro.experiments.registry` — or bare study parameter names
    for knobs with no spec home (``"data_bias"``, ``"target"``).
    ``overrides`` sets such bare parameters without sweeping them.

    :func:`repro.api.run_study` expands this into the experiment
    engine's :class:`~repro.experiments.spec.SweepSpec`, so spec-driven
    and legacy flat-parameter sweeps produce identical points (and share
    the result cache).
    """

    _NESTED: ClassVar[Mapping[str, type]] = {
        "processor": ProcessorSpec,
        "protection": ProtectionSpec,
        "workload": WorkloadSpec,
    }

    study: str
    processor: ProcessorSpec = field(default_factory=ProcessorSpec)
    protection: ProtectionSpec = field(default_factory=ProtectionSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    sweep: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    overrides: Mapping[str, Any] = field(default_factory=dict)
    workers: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.study, str) or not self.study:
            raise SpecError(
                f"study name must be a non-empty string, got {self.study!r}"
            )
        if not isinstance(self.sweep, Mapping):
            raise SpecError(
                f"sweep must be a mapping of field path -> values, "
                f"got {_type_name(self.sweep)}"
            )
        frozen: Dict[str, Tuple[Any, ...]] = {}
        for axis, values in self.sweep.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(
                    f"sweep axis {axis!r} must be a non-empty sequence "
                    f"of values, got {values!r}"
                )
            frozen[str(axis)] = _freeze_value(values)
        _set(self, "sweep", frozen)
        if not isinstance(self.overrides, Mapping):
            raise SpecError(
                f"overrides must be a mapping of study parameter -> "
                f"value, got {_type_name(self.overrides)}"
            )
        _set(self, "overrides", _freeze_value(dict(self.overrides)))
        _require_positive("study spec", workers=self.workers)


# ----------------------------------------------------------------------
# Spec field paths
# ----------------------------------------------------------------------
def resolve_path(spec: Any, path: str) -> Any:
    """Read a dotted field path; :data:`MISSING` when it does not exist.

    Attribute segments traverse dataclass fields; mapping segments (the
    ``params`` dicts) traverse keys.
    """
    current = spec
    for segment in path.split("."):
        if isinstance(current, Mapping):
            if segment not in current:
                return MISSING
            current = current[segment]
        elif dataclasses.is_dataclass(current) and hasattr(current, segment):
            current = getattr(current, segment)
        else:
            return MISSING
    return current


def _leaf_values(value: Any, prefix: str, out: Dict[str, Any]) -> None:
    if isinstance(value, Spec):
        for f in dataclasses.fields(value):
            _leaf_values(getattr(value, f.name), f"{prefix}{f.name}.",
                         out)
    elif isinstance(value, Mapping):
        for key, entry in value.items():
            _leaf_values(entry, f"{prefix}{key}.", out)
    else:
        out[prefix[:-1]] = value


def spec_differences(lhs: Any, rhs: Any) -> List[str]:
    """Dotted leaf paths where two specs of the same shape differ.

    A path present on one side only (e.g. a mechanism parameter the
    other side's scheme does not carry) counts as a difference.
    """
    left: Dict[str, Any] = {}
    right: Dict[str, Any] = {}
    _leaf_values(lhs, "", left)
    _leaf_values(rhs, "", right)
    return sorted(
        path for path in set(left) | set(right)
        if left.get(path, MISSING) != right.get(path, MISSING)
    )


def with_path(spec: Spec, path: str, value: Any) -> Any:
    """Return a copy of ``spec`` with one dotted field path replaced.

    Validation re-runs on every touched spec level, so an update that
    produces an impossible configuration raises :class:`SpecError`.
    """
    head, _, rest = path.partition(".")
    if isinstance(spec, Mapping):
        updated = dict(spec)
        if rest:
            if head not in updated:
                raise SpecError(
                    f"cannot set {path!r}: no entry {head!r} "
                    f"(available: {', '.join(sorted(map(str, updated)))})"
                )
            updated[head] = with_path(updated[head], rest, value)
        else:
            updated[head] = _freeze_value(value)
        return updated
    if not dataclasses.is_dataclass(spec) or not hasattr(spec, head):
        valid = ([f.name for f in dataclasses.fields(spec)]
                 if dataclasses.is_dataclass(spec) else [])
        raise SpecError(
            f"cannot set {path!r}: {type(spec).__name__} has no field "
            f"{head!r}" + (f"; valid fields: {', '.join(valid)}"
                           if valid else "")
        )
    if rest:
        replacement = with_path(getattr(spec, head), rest, value)
    else:
        replacement = _freeze_value(value)
    return dataclasses.replace(spec, **{head: replacement})


__all__ = [
    "MISSING",
    "CacheGeometrySpec",
    "MechanismSpec",
    "ProcessorSpec",
    "ProtectionSpec",
    "Spec",
    "SpecError",
    "StudySpec",
    "TLBGeometrySpec",
    "WorkloadSpec",
    "resolve_path",
    "spec_differences",
    "with_path",
]
