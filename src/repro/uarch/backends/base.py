"""The kernel-backend contract: how simulation engines plug in.

A *kernel backend* owns the innermost simulation loops — cache/TLB tag
replay and the NBTI stress/recovery arithmetic — behind a small factory
surface, so the rest of the stack (cores, schemes, studies, sweeps) can
select an engine per run without knowing its data layout.

The contract has two halves:

- **Structure factories** (:meth:`KernelBackend.make_cache`,
  :meth:`KernelBackend.make_tlb`) return objects implementing the full
  scalar :class:`~repro.uarch.backends.reference.Cache` surface:
  geometry setup, per-access ``access``/``probe``, batched ``replay``,
  the victim/invert/shadow queries the inversion schemes drive
  (``victim_way`` / ``invert_candidate`` / ``shadow_candidate`` /
  ``invert_line`` / ``set_shadow`` / counters), plus ``reset()`` and
  the ``metrics()`` tree.  A backend may accelerate any subset of that
  surface, but every operation must stay **bit-identical** to the
  reference backend — the differential oracle
  (``tests/test_backends.py``) compares ``metrics().flatten()`` and
  full line-state snapshots, not tolerances.

- **Batched NBTI kernels** (:meth:`KernelBackend.nbti_stress`,
  :meth:`KernelBackend.nbti_relax`,
  :meth:`KernelBackend.steady_state_fill_many`) evaluate the
  reaction-diffusion update for many nodes at once.  Bit-exactness is
  achieved by construction: the scalar ``exp`` decay factor is computed
  once (``math.exp``, never an elementwise libm variant) and the
  remaining per-node arithmetic is two IEEE-exact multiply/subtract
  steps identical in both backends.

Batch-granularity rule: backends may reorder *work* inside one
``replay``/kernel call (e.g. process the k-th access of every set in
one array op) but never the *observable effects* — per-set access
order, LRU movement, and counter totals must match a scalar in-order
execution of the same call.  Anything coupled to the global access
order through a shared RNG (the line-granularity schemes) must take
the scalar path; see DESIGN.md section 10.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, List, Sequence

if TYPE_CHECKING:  # imports for annotations only: avoids import cycles
    from repro.uarch.backends.reference import Cache, CacheConfig
    from repro.uarch.tlb import TLB, TLBConfig


class KernelBackend(abc.ABC):
    """One pluggable simulation engine (see module docstring)."""

    __slots__ = ()

    #: Registry name (``"reference"``, ``"vectorized"``, ...).
    name: ClassVar[str] = ""

    # -- structure factories -------------------------------------------
    @abc.abstractmethod
    def make_cache(self, config: "CacheConfig") -> "Cache":
        """A cache instance for ``config`` (full scalar surface)."""

    @abc.abstractmethod
    def make_tlb(self, config: "TLBConfig") -> "TLB":
        """A TLB instance for ``config`` (full scalar surface)."""

    # -- batched NBTI kernels ------------------------------------------
    @abc.abstractmethod
    def nbti_stress(self, nits: Sequence[float], n_max: float,
                    k_stress: float, duration: float) -> List[float]:
        """Interface-trap counts after ``duration`` of stress, per node."""

    @abc.abstractmethod
    def nbti_relax(self, nits: Sequence[float], k_relax: float,
                   duration: float) -> List[float]:
        """Interface-trap counts after ``duration`` of recovery, per node."""

    @abc.abstractmethod
    def steady_state_fill_many(
        self, duties: Sequence[float], recovery_ratio: float = 9.0,
    ) -> List[float]:
        """Steady-state trap fill fraction for each duty factor."""
