"""Simulation-kernel hot-path performance (tracked since PR 2).

Measures µs/access of the cache replay under each inversion scheme, the
trace-driven core's replay throughput, and (since PR 4) the trace-IO
path — v1 JSONL vs the packed v2 format, save/load/stream — and writes
the numbers as JSON artefacts so the perf trajectory is visible across
commits.

Reference point (PR 2's motivating bug): before the O(1) INVCOUNT /
shadow counters, `LineFixed50%` replay cost ~107 µs/access against a
~7 µs/access baseline (15x), because `maintain()` rescanned all
sets x ways lines on every access.  After the overhaul the protected
replay must stay within a small constant factor of the baseline.
"""

import os
import random
import tempfile
import time

import pytest

from repro.analysis import format_series, format_table
from repro.core.cache_like import (
    LineDynamicScheme,
    LineFixedScheme,
    ProtectedCache,
    SetFixedScheme,
)
from repro.metrics import IntervalTelemetry
from repro.uarch import TraceDrivenCore
from repro.uarch.cache import Cache, CacheConfig
from repro.workloads import TraceGenerator

from conftest import SMOKE, scaled, write_result

#: Uniform random addresses over a footprint >> cache size: the
#: miss-heavy worst case that made the INVCOUNT rescan pathological.
STREAM_LENGTH = scaled(200_000, floor=5_000)
TRACE_LENGTH = scaled(20_000, floor=2_000)

#: Pre-overhaul measurement on the reference machine (see module doc).
PRE_PR_LINE_FIXED_US = 107.0

#: Protected replay must stay within this factor of the baseline
#: (pre-overhaul it was 15x; post-overhaul ~2x — 6x leaves headroom
#: for noisy CI machines while still catching an O(lines) regression).
MAX_PROTECTED_OVERHEAD = 6.0

#: Interval-telemetry collection (chunked replay + periodic MetricSet
#: snapshots) must stay within this fraction of the plain seed-counter
#: replay — the metrics API is pull-based, so the hot path pays only
#: chunk bookkeeping, not per-access instrumentation.
MAX_METRICS_OVERHEAD = 0.05

#: The execution tracer (PR 6) gates: disabled it is one attribute
#: test per replay call (<1% on the seed-counter replay), enabled it
#: records one span per chunk, never per access (<5%).
MAX_TRACE_DISABLED_OVERHEAD = 0.01
MAX_TRACE_ENABLED_OVERHEAD = 0.05

#: Accesses per traced chunk in the overhead bench — the same batch
#: granularity the sweep runner traces at.
TRACE_CHUNK = 2_000

CONFIG = CacheConfig(name="DL0-32K-8w", size_bytes=32 * 1024, ways=8)


def uniform_stream(length: int, seed: int = 42):
    rng = random.Random(seed)
    line_bytes = CONFIG.line_bytes
    return [rng.randrange(1 << 20) * line_bytes for __ in range(length)]


def us_per_access(target, stream) -> float:
    start = time.perf_counter()
    target.replay(stream)
    return (time.perf_counter() - start) * 1e6 / len(stream)


def run_kernel_perf():
    stream = uniform_stream(STREAM_LENGTH)
    timings = {
        "baseline": us_per_access(Cache(CONFIG), stream),
        "SetFixed50%": us_per_access(
            ProtectedCache(Cache(CONFIG), SetFixedScheme(0.5)), stream),
        "LineFixed50%": us_per_access(
            ProtectedCache(Cache(CONFIG), LineFixedScheme(0.5)), stream),
        "LineDynamic60%": us_per_access(
            ProtectedCache(Cache(CONFIG), LineDynamicScheme(0.6)), stream),
    }

    trace = TraceGenerator(seed=7).generate("specint2000",
                                            length=TRACE_LENGTH)
    core = TraceDrivenCore()
    start = time.perf_counter()
    first = core.run(trace)
    core_elapsed = time.perf_counter() - start
    second = core.run(trace)  # reusable-core check rides along
    throughput = len(trace) / core_elapsed
    return timings, throughput, first, second


def _best_of(n, func, *args):
    """Minimum wall time of ``n`` calls (noise-resistant CI timing)."""
    best = float("inf")
    for __ in range(n):
        start = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - start)
    return best


def run_traceio_perf():
    from repro.uarch.traceio import load_trace, save_trace, stream_trace

    trace = TraceGenerator(seed=11).generate("specint2000",
                                             length=TRACE_LENGTH)
    with tempfile.TemporaryDirectory() as tmp:
        v1 = os.path.join(tmp, "trace_v1.jsonl")
        v2 = os.path.join(tmp, "trace_v2.jsonl")
        save_v1 = _best_of(3, save_trace, trace, v1, 1)
        save_v2 = _best_of(3, save_trace, trace, v2)
        sizes = {"v1": os.path.getsize(v1), "v2": os.path.getsize(v2)}
        load_v1 = _best_of(3, load_trace, v1)
        load_v2 = _best_of(3, load_trace, v2)
        stream_v2 = _best_of(3, lambda p: sum(1 for __ in stream_trace(p)),
                             v2)
        # Correctness rides along: both formats restore the same trace.
        assert len(load_trace(v1)) == len(load_trace(v2)) == len(trace)
    return {
        "uops": len(trace),
        "bytes": sizes,
        "save_s": {"v1": save_v1, "v2": save_v2},
        "load_s": {"v1": load_v1, "v2": load_v2},
        "stream_v2_s": stream_v2,
    }


def test_perf_traceio(benchmark):
    """v2 packed trace files must stay smaller AND faster to load."""
    perf = benchmark.pedantic(run_traceio_perf, rounds=1, iterations=1)

    # The size cut is scale-independent: the packed records drop every
    # repeated key, so v2 regressing above ~2/3 of v1 means the format
    # rotted back towards objects.
    assert perf["bytes"]["v2"] * 1.5 < perf["bytes"]["v1"], perf
    # Load-time ordering is only stable with enough records to time.
    if perf["uops"] >= 2000:
        assert perf["load_s"]["v2"] < perf["load_s"]["v1"], perf

    rows = [
        ["v1 JSONL", f"{perf['bytes']['v1']:,}",
         f"{perf['save_s']['v1'] * 1e3:.1f}",
         f"{perf['load_s']['v1'] * 1e3:.1f}"],
        ["v2 packed", f"{perf['bytes']['v2']:,}",
         f"{perf['save_s']['v2'] * 1e3:.1f}",
         f"{perf['load_s']['v2'] * 1e3:.1f}"],
        ["v2 stream_trace", "-", "-",
         f"{perf['stream_v2_s'] * 1e3:.1f}"],
    ]
    text = format_table(
        ["format", "bytes", "save ms", "load ms"], rows,
        title=f"trace-IO perf ({perf['uops']} uops per trace file)",
    )
    text += (f"\nv2 size {perf['bytes']['v2'] / perf['bytes']['v1']:.2f}x"
             f" of v1; v2 load "
             f"{perf['load_s']['v1'] / max(perf['load_s']['v2'], 1e-9):.2f}x"
             f" faster")
    write_result("perf_traceio.txt", text, data={**perf, "smoke": SMOKE})


def run_metrics_overhead():
    """Plain replay vs interval-telemetry replay of the same stream."""
    stream = uniform_stream(STREAM_LENGTH, seed=43)
    every = max(2_000, STREAM_LENGTH // 10)

    def plain():
        Cache(CONFIG).replay(stream)

    last = {}

    def instrumented():
        telemetry = IntervalTelemetry(Cache(CONFIG), every=every)
        telemetry.replay(stream)
        # runs are deterministic, so the last timed run's telemetry
        # doubles as the correctness/artefact sample for free.
        last["telemetry"] = telemetry

    plain_s = _best_of(5, plain)
    instrumented_s = _best_of(5, instrumented)
    reference = Cache(CONFIG)
    reference.replay(stream)
    return plain_s, instrumented_s, last["telemetry"], reference


def test_perf_metrics_overhead(benchmark):
    """Interval telemetry must cost <5% over the seed counters."""
    plain_s, instrumented_s, telemetry, reference = benchmark.pedantic(
        run_metrics_overhead, rounds=1, iterations=1
    )
    overhead = instrumented_s / plain_s - 1.0

    # Correctness rides along: the chunked, snapshotting replay is
    # bit-identical to one replay call, interval deltas telescope to
    # the end-of-run totals, and a streaming run yields >= 2 intervals.
    totals = telemetry.totals()
    assert totals["misses"] == reference.stats.misses
    assert totals["hits"] == reference.stats.hits
    deltas = telemetry.deltas()
    assert len(deltas) >= 2
    assert sum(d["misses"] for d in deltas) == reference.stats.misses

    # The 5% gate only means anything on full-size, non-smoke timing.
    if not SMOKE and STREAM_LENGTH >= 100_000:
        assert overhead < MAX_METRICS_OVERHEAD, (
            f"metrics collection costs {overhead:.1%} on the hot "
            f"replay path (plain {plain_s:.4f}s vs instrumented "
            f"{instrumented_s:.4f}s)"
        )

    text = format_table(
        ["target", "seconds", "vs plain"],
        [
            ["plain replay", f"{plain_s:.4f}", "1.00x"],
            ["interval telemetry", f"{instrumented_s:.4f}",
             f"{instrumented_s / plain_s:.2f}x"],
        ],
        title=(f"metrics-collection overhead ({STREAM_LENGTH} accesses, "
               f"{len(telemetry.snapshots)} snapshots)"),
    )
    text += "\n\n" + format_series(
        {k: float(v) for k, v in telemetry.series("misses").items()},
        title="dl0 misses per interval", percent=False,
    )
    write_result("perf_metrics_intervals.txt", text, data={
        "stream_length": STREAM_LENGTH,
        "plain_s": plain_s,
        "instrumented_s": instrumented_s,
        "overhead_frac": overhead,
        "telemetry": telemetry.to_payload(),
        "smoke": SMOKE,
    })


def run_trace_overhead():
    """Chunked seed-counter replay, three ways: untraced, traced-but-
    disabled, traced-and-enabled.  Identical chunk lists, so the only
    difference between the drivers is the tracer itself."""
    from repro.obs.trace import TRACER

    stream = uniform_stream(STREAM_LENGTH, seed=44)
    chunks = [stream[i:i + TRACE_CHUNK]
              for i in range(0, len(stream), TRACE_CHUNK)]

    def untraced():
        cache = Cache(CONFIG)
        for chunk in chunks:
            cache.replay(chunk)
        return cache

    def chunk_traced():
        cache = Cache(CONFIG)
        for chunk in chunks:
            _t = TRACER.begin()
            cache.replay(chunk)
            if _t is not None:
                TRACER.end(_t, "bench.chunk", accesses=len(chunk))
        return cache

    was_enabled = TRACER.enabled
    try:
        TRACER.disable()
        base_s = _best_of(5, untraced)
        disabled_s = _best_of(5, chunk_traced)
        reference = untraced()
        disabled_cache = chunk_traced()
        TRACER.enable()
        TRACER.clear()
        enabled_s = _best_of(5, chunk_traced)
        TRACER.clear()
        enabled_cache = chunk_traced()
        span_count = len(TRACER)
    finally:
        TRACER.clear()
        if was_enabled:
            TRACER.enable()
        else:
            TRACER.disable()
    return (base_s, disabled_s, enabled_s, span_count,
            reference, disabled_cache, enabled_cache)


def test_perf_trace_overhead(benchmark):
    """Tracing must cost <1% disabled and <5% enabled vs the plain
    seed-counter replay — and must not change a single counter bit."""
    (base_s, disabled_s, enabled_s, span_count, reference,
     disabled_cache, enabled_cache) = benchmark.pedantic(
        run_trace_overhead, rounds=1, iterations=1
    )
    disabled_overhead = disabled_s / base_s - 1.0
    enabled_overhead = enabled_s / base_s - 1.0

    # Correctness rides along: the bit-identity differential.  The
    # replays are deterministic, so every counter must agree whether
    # the region was untraced, traced-disabled, or traced-enabled.
    for cache in (disabled_cache, enabled_cache):
        assert cache.stats.hits == reference.stats.hits
        assert cache.stats.misses == reference.stats.misses
    # Enabled tracing recorded one explicit span per chunk plus the
    # cache.replay instrumentation span each replay call emits.
    assert span_count == 2 * len(range(0, STREAM_LENGTH, TRACE_CHUNK))

    # The gates only mean anything on full-size, non-smoke timing.
    if not SMOKE and STREAM_LENGTH >= 100_000:
        assert disabled_overhead < MAX_TRACE_DISABLED_OVERHEAD, (
            f"disabled tracer costs {disabled_overhead:.2%} on the hot "
            f"replay path (base {base_s:.4f}s vs {disabled_s:.4f}s) — "
            f"begin()/end() must stay allocation-free when off"
        )
        assert enabled_overhead < MAX_TRACE_ENABLED_OVERHEAD, (
            f"enabled tracer costs {enabled_overhead:.2%} at chunk "
            f"granularity (base {base_s:.4f}s vs {enabled_s:.4f}s)"
        )

    text = format_table(
        ["target", "seconds", "vs untraced"],
        [
            ["untraced replay", f"{base_s:.4f}", "1.00x"],
            ["tracer disabled", f"{disabled_s:.4f}",
             f"{disabled_s / base_s:.3f}x"],
            ["tracer enabled", f"{enabled_s:.4f}",
             f"{enabled_s / base_s:.3f}x"],
        ],
        title=(f"tracer overhead ({STREAM_LENGTH} accesses in "
               f"{TRACE_CHUNK}-access chunks, {span_count} spans "
               f"when enabled)"),
    )
    write_result("perf_trace_overhead.txt", text, data={
        "stream_length": STREAM_LENGTH,
        "chunk": TRACE_CHUNK,
        "base_s": base_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead_frac": disabled_overhead,
        "enabled_overhead_frac": enabled_overhead,
        "spans_recorded": span_count,
        "smoke": SMOKE,
    })


def run_slots_bench():
    """Uop allocation/access timing after the ``__slots__`` migration.

    PR 7's HOT001 lint rule forced ``__slots__`` onto every hot-path
    class; this bench pins down that the migration did not regress the
    two things slots touch — instance construction and attribute reads —
    by timing the slotted :class:`Uop` against a field-identical
    ``__dict__``-based twin built on the fly.
    """
    from dataclasses import fields as dc_fields, make_dataclass

    from repro.uarch.uop import Uop, UopClass

    DictUop = make_dataclass(
        "DictUop",
        [(f.name, f.type, f) for f in dc_fields(Uop)],
        # Same validation cost as the real Uop — without this the twin
        # skips __post_init__ and the comparison is meaningless.
        namespace={"__post_init__": Uop.__post_init__},
        slots=False,
    )
    n = scaled(50_000, floor=5_000)

    def build(cls):
        return [
            cls(seq=i, uop_class=UopClass.ALU, src1_value=i,
                src2_value=i ^ 0xFF)
            for i in range(n)
        ]

    def read(uops):
        total = 0
        for uop in uops:
            total += uop.src1_value + uop.src2_value + uop.latency
        return total

    slotted = build(Uop)
    dict_based = build(DictUop)
    construct_slots_s = _best_of(3, build, Uop)
    construct_dict_s = _best_of(3, build, DictUop)
    read_slots_s = _best_of(3, read, slotted)
    read_dict_s = _best_of(3, read, dict_based)
    return {
        "uops": n,
        "construct_s": {"slots": construct_slots_s,
                        "dict": construct_dict_s},
        "read_s": {"slots": read_slots_s, "dict": read_dict_s},
        "construct_ratio": construct_slots_s / construct_dict_s,
        "read_ratio": read_slots_s / read_dict_s,
    }


def test_perf_slots(benchmark):
    """Slotted Uop must not be slower than a __dict__ twin (+noise)."""
    from repro.uarch.uop import Uop, UopClass

    perf = benchmark.pedantic(run_slots_bench, rounds=1, iterations=1)

    # Structural check is exact regardless of machine noise: the slots
    # migration actually removed per-instance dicts.
    probe = Uop(seq=0, uop_class=UopClass.NOP)
    assert not hasattr(probe, "__dict__")

    # Timing check: slots are expected at-or-below dict cost; 1.3x
    # headroom absorbs CI jitter without letting a real regression
    # (e.g. an accidental __getattr__ indirection) through.
    if not SMOKE:
        assert perf["construct_ratio"] <= 1.3, perf
        assert perf["read_ratio"] <= 1.3, perf

    rows = [
        ["construct", f"{perf['construct_s']['slots'] * 1e3:.2f} ms",
         f"{perf['construct_s']['dict'] * 1e3:.2f} ms",
         f"{perf['construct_ratio']:.2f}x"],
        ["read 3 attrs", f"{perf['read_s']['slots'] * 1e3:.2f} ms",
         f"{perf['read_s']['dict'] * 1e3:.2f} ms",
         f"{perf['read_ratio']:.2f}x"],
    ]
    text = format_table(
        ["operation", "slots", "__dict__", "slots/dict"], rows,
        title=f"Uop __slots__ micro-bench ({perf['uops']} uops)",
    )
    write_result("perf_slots.txt", text, data={**perf, "smoke": SMOKE})


def test_perf_kernel(benchmark):
    timings, core_uops_per_s, first, second = benchmark.pedantic(
        run_kernel_perf, rounds=1, iterations=1
    )

    # A reused core replays the same trace bit-exactly.
    assert first.cycles == second.cycles
    assert first.dl0.misses == second.dl0.misses
    # The overhead ratio is scale-independent (unlike the other
    # benches' shape anchors), so assert it even in scaled runs — as
    # long as the stream is long enough for stable timing.
    if STREAM_LENGTH >= 20_000:
        for scheme in ("SetFixed50%", "LineFixed50%", "LineDynamic60%"):
            assert timings[scheme] <= (
                timings["baseline"] * MAX_PROTECTED_OVERHEAD
            ), f"{scheme} replay regressed to O(lines)-like cost: {timings}"

    rows = [
        [name, f"{us:.2f}",
         f"{us / timings['baseline']:.2f}x"]
        for name, us in timings.items()
    ]
    rows.append(["core replay", f"{core_uops_per_s:,.0f} uops/s", "-"])
    text = format_table(
        ["target", "us/access", "vs baseline"], rows,
        title=(f"kernel hot-path perf ({STREAM_LENGTH} uniform accesses "
               f"on {CONFIG.name})"),
    )
    text += (f"\npre-overhaul reference: LineFixed50% "
             f"~{PRE_PR_LINE_FIXED_US:.0f} us/access (15x baseline)")
    write_result("perf_kernel.txt", text, data={
        "stream_length": STREAM_LENGTH,
        "trace_length": TRACE_LENGTH,
        "us_per_access": timings,
        "core_uops_per_s": core_uops_per_s,
        "protected_overhead_vs_baseline": {
            name: us / timings["baseline"] for name, us in timings.items()
        },
        "speedup_vs_pre_pr_line_fixed": (
            PRE_PR_LINE_FIXED_US / timings["LineFixed50%"]
        ),
        "smoke": SMOKE,
    })


#: Many-set geometry where batching pays: 512 sets at 4 ways spread a
#: uniform stream thin enough that the vectorized backend's set-parallel
#: time-slicing amortises the materialise/write-back overhead.
BACKEND_CONFIG = CacheConfig(name="DL0-128K-4w",
                             size_bytes=128 * 1024, ways=4)

#: CI gate: the ``"vectorized"`` backend must hold at least this
#: speedup over ``"reference"`` on the protected many-set replay
#: (measured ~7-8x on the reference machine; 5x leaves noise headroom
#: while still catching a batching regression).
MIN_VECTORIZED_SPEEDUP = 5.0


def run_backend_perf():
    from repro.uarch.backends import get_backend

    stream = uniform_stream(STREAM_LENGTH, seed=45)
    elapsed = {}
    hits = {}
    snapshots = {}
    for name in ("reference", "vectorized"):
        engine = get_backend(name)

        def plain():
            cache = engine.make_cache(BACKEND_CONFIG)
            hits[name, "plain"] = cache.replay(stream)
            snapshots[name, "plain"] = cache.metrics().flatten()

        def protected():
            target = ProtectedCache(engine.make_cache(BACKEND_CONFIG),
                                    SetFixedScheme(0.5), seed=1)
            hits[name, "protected"] = target.replay(stream)
            snapshots[name, "protected"] = (
                target.cache.metrics().flatten()
            )

        elapsed[name, "plain"] = _best_of(3, plain)
        elapsed[name, "protected"] = _best_of(3, protected)
    return elapsed, hits, snapshots


def test_perf_backend(benchmark):
    """The vectorized engine must beat the reference engine by
    :data:`MIN_VECTORIZED_SPEEDUP` on the many-set protected replay,
    while staying bit-identical (DESIGN.md section 10)."""
    pytest.importorskip("numpy")
    elapsed, hits, snapshots = benchmark.pedantic(
        run_backend_perf, rounds=1, iterations=1
    )

    # Bit-exactness rides along: hit counts and every flattened metric
    # agree between the two engines, timed runs included.
    for path in ("plain", "protected"):
        assert hits["reference", path] == hits["vectorized", path], path
        assert snapshots["reference", path] == \
            snapshots["vectorized", path], path

    speedup = {
        path: (elapsed["reference", path]
               / max(elapsed["vectorized", path], 1e-12))
        for path in ("plain", "protected")
    }
    # The ratio is scale-independent; only require enough accesses for
    # stable timing (both CI bench legs run at or above this length).
    if STREAM_LENGTH >= 20_000:
        assert speedup["protected"] >= MIN_VECTORIZED_SPEEDUP, (
            f"vectorized backend regressed below "
            f"{MIN_VECTORIZED_SPEEDUP}x: {speedup}"
        )

    rows = [
        [path,
         f"{elapsed['reference', path] * 1e6 / STREAM_LENGTH:.2f}",
         f"{elapsed['vectorized', path] * 1e6 / STREAM_LENGTH:.2f}",
         f"{speedup[path]:.2f}x"]
        for path in ("plain", "protected")
    ]
    text = format_table(
        ["replay", "reference us/acc", "vectorized us/acc", "speedup"],
        rows,
        title=(f"backend perf ({STREAM_LENGTH} uniform accesses on "
               f"{BACKEND_CONFIG.name}, SetFixed50% protected)"),
    )
    text += (f"\ngate: protected speedup >= "
             f"{MIN_VECTORIZED_SPEEDUP:.0f}x (bit-identical outputs "
             f"asserted on every run)")
    write_result("perf_backend.txt", text, data={
        "stream_length": STREAM_LENGTH,
        "config": BACKEND_CONFIG.name,
        "elapsed_s": {
            f"{name}_{path}": elapsed[name, path]
            for name, path in elapsed
        },
        "speedup": speedup,
        "min_required_speedup": MIN_VECTORIZED_SPEEDUP,
        "smoke": SMOKE,
    })


STORE_RECORDS = scaled(10_000, floor=2_000)


def run_store_perf():
    from repro.experiments.spec import point_key
    from repro.experiments.store import ResultStore, StoredResult
    from repro.fabric.store import ShardedResultStore

    n = STORE_RECORDS
    studies = ["office", "kernels", "media", "mixed"]
    with tempfile.TemporaryDirectory() as tmp:
        flat_path = os.path.join(tmp, "store.jsonl")
        flat = ResultStore(flat_path)
        for i in range(n):
            study = studies[i % len(studies)]
            params = {"i": i, "ratio": (i % 10) / 10.0}
            flat.put_record(StoredResult(
                key=point_key(study, params),
                study=study,
                params=params,
                metrics={"ipc": 1.0 + (i % 7) * 0.01},
                elapsed=0.001,
                created=float(i),
            ))
        probe = flat.records("office")[len(flat.records("office")) // 2].key
        flat_bytes = os.path.getsize(flat_path)

        # Flat store: every open is a full-file rescan.
        def flat_open_get():
            assert ResultStore(flat_path).get(probe) is not None

        def flat_open_query():
            return len(ResultStore(flat_path).records("office"))

        flat_get = _best_of(3, flat_open_get)
        flat_query = _best_of(3, flat_open_query)

        sharded_dir = os.path.join(tmp, "sharded")
        start = time.perf_counter()
        sharded = ShardedResultStore(sharded_dir)
        migrated = sharded.import_flat_store(flat_path)
        migrate_s = time.perf_counter() - start
        expect_office = len(sharded.records("office"))
        sharded.close()

        # Sharded store: open touches meta + index only; reads seek to
        # exactly the rows the index names.
        def sharded_open_get():
            store = ShardedResultStore(sharded_dir)
            try:
                assert store.get(probe) is not None
            finally:
                store.close()

        def sharded_open_query():
            store = ShardedResultStore(sharded_dir)
            try:
                count = len(store.records("office"))
            finally:
                store.close()
            assert count == expect_office
            return count

        sharded_get = _best_of(3, sharded_open_get)
        sharded_query = _best_of(3, sharded_open_query)

        # Correctness rides along: migration preserved every record.
        assert expect_office == len(ResultStore(flat_path).records("office"))
    return {
        "records": n,
        "migrated": migrated,
        "flat_bytes": flat_bytes,
        "migrate_s": migrate_s,
        "open_get_s": {"flat": flat_get, "sharded": sharded_get},
        "open_query_s": {"flat": flat_query, "sharded": sharded_query},
    }


def test_perf_store(benchmark):
    """Indexed lookups must beat re-parsing the whole flat store."""
    perf = benchmark.pedantic(run_store_perf, rounds=1, iterations=1)

    assert perf["migrated"] == perf["records"], perf
    # Timing ordering is only stable with enough records to measure; the
    # margin is structural (O(1) open vs O(records) rescan), so it holds
    # at the CI floor too.
    if perf["records"] >= 2000:
        assert perf["open_get_s"]["sharded"] < perf["open_get_s"]["flat"], perf
        assert (perf["open_query_s"]["sharded"]
                < perf["open_query_s"]["flat"]), perf

    rows = [
        ["flat rescan", f"{perf['open_get_s']['flat'] * 1e3:.2f}",
         f"{perf['open_query_s']['flat'] * 1e3:.2f}"],
        ["sharded indexed", f"{perf['open_get_s']['sharded'] * 1e3:.2f}",
         f"{perf['open_query_s']['sharded'] * 1e3:.2f}"],
    ]
    text = format_table(
        ["store", "open+get ms", "open+query ms"], rows,
        title=(f"result-store perf ({perf['records']:,} records, "
               f"{perf['flat_bytes']:,} flat bytes)"),
    )
    text += (f"\nmigration to sharded: {perf['migrate_s'] * 1e3:.1f} ms; "
             f"indexed lookup "
             f"{perf['open_get_s']['flat'] / max(perf['open_get_s']['sharded'], 1e-9):.1f}x"
             f" faster than flat rescan")
    write_result("perf_store.txt", text, data={**perf, "smoke": SMOKE})
