"""Aggregation of sweep results into tables.

Groups point results by one or more parameter axes, reduces each metric
with mean/min/max, and renders through
:func:`repro.analysis.format_table` so sweep output matches the rest of
the repo's artefacts.

Aggregation dispatches on *stat type* (the
:func:`repro.metrics.kind_of_value` vocabulary, shared with the typed
:class:`~repro.metrics.stats.MetricSet` trees the studies now emit)
rather than ad-hoc numeric-ness guessing: numeric kinds (counter,
gauge, ratio, derived) reduce arithmetically; text kinds pass through
when every point in the group agrees and otherwise render an explicit
``(mixed)`` cell — a multi-point group can no longer silently drop a
string column.  Kinds are derived from the JSON-round-tripped values,
so cached and freshly executed sweeps summarise identically.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.analysis import format_table
from repro.experiments.runner import PointResult
from repro.metrics import NUMERIC_KINDS, kind_of_value

AGGREGATORS = {
    "mean": lambda values: sum(values) / len(values),
    "min": min,
    "max": max,
}

#: Rendered for a >1-point group whose non-numeric metric values
#: disagree (previously the cell was silently dropped).
MIXED = "(mixed)"


def group_results(
    results: Iterable[PointResult],
    keys: Sequence[str],
) -> "Dict[Tuple[Any, ...], List[PointResult]]":
    """Group results by the values of ``keys``, insertion-ordered."""
    groups: Dict[Tuple[Any, ...], List[PointResult]] = {}
    for result in results:
        params = result.params
        group = tuple(params.get(key) for key in keys)
        groups.setdefault(group, []).append(result)
    return groups


def aggregate_metric(
    results: Sequence[PointResult],
    metric: str,
    agg: str = "mean",
) -> Any:
    """Reduce one metric over a group, dispatching on stat type.

    Numeric stats reduce with ``agg``; non-numeric stats (scheme names,
    activation strings, distributions) pass through when uniform across
    the group and report :data:`MIXED` otherwise.  ``None`` only when
    the metric is absent from every point.
    """
    if agg not in AGGREGATORS:
        raise ValueError(
            f"unknown aggregator {agg!r}; choose from "
            f"{', '.join(sorted(AGGREGATORS))}"
        )
    values = [r.metrics[metric] for r in results if metric in r.metrics]
    if not values:
        return None
    if all(kind_of_value(v) in NUMERIC_KINDS for v in values):
        return AGGREGATORS[agg](values)
    first = values[0]
    if all(value == first for value in values[1:]):
        return first
    return MIXED


def metric_names(results: Iterable[PointResult]) -> List[str]:
    """Every metric seen across the results, sorted (cached records
    round-trip through JSON with sorted keys, so sorting keeps fresh
    and cached sweeps rendering identical tables)."""
    seen = {name for result in results for name in result.metrics}
    return sorted(seen)


def summarize(
    results: Sequence[PointResult],
    group_by: Sequence[str],
    metrics: Sequence[str] = (),
    agg: str = "mean",
) -> Tuple[List[str], List[List[Any]]]:
    """(headers, rows) of aggregated metrics per parameter group."""
    chosen = list(metrics) or metric_names(results)
    headers = list(group_by) + [
        m if agg == "mean" else f"{agg} {m}" for m in chosen
    ]
    rows: List[List[Any]] = []
    for group, members in group_results(results, group_by).items():
        row: List[Any] = list(group)
        for metric in chosen:
            row.append(aggregate_metric(members, metric, agg))
        rows.append(row)
    return headers, rows


def format_summary(
    results: Sequence[PointResult],
    group_by: Sequence[str],
    metrics: Sequence[str] = (),
    agg: str = "mean",
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render an aggregated sweep table (via ``analysis.format_table``)."""
    headers, rows = summarize(results, group_by, metrics, agg)
    shown = [
        [
            float_format.format(cell)
            if isinstance(cell, float) else
            ("" if cell is None else cell)
            for cell in row
        ]
        for row in rows
    ]
    return format_table(headers, shown, title=title)
