"""Set-associative cache with the line states the inversion schemes need.

Beyond a plain LRU cache, the model supports the three states Section
3.2.1 of the paper relies on:

- ``VALID``: a normal line holding workload data,
- ``INVALID``: an empty line (cold or explicitly invalidated),
- ``INVERTED``: invalid *and* holding inverted repair contents — the
  "valid/state bits indicate whether the cache line is valid and
  non-inverted, or invalid and inverted".

The cache also keeps a per-line *shadow-invert* bit used by the dynamic
scheme's test periods ("a bit per cache line that indicates whether cache
lines would have been inverted if the mechanism was activated.  Whenever
a hit happens in such cache lines, it is counted as an induced extra
miss"), and a hit-position histogram that backs the paper's MRU claim
(90% of DL0 hits in the MRU way).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class LineState(enum.Enum):
    INVALID = "invalid"
    VALID = "valid"
    INVERTED = "inverted"  # invalid + inverted repair contents


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache.

    Examples
    --------
    >>> CacheConfig(name="DL0-32K-8w", size_bytes=32 * 1024, ways=8).sets
    64
    """

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        return self.sets * self.ways


@dataclass
class CacheStats:
    """Running counters of one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    shadow_hits: int = 0
    inversions: int = 0
    refills_of_inverted: int = 0
    hit_way_position: Dict[int, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def mru_hit_fraction(self, position: int = 0) -> float:
        """Fraction of hits found at the given LRU-stack position."""
        if not self.hits:
            return 0.0
        return self.hit_way_position.get(position, 0) / self.hits


class Cache:
    """A set-associative, true-LRU cache.

    The cache is a *tag* model: it tracks which line addresses are
    resident, not the data bytes.  Mechanisms manipulate line states via
    :meth:`invert_line` / :meth:`invalidate_line`; the replacement victim
    search prefers INVALID and INVERTED lines over evicting VALID ones.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        #: When False, replacement never victimises INVERTED lines —
        #: used by way-granularity inversion, where the inverted ways
        #: are statically out of service rather than a refillable pool.
        self.allow_inverted_victims = True
        sets, ways = config.sets, config.ways
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self._state: List[List[LineState]] = [
            [LineState.INVALID] * ways for _ in range(sets)
        ]
        #: per-set LRU stack: index 0 = MRU, last = LRU.
        self._lru: List[List[int]] = [list(range(ways)) for _ in range(sets)]
        self._shadow: List[List[bool]] = [
            [False] * ways for _ in range(sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def index_of(self, address: int) -> Tuple[int, int]:
        """(set index, tag) of a byte address."""
        line = address // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, address: int) -> bool:
        """Look up an address; fills on miss.  Returns hit/miss."""
        set_index, tag = self.index_of(address)
        self.stats.accesses += 1
        way = self._find(set_index, tag)
        if way is not None:
            position = self._lru[set_index].index(way)
            self.stats.hit_way_position[position] = (
                self.stats.hit_way_position.get(position, 0) + 1
            )
            self.stats.hits += 1
            if self._shadow[set_index][way]:
                self.stats.shadow_hits += 1
            self._touch(set_index, way)
            return True
        self.stats.misses += 1
        self._fill(set_index, tag)
        return False

    def probe(self, address: int) -> bool:
        """Non-allocating lookup (no state change, no counters)."""
        set_index, tag = self.index_of(address)
        return self._find(set_index, tag) is not None

    def _find(self, set_index: int, tag: int) -> Optional[int]:
        tags = self._tags[set_index]
        states = self._state[set_index]
        for way in range(self.config.ways):
            if states[way] is LineState.VALID and tags[way] == tag:
                return way
        return None

    def _fill(self, set_index: int, tag: int) -> int:
        way = self.victim_way(set_index)
        if self._state[set_index][way] is LineState.INVERTED:
            self.stats.refills_of_inverted += 1
        self._tags[set_index][way] = tag
        self._state[set_index][way] = LineState.VALID
        self._shadow[set_index][way] = False
        self._touch(set_index, way)
        return way

    def victim_way(self, set_index: int) -> int:
        """Replacement victim: prefer INVALID, then INVERTED, then LRU.

        With :attr:`allow_inverted_victims` False, INVERTED lines are
        skipped and the LRU *valid* line is evicted instead (they are
        only reclaimed if the whole set is inverted).
        """
        states = self._state[set_index]
        for way in self._lru[set_index][::-1]:
            if states[way] is LineState.INVALID:
                return way
        if self.allow_inverted_victims:
            for way in self._lru[set_index][::-1]:
                if states[way] is LineState.INVERTED:
                    return way
        for way in self._lru[set_index][::-1]:
            if states[way] is LineState.VALID:
                return way
        return self._lru[set_index][-1]

    def _touch(self, set_index: int, way: int) -> None:
        stack = self._lru[set_index]
        stack.remove(way)
        stack.insert(0, way)

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def line_state(self, set_index: int, way: int) -> LineState:
        return self._state[set_index][way]

    def valid_ways(self, set_index: int) -> List[int]:
        states = self._state[set_index]
        return [w for w in range(self.config.ways)
                if states[w] is LineState.VALID]

    def inverted_count(self) -> int:
        return sum(
            1
            for states in self._state
            for state in states
            if state is LineState.INVERTED
        )

    def lru_position(self, set_index: int, position: int) -> int:
        """Way currently at the given LRU-stack position (0 = MRU)."""
        return self._lru[set_index][position]

    def invert_line(self, set_index: int, way: int) -> None:
        """Invalidate a line and fill it with inverted repair contents."""
        self._state[set_index][way] = LineState.INVERTED
        self._tags[set_index][way] = None
        self._shadow[set_index][way] = False
        self.stats.inversions += 1

    def invalidate_line(self, set_index: int, way: int) -> None:
        self._state[set_index][way] = LineState.INVALID
        self._tags[set_index][way] = None
        self._shadow[set_index][way] = False

    def set_shadow(self, set_index: int, way: int, value: bool) -> None:
        """Mark/unmark the would-be-inverted test bit of a line."""
        self._shadow[set_index][way] = value

    def is_shadow(self, set_index: int, way: int) -> bool:
        return self._shadow[set_index][way]

    def shadow_count(self) -> int:
        return sum(
            1 for row in self._shadow for bit in row if bit
        )

    def clear_shadow(self) -> None:
        for row in self._shadow:
            for way in range(len(row)):
                row[way] = False

    def reset_stats(self) -> None:
        self.stats = CacheStats()
