"""Aging simulation of combinational circuits.

:class:`AgingSimulator` is the open-source stand-in for the "Hspice-like
Intel production simulator for aging at electrical level" of Section 4.1.
It drives a :class:`~repro.circuits.netlist.Circuit` with weighted input
vectors, accumulates the zero-signal residency of every node, and derives
per-PMOS duty cycles, the Figure 4 metric (fraction of *narrow*
transistors with ~100% zero-signal probability), and the guardband the
block would require (Figure 5).

The electrical layer is replaced by the calibrated duty->guardband map of
:mod:`repro.nbti.guardband`; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.circuits.netlist import Circuit
from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL, GuardbandModel
from repro.nbti.stress import StressLedger
from repro.nbti.transistor import PMOSTransistor

#: Duty cycle above which a transistor counts as "100% zero-signal
#: probability" for the Figure 4 metric (allows float slack).
FULL_STRESS_THRESHOLD = 0.999


@dataclass(frozen=True)
class AgingReport:
    """Summary of an aging run.

    Attributes
    ----------
    total_transistors:
        All transistors in the design (PMOS + the matching NMOS of static
        CMOS); Figure 4 normalises by this count.
    narrow_fully_stressed:
        Narrow PMOS whose duty exceeded :data:`FULL_STRESS_THRESHOLD`.
    wide_fully_stressed:
        Wide PMOS whose duty exceeded the threshold (the paper tolerates
        these: "wide PMOS ... do not suffer from NBTI significantly").
    worst_narrow_duty:
        Highest duty among narrow PMOS.
    guardband:
        Cycle-time guardband required by the worst *narrow* PMOS.
    """

    total_transistors: int
    narrow_count: int
    narrow_fully_stressed: int
    wide_fully_stressed: int
    worst_narrow_duty: float
    guardband: float

    @property
    def narrow_fully_stressed_fraction(self) -> float:
        """Figure 4 metric: narrow 100%-stressed over total transistors."""
        if self.total_transistors == 0:
            return 0.0
        return self.narrow_fully_stressed / self.total_transistors


class AgingSimulator:
    """Drive a circuit with weighted vectors and account PMOS stress.

    Examples
    --------
    >>> from repro.circuits import build_ladner_fischer_adder
    >>> adder = build_ladner_fischer_adder(width=4)
    >>> sim = AgingSimulator(adder.circuit)
    >>> sim.apply(adder.input_vector(0, 0, 0), duration=1.0)
    >>> sim.apply(adder.input_vector(15, 15, 1), duration=1.0)
    >>> 0.0 <= sim.report().worst_narrow_duty <= 1.0
    True
    """

    def __init__(
        self,
        circuit: Circuit,
        guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
    ) -> None:
        self.circuit = circuit
        self.guardband_model = guardband_model
        self.ledger = StressLedger()
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def apply(self, input_values: Mapping[str, int], duration: float = 1.0) -> None:
        """Hold one input vector for ``duration`` time units."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        if duration == 0.0:
            return
        values = self.circuit.evaluate(input_values)
        for node, value in values.items():
            self.ledger.observe(node, value, duration)
        self._elapsed += duration

    def apply_sequence(
        self,
        vectors: Iterable[Mapping[str, int]],
        duration_each: float = 1.0,
    ) -> None:
        """Hold each vector of a sequence for the same duration."""
        for vector in vectors:
            self.apply(vector, duration_each)

    def apply_weighted(
        self, weighted_vectors: Iterable[Tuple[Mapping[str, int], float]]
    ) -> None:
        """Apply ``(vector, weight)`` pairs; weights are durations."""
        for vector, weight in weighted_vectors:
            self.apply(vector, weight)

    @property
    def elapsed(self) -> float:
        """Total simulated residency time."""
        return self._elapsed

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def pmos_duty(self, transistor: PMOSTransistor) -> float:
        """Zero-signal probability accumulated by one transistor."""
        return self.ledger.duty(transistor.gate_node)

    def pmos_duties(self) -> Dict[str, float]:
        """Mapping of transistor name -> duty for the whole design."""
        return {
            pmos.name: self.pmos_duty(pmos)
            for pmos in self.circuit.pmos_transistors()
        }

    def fully_stressed(
        self, threshold: float = FULL_STRESS_THRESHOLD
    ) -> List[PMOSTransistor]:
        """Transistors whose duty meets/exceeds ``threshold``."""
        return [
            pmos
            for pmos in self.circuit.pmos_transistors()
            if self.pmos_duty(pmos) >= threshold
        ]

    def report(
        self, threshold: float = FULL_STRESS_THRESHOLD
    ) -> AgingReport:
        """Summarise the run into an :class:`AgingReport`."""
        narrow = self.circuit.narrow_pmos()
        all_pmos = self.circuit.pmos_transistors()
        stressed = self.fully_stressed(threshold)
        narrow_stressed = sum(1 for p in stressed if p.is_narrow)
        wide_stressed = len(stressed) - narrow_stressed
        worst_narrow = max(
            (self.pmos_duty(p) for p in narrow), default=0.0
        )
        return AgingReport(
            total_transistors=2 * len(all_pmos),
            narrow_count=len(narrow),
            narrow_fully_stressed=narrow_stressed,
            wide_fully_stressed=wide_stressed,
            worst_narrow_duty=worst_narrow,
            guardband=self.guardband_model.guardband_for_duty(worst_narrow),
        )

    def reset(self) -> None:
        """Discard all accumulated stress."""
        self.ledger = StressLedger()
        self._elapsed = 0.0
