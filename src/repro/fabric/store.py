"""Sharded, indexed result store (same record format, O(1) lookups).

Layout of a store directory::

    <dir>/fabric.json            # store meta (schema tag, shard count)
    <dir>/index.sqlite           # rebuildable location index
    <dir>/shards/shard-000.jsonl # records whose key-hash lands in range
    <dir>/shards/shard-001.jsonl
    ...

Records are byte-identical to the flat :class:`~repro.experiments.
store.ResultStore` lines — one canonical-JSON object per line — but
partitioned by key-hash range (``int(key[:4], 16) % shards``), so a
shard never needs locking beyond the ``O_APPEND`` single-write
discipline and a million-record store opens without parsing a single
record: the SQLite index remembers how far each shard was indexed and
``refresh`` reads only appended tails.

Existing flat stores migrate transparently: opening a directory that
contains a ``store.jsonl`` imports any bytes not yet imported, so
``ShardedResultStore(os.path.dirname(flat.path))`` picks up where the
flat store left off.  ``compact`` rewrites each shard keeping only the
last record per key (atomic temp+rename per shard).
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.experiments.spec import ExperimentPoint, canonical_json
from repro.experiments.store import ResultStore, StoredResult, _plain
from repro.fabric.index import IndexRow, StoreIndex
from repro.fabric.io import append_record, atomic_write_json, atomic_write_text

__all__ = [
    "STORE_SCHEMA",
    "CompactStats",
    "ShardedResultStore",
    "open_result_store",
]

STORE_SCHEMA = "repro.fabric-store/1"
META_NAME = "fabric.json"
DEFAULT_SHARDS = 16
FLAT_NAME = "store.jsonl"


def params_digest(params: Mapping[str, Any]) -> str:
    """Content digest of a record's params (index query column)."""
    blob = canonical_json(dict(params)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:20]


@dataclass(frozen=True)
class CompactStats:
    """Outcome of :meth:`ShardedResultStore.compact`."""

    records: int
    bytes_before: int
    bytes_after: int
    dropped_lines: int

    @property
    def reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after


class ShardedResultStore:
    """Duck-type of ``ResultStore`` backed by shards + SQLite index.

    ``index_writes=False`` opens the store append-only *and* opens the
    SQLite index read-only: ``put`` writes shard lines but never
    touches SQLite, and index reads retry/degrade instead of raising
    when the owner process is mid-write (a reader must never delete or
    rebuild the owner's index — see :class:`~repro.fabric.index.
    StoreIndex`).  Fabric workers and the sweep service's second-process
    readers use this mode; :meth:`refresh` then folds appended shard
    tails into an in-memory *overlay* instead of SQLite, so a reader
    still sees records the owner has appended but not yet indexed —
    and stays fully functional even when the index file is unreadable
    the whole time (worst case: one full shard reparse).
    """

    def __init__(
        self,
        directory: str,
        shards: int = DEFAULT_SHARDS,
        index_writes: bool = True,
        refresh_on_open: bool = True,
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.path = os.path.join(self.directory, META_NAME)
        self.shard_dir = os.path.join(self.directory, "shards")
        self.index_writes = index_writes
        self.skipped_lines = 0
        os.makedirs(self.shard_dir, exist_ok=True)
        meta = self._load_meta()
        if meta is None:
            self.shards = shards
            meta = {"schema": STORE_SCHEMA, "shards": shards,
                    "flat_imported_bytes": 0}
            if index_writes:
                atomic_write_json(self.path, meta)
        else:
            self.shards = int(meta["shards"])
        self._meta = meta
        self.index = StoreIndex(
            os.path.join(self.directory, "index.sqlite"),
            read_only=not index_writes,
        )
        #: Read-only mode's view of rows beyond the index watermarks
        #: (and of this handle's own appends).
        self._overlay: Dict[str, IndexRow] = {}
        self._overlay_marks: Dict[int, int] = {}
        if index_writes:
            self._import_flat()
        if refresh_on_open:
            self.refresh()

    # -- layout ---------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """Hash-range partition: leading 16 bits of the point key."""
        return int(key[:4], 16) % self.shards

    def shard_path(self, shard: int) -> str:
        return os.path.join(self.shard_dir, f"shard-{shard:03d}.jsonl")

    def _load_meta(self) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.path):
            return None
        with open(self.path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != STORE_SCHEMA:
            raise ValueError(
                f"{self.path}: unsupported store schema "
                f"{payload.get('schema')!r} (expected {STORE_SCHEMA})"
            )
        return dict(payload)

    # -- migration ------------------------------------------------------
    def _import_flat(self) -> int:
        """Fold an adjacent flat ``store.jsonl`` into the shards.

        Tracks how many flat bytes were already imported, so reopening
        is free and appends made to the flat file *after* a migration
        are picked up incrementally on the next open.
        """
        flat = os.path.join(self.directory, FLAT_NAME)
        if not os.path.exists(flat):
            return 0
        size = os.path.getsize(flat)
        done = int(self._meta.get("flat_imported_bytes", 0))
        if size <= done:
            return 0
        imported = self.import_flat_store(flat)
        self._meta["flat_imported_bytes"] = size
        atomic_write_json(self.path, self._meta)
        return imported

    def import_flat_store(self, flat_path: str) -> int:
        """Copy every record of a flat JSONL store into the shards."""
        flat = ResultStore(flat_path)
        records = sorted(flat, key=lambda r: (r.created, r.key))
        self.put_many(records)
        return len(records)

    # -- reading --------------------------------------------------------
    def refresh(self) -> None:
        """Index shard bytes appended since the last refresh.

        Only complete lines (ending in ``\\n``) are consumed; a torn
        final line — crash mid-append — stays beyond the watermark and
        is retried (then superseded or compacted away) later.  Complete
        lines that fail to parse are counted and skipped; compaction
        drops them for good.

        The owner (``index_writes=True``) folds the tails into SQLite.
        A read-only handle folds them into its in-memory overlay
        instead, starting from wherever the owner's watermarks stood at
        this poll — second processes see fresh appends without ever
        writing the index.
        """
        rows: List[Tuple[str, int, int, int, str, str, float]] = []
        marks = self.index.watermarks()
        if not self.index_writes:
            for shard, done in self._overlay_marks.items():
                marks[shard] = max(marks.get(shard, 0), done)
        new_marks: Dict[int, int] = {}
        for shard in range(self.shards):
            path = self.shard_path(shard)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            done = marks.get(shard, 0)
            if size <= done:
                continue
            with open(path, "rb") as handle:
                handle.seek(done)
                tail = handle.read()
            offset = done
            for raw in tail.splitlines(keepends=True):
                if not raw.endswith(b"\n"):
                    break  # torn final line: leave for the next refresh
                length = len(raw)
                try:
                    record = StoredResult.from_json(
                        raw.decode("utf-8").strip()
                    )
                    rows.append((
                        record.key, shard, offset, length, record.study,
                        params_digest(record.params), record.created,
                    ))
                except (ValueError, UnicodeDecodeError):
                    self.skipped_lines += 1
                offset += length
            new_marks[shard] = offset
        if not self.index_writes:
            for row in rows:
                self._overlay[row[0]] = IndexRow(*row)
            self._overlay_marks.update(new_marks)
            return
        if rows or new_marks:
            self.index.upsert(rows, new_marks)

    def _read_at(self, shard: int, offset: int, length: int) -> StoredResult:
        with open(self.shard_path(shard), "rb") as handle:
            handle.seek(offset)
            blob = handle.read(length)
        return StoredResult.from_json(blob.decode("utf-8").strip())

    def _read_rows(self, rows: List[Any]) -> Iterator[StoredResult]:
        """Bulk point reads: one open handle per shard, not per record."""
        handles: Dict[int, Any] = {}
        try:
            for row in rows:
                handle = handles.get(row.shard)
                if handle is None:
                    handle = open(self.shard_path(row.shard), "rb")
                    handles[row.shard] = handle
                handle.seek(row.offset)
                blob = handle.read(row.length)
                yield StoredResult.from_json(blob.decode("utf-8").strip())
        finally:
            for handle in handles.values():
                handle.close()

    def _locate(self, key: str) -> Optional[IndexRow]:
        """Index row for ``key``, preferring the newer of index/overlay.

        Same key always lands in the same shard, so a larger byte
        offset is strictly the later append — the live record.
        """
        row = self.index.lookup(key)
        over = self._overlay.get(key)
        if over is not None and (row is None or over.offset >= row.offset):
            return over
        return row

    def get(self, key: str) -> Optional[StoredResult]:
        row = self._locate(key)
        if row is None:
            return None
        record = self._read_at(row.shard, row.offset, row.length)
        if record.key != key:
            if not self.index_writes:
                # A reader must not rewrite the owner's index; treat
                # drift as a miss (always correct for a cache).
                return None
            # Index drifted from the shard (e.g. shard rewritten behind
            # our back): rebuild rather than serve the wrong record.
            warnings.warn(
                f"{self.directory}: index row for {key} pointed at "
                f"{record.key}; reindexing",
                RuntimeWarning,
                stacklevel=2,
            )
            self.reindex()
            row = self.index.lookup(key)
            if row is None:
                return None
            record = self._read_at(row.shard, row.offset, row.length)
        return record

    def get_point(self, point: ExperimentPoint) -> Optional[StoredResult]:
        return self.get(point.key)

    def __contains__(self, key: str) -> bool:
        return self._locate(key) is not None

    def __len__(self) -> int:
        count = self.index.count()
        count += sum(1 for key in self._overlay
                     if self.index.lookup(key) is None)
        return count

    def _all_rows(self, study: Optional[str]) -> List[IndexRow]:
        """Merged index + overlay rows in (created, key) order."""
        merged = {row.key: row for row in self.index.by_study(study)}
        for key, row in self._overlay.items():
            if study is not None and row.study != study:
                continue
            old = merged.get(key)
            if old is None or row.offset >= old.offset:
                merged[key] = row
        return sorted(merged.values(),
                      key=lambda r: (r.created, r.key))

    def __iter__(self) -> Iterator[StoredResult]:
        yield from self._read_rows(self._all_rows(None))

    def records(self, study: Optional[str] = None) -> List[StoredResult]:
        return list(self._read_rows(self._all_rows(study)))

    # -- writing --------------------------------------------------------
    def put(
        self,
        point: ExperimentPoint,
        metrics: Mapping[str, Any],
        elapsed: float = 0.0,
    ) -> StoredResult:
        record = StoredResult(
            key=point.key,
            study=point.study,
            params=_plain(point.as_dict()),
            metrics=dict(metrics),
            elapsed=elapsed,
        )
        self.put_record(record)
        return record

    def put_record(self, record: StoredResult) -> None:
        shard = self.shard_of(record.key)
        payload = (record.to_json() + "\n").encode("utf-8")
        offset, end = append_record(self.shard_path(shard), payload)
        if self.index_writes:
            self.index.upsert(
                [(record.key, shard, offset, len(payload), record.study,
                  params_digest(record.params), record.created)],
                {shard: end},
            )
        else:
            # Append-only handles remember their own writes so a
            # subsequent get() on this handle is not an index miss.
            self._overlay[record.key] = IndexRow(
                record.key, shard, offset, len(payload), record.study,
                params_digest(record.params), record.created)

    def put_many(self, records: List[StoredResult]) -> None:
        """Bulk append: one ``os.write`` and one index transaction per
        shard instead of per record (migration / compaction path)."""
        by_shard: Dict[int, List[StoredResult]] = {}
        for record in records:
            by_shard.setdefault(self.shard_of(record.key), []).append(record)
        rows: List[Tuple[str, int, int, int, str, str, float]] = []
        marks: Dict[int, int] = {}
        for shard, group in sorted(by_shard.items()):
            lines = [(r.to_json() + "\n").encode("utf-8") for r in group]
            blob = b"".join(lines)
            offset, end = append_record(self.shard_path(shard), blob)
            for record, line in zip(group, lines):
                rows.append((
                    record.key, shard, offset, len(line), record.study,
                    params_digest(record.params), record.created,
                ))
                offset += len(line)
            marks[shard] = end
        if self.index_writes and (rows or marks):
            self.index.upsert(rows, marks)

    # -- maintenance ----------------------------------------------------
    def compact(self) -> CompactStats:
        """Rewrite each shard keeping only the live record per key.

        Each shard is replaced atomically (temp+rename), so a reader —
        or a crash — mid-compact sees either the old shard or the new
        one, never a partial rewrite.
        """
        self.refresh()
        records_total = 0
        before = 0
        after = 0
        dropped = 0
        for shard in range(self.shards):
            path = self.shard_path(shard)
            try:
                with open(path, "rb") as handle:
                    old_blob = handle.read()
            except OSError:
                continue
            rows = self.index.by_shard(shard)
            kept = [self._read_at(r.shard, r.offset, r.length)
                    for r in rows]
            lines = [r.to_json() + "\n" for r in kept]
            text = "".join(lines)
            atomic_write_text(path, text)
            self.index.drop_shard(shard)
            new_rows: List[Tuple[str, int, int, int, str, str, float]] = []
            offset = 0
            for record, line in zip(kept, lines):
                length = len(line.encode("utf-8"))
                new_rows.append((
                    record.key, shard, offset, length, record.study,
                    params_digest(record.params), record.created,
                ))
                offset += length
            self.index.upsert(new_rows, {shard: offset})
            records_total += len(kept)
            before += len(old_blob)
            after += offset
            dropped += max(0, old_blob.count(b"\n") - len(kept))
        stats = CompactStats(
            records=records_total,
            bytes_before=before,
            bytes_after=after,
            dropped_lines=dropped,
        )
        return stats

    def reindex(self) -> None:
        """Drop the index and rebuild it from the shard files.

        Read-only handles rebuild their overlay instead — the owner's
        SQLite file is never touched.
        """
        if not self.index_writes:
            self._overlay.clear()
            self._overlay_marks = {shard: 0
                                   for shard in range(self.shards)}
            self.skipped_lines = 0
            self.refresh()
            return
        self.index.reset()
        self.skipped_lines = 0
        self.refresh()

    def clear(self) -> None:
        """Drop every record (shards and index)."""
        for shard in range(self.shards):
            try:
                os.remove(self.shard_path(shard))
            except OSError:
                pass
        self.index.reset()

    def stats(self) -> Dict[str, Any]:
        shard_bytes = {}
        for shard in range(self.shards):
            try:
                shard_bytes[shard] = os.path.getsize(self.shard_path(shard))
            except OSError:
                shard_bytes[shard] = 0
        return {
            "schema": STORE_SCHEMA,
            "directory": self.directory,
            "records": len(self),
            "shards": self.shards,
            "bytes": sum(shard_bytes.values()),
            "shard_bytes": shard_bytes,
            "skipped_lines": self.skipped_lines,
        }

    def close(self) -> None:
        self.index.close()


def open_result_store(path: str) -> Any:
    """Open ``path`` as whichever store format lives there.

    Directories (or paths ending with the OS separator) open as
    :class:`ShardedResultStore` — including directories holding only a
    legacy flat ``store.jsonl``, which migrates on first open.  A file
    path opens as the flat :class:`ResultStore`.
    """
    if path.endswith(os.sep) or os.path.isdir(path) or (
        not os.path.exists(path) and not path.endswith(".jsonl")
    ):
        return ShardedResultStore(path)
    return ResultStore(path)
