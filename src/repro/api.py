"""The facade: build and run anything in the repo from declarative specs.

Every entry point used to hand-assemble ``CoreConfig``, ``CacheConfig``,
TLB geometry and protection mechanisms; this module is the single
construction surface on top of :mod:`repro.config`:

- :func:`build_core` — a :class:`~repro.uarch.core.TraceDrivenCore`
  from a :class:`~repro.config.specs.ProcessorSpec`;
- :func:`build_hooks` / :func:`build_scheme` — protection mechanisms
  from a :class:`~repro.config.specs.ProtectionSpec`, resolved through
  the component registries;
- :func:`build_penelope` — a fully configured
  :class:`~repro.core.penelope.PenelopeProcessor`;
- :func:`build_workload` / :func:`build_address_streams` — Table 1
  workloads from a :class:`~repro.config.specs.WorkloadSpec`;
- :func:`run_study` — expand a :class:`~repro.config.specs.StudySpec`
  (sweep axes are spec field paths) into the experiment engine and run
  it, returning the usual :class:`~repro.experiments.runner.SweepResult`.

Everything returns the existing typed results; spec-built objects are
bit-identical to their legacy hand-assembled counterparts (asserted by
``tests/test_api.py``).

Quick start::

    from repro import api
    from repro.config import StudySpec

    spec = StudySpec(
        "caches",
        sweep={"protection.dl0.params.ratio": [0.4, 0.5, 0.6]},
    )
    outcome = api.run_study(spec)

or, from JSON (the ``repro run --config`` path)::

    spec = api.load_study_spec("study.json")
    outcome = api.run_study(spec)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.config.registry import (
    ADDER_MECHANISMS,
    CACHE_SCHEMES,
    RF_PROTECTORS,
    SCHEDULER_PROTECTORS,
)
from repro.config.specs import (
    MISSING,
    MechanismSpec,
    ProcessorSpec,
    ProtectionSpec,
    SpecError,
    StudySpec,
    WorkloadSpec,
    resolve_path,
    with_path,
)

__all__ = [
    "build_address_streams",
    "build_core",
    "build_hooks",
    "build_multiprog_stream",
    "build_penelope",
    "build_scheme",
    "build_workload",
    "default_study_spec",
    "load_study_spec",
    "run_study",
    "save_study_spec",
    "study_sweep_spec",
    "sweep_from_payload",
]


# ----------------------------------------------------------------------
# Structures
# ----------------------------------------------------------------------
def build_core(spec: Optional[ProcessorSpec] = None, *, hooks=None,
               dl0=None, dtlb=None):
    """A :class:`~repro.uarch.core.TraceDrivenCore` from a spec.

    ``hooks``/``dl0``/``dtlb`` pass through to the core constructor
    (``dl0``/``dtlb`` override the spec-built structures with protected
    wrappers).
    """
    from repro.uarch.core import TraceDrivenCore

    spec = spec if spec is not None else ProcessorSpec()
    return TraceDrivenCore(spec.to_core_config(), hooks=hooks,
                           dl0=dl0, dtlb=dtlb)


def build_scheme(mechanism: MechanismSpec, structure: str = "dl0"):
    """An inversion scheme instance from a mechanism spec.

    Returns ``None`` for the ``"none"`` mechanism (run unprotected).
    """
    return CACHE_SCHEMES.build(mechanism.name, mechanism.params,
                               where=f"protection.{structure}")


def build_hooks(protection: Optional[ProtectionSpec] = None, *,
                scheduler_policy=None):
    """Core observer hooks for the memory-like mechanisms of a spec.

    Builds the register-file protectors and, unless the slot is
    ``"none"``, the scheduler protector.  A ``derived_policy`` scheduler
    mechanism needs the profiling-derived ``scheduler_policy``; without
    one this raises :class:`~repro.config.specs.SpecError`
    (:func:`build_penelope` profiles automatically — use it for the
    full flow).
    """
    from repro.uarch.core import CompositeHooks
    from repro.uarch.uop import FP_WIDTH, INT_WIDTH

    protection = protection if protection is not None else ProtectionSpec()
    hooks = []
    for rf_name, width in (("int_rf", INT_WIDTH), ("fp_rf", FP_WIDTH)):
        mechanism = getattr(protection, rf_name)
        built = RF_PROTECTORS.build(
            mechanism.name, mechanism.params,
            rf_name, width, protection.sample_period,
            where=f"protection.{rf_name}",
        )
        if built is not None:
            hooks.append(built)
    scheduler = protection.scheduler
    if scheduler.name == "derived_policy" and scheduler_policy is None:
        raise SpecError(
            "protection.scheduler: 'derived_policy' needs a "
            "profiling-derived policy; pass scheduler_policy=..., use "
            "'paper_policy', or build through build_penelope() which "
            "profiles automatically"
        )
    built = SCHEDULER_PROTECTORS.build(
        scheduler.name, scheduler.params,
        scheduler_policy, protection.sample_period,
        where="protection.scheduler",
    )
    if built is not None:
        hooks.append(built)
    return CompositeHooks(hooks)


def build_penelope(spec: Optional[StudySpec] = None, *,
                   processor: Optional[ProcessorSpec] = None,
                   protection: Optional[ProtectionSpec] = None,
                   seed: Optional[int] = None,
                   adder=None, guardband_model=None):
    """A :class:`~repro.core.penelope.PenelopeProcessor` from specs.

    ``spec`` (a :class:`~repro.config.specs.StudySpec`) supplies the
    processor/protection/seed; the keyword arguments override its
    slots (or the defaults when no spec is given).  Every mechanism is
    resolved through the component registries, so a default spec builds
    a processor bit-identical to ``PenelopeProcessor()``.
    """
    from repro.core.memory_like import PAPER_SCHEDULER_POLICY
    from repro.core.penelope import PenelopeProcessor
    from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL

    if spec is not None:
        processor = processor if processor is not None else spec.processor
        protection = protection if protection is not None else spec.protection
        seed = seed if seed is not None else spec.workload.seed
    processor = processor if processor is not None else ProcessorSpec()
    protection = protection if protection is not None else ProtectionSpec()
    seed = seed if seed is not None else 0

    def rf_factory(rf_name: str, width: int):
        mechanism = getattr(protection, rf_name)
        return RF_PROTECTORS.build(
            mechanism.name, mechanism.params,
            rf_name, width, protection.sample_period,
            where=f"protection.{rf_name}",
        )

    def scheduler_factory(policy):
        mechanism = protection.scheduler
        return SCHEDULER_PROTECTORS.build(
            mechanism.name, mechanism.params,
            policy, protection.sample_period,
            where="protection.scheduler",
        )

    def cache_factory(structure: str):
        return build_scheme(getattr(protection, structure), structure)

    adder_settings = ADDER_MECHANISMS.build(
        protection.adder.name, protection.adder.params,
        where="protection.adder",
    ) or {"pair": (1, 8), "inject": False}
    invert_ratio = protection.dl0.params.get("ratio", 0.5)
    # Only 'derived_policy' consumes a profiled policy; pinning the
    # published one otherwise skips the (ignored) profiling run.
    scheduler_policy = (None if protection.scheduler.name == "derived_policy"
                        else PAPER_SCHEDULER_POLICY)
    return PenelopeProcessor(
        config=processor.to_core_config(),
        scheduler_policy=scheduler_policy,
        invert_ratio=invert_ratio,
        adder=adder,
        guardband_model=(guardband_model if guardband_model is not None
                         else DEFAULT_GUARDBAND_MODEL),
        sample_period=protection.sample_period,
        seed=seed,
        rf_protector_factory=rf_factory,
        scheduler_protector_factory=scheduler_factory,
        cache_scheme_factory=cache_factory,
        injector_pair=adder_settings["pair"],
        inject_idle=adder_settings["inject"],
    )


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def build_workload(spec: Optional[WorkloadSpec] = None) -> List[Any]:
    """Synthetic Table 1 traces from a workload spec."""
    from repro.workloads import generate_workload

    spec = spec if spec is not None else WorkloadSpec()
    return generate_workload(
        seed=spec.seed,
        traces_per_suite=spec.traces_per_suite,
        length=spec.length,
        suites=list(spec.suites),
    )


def build_address_streams(spec: Optional[WorkloadSpec] = None
                          ) -> List[List[int]]:
    """One load/store address stream per suite (cache-only studies)."""
    from repro.workloads import generate_address_stream

    spec = spec if spec is not None else WorkloadSpec()
    return [
        generate_address_stream(suite, length=spec.length, seed=spec.seed)
        for suite in spec.suites
    ]


def build_multiprog_stream(spec: Optional[WorkloadSpec] = None):
    """One interleaved multiprogram address stream from a workload spec.

    Lazy (an iterator): feed it straight to ``Cache.replay`` /
    ``ProtectedCache.replay`` for bounded-memory interference runs.  The
    spec's ``interleave`` policy drives the merge; ``"none"`` falls back
    to round-robin so a default spec still produces a usable scenario.
    """
    from repro.workloads.multiprog import multiprog_address_stream

    spec = spec if spec is not None else WorkloadSpec()
    policy = spec.interleave if spec.interleave != "none" else "round_robin"
    return multiprog_address_stream(
        spec.suites, length=spec.length, seed=spec.seed,
        policy=policy, slice_length=spec.slice_length,
    )


# ----------------------------------------------------------------------
# Studies
# ----------------------------------------------------------------------
def study_sweep_spec(spec: StudySpec):
    """Expand a :class:`StudySpec` into the engine's ``SweepSpec``.

    Base parameters are read from the composed specs through each
    study's ``spec_paths`` binding; ``spec.sweep`` axes (spec field
    paths, or bare names for parameters with no spec home) become grid
    axes; the workload's suites become the suite axis.  The flat
    parameters this produces are exactly what a hand-written sweep
    would use, so spec-driven and legacy runs share point hashes and
    the result cache.
    """
    from repro.experiments import SweepSpec, get_study

    study = get_study(spec.study)
    paths: Dict[str, str] = dict(study.spec_paths)
    reverse = {path: param for param, path in paths.items()}
    _reject_unconsumed_edits(spec, study)

    base: Dict[str, Any] = {}
    grid: Dict[str, List[Any]] = {}
    suite_param = None
    for param, path in paths.items():
        if path == "workload.suites" and param == "suite":
            # A scalar per-suite parameter: the workload's suites fan
            # out as a grid axis (one point per suite).
            suite_param = param
            continue
        value = resolve_path(spec, path)
        if value is not MISSING:
            # Multiprogram studies bind the whole suite tuple as ONE
            # parameter (param "suites"), so it lands in base as-is.
            base[param] = value
    if suite_param is not None:
        grid[suite_param] = list(spec.workload.suites)

    for param, value in spec.overrides.items():
        if param not in study.defaults:
            raise SpecError(
                f"override {param!r} is not a parameter of study "
                f"{spec.study!r}; known parameters: "
                f"{', '.join(sorted(study.defaults))}"
            )
        base[param] = value

    for axis, values in spec.sweep.items():
        if axis in reverse:
            param = reverse[axis]
        elif axis in study.defaults:
            param = axis
        else:
            raise SpecError(
                f"unknown sweep axis {axis!r} for study {spec.study!r}; "
                f"sweepable spec paths: "
                f"{', '.join(sorted(reverse)) or '(none)'}; bare "
                f"parameters: {', '.join(sorted(study.defaults))}"
            )
        base.pop(param, None)
        grid[param] = list(values)
    return SweepSpec(spec.study, base=base, grid=grid)


def _reject_unconsumed_edits(spec: StudySpec, study) -> None:
    """Error on spec edits the study's flat parameters cannot honour.

    Each study consumes only the field paths in its ``spec_paths``
    binding; an edit anywhere else (a different issue width for the
    ``regfile`` study, a DTLB scheme for ``penelope``, ...) would run
    with silently unchanged results.  Comparing against the study's
    default spec pinpoints exactly the ineffective edits.
    """
    from repro.config.specs import spec_differences

    default = default_study_spec(spec.study)
    bound = set(study.spec_paths.values())
    ignored = []
    for section in ("processor", "protection", "workload"):
        for leaf in spec_differences(getattr(spec, section),
                                     getattr(default, section)):
            path = f"{section}.{leaf}"
            if path not in bound:
                ignored.append(path)
    if ignored:
        raise SpecError(
            f"study {spec.study!r} does not consume these edited spec "
            f"field(s): {', '.join(ignored)}; it reads only: "
            f"{', '.join(sorted(bound))}. Remove the edits (they would "
            f"have no effect on this study) or drive the construction "
            f"directly via repro.api.build_core/build_penelope"
        )


def run_study(spec: StudySpec, *, store=None, workers: Optional[int] = None,
              progress: Optional[Callable] = None):
    """Run a :class:`StudySpec` through the experiment engine.

    Returns the engine's :class:`~repro.experiments.runner.SweepResult`.
    Each point result exposes both metric views: ``result.metrics`` is
    the legacy flat dict (what the store persists, key-for-key
    bit-identical to pre-metrics releases) and ``result.metric_tree``
    is the typed :class:`~repro.metrics.stats.MetricSet` (Ratio /
    Derived stats intact on fresh executions, value-typed on cache
    hits).  ``store=None`` disables result caching (pass a
    :class:`~repro.experiments.store.ResultStore` to enable it);
    ``workers`` defaults to ``spec.workers``.
    """
    from repro.experiments import SweepRunner

    sweep = study_sweep_spec(spec)
    runner = SweepRunner(
        store=store,
        workers=workers if workers is not None else spec.workers,
        progress=progress,
    )
    return runner.run(sweep)


def default_study_spec(study_name: str) -> StudySpec:
    """The :class:`StudySpec` equivalent to a study's flat defaults.

    Resolving it through :func:`study_sweep_spec` reproduces the
    registered defaults exactly, so ``run_study(default_study_spec(s))``
    equals a default legacy sweep of ``s``.
    """
    from repro.config.registry import registry_for_structure
    from repro.experiments import get_study

    study = get_study(study_name)
    spec = StudySpec(study=study_name)
    # Mechanism *names* first: which params a slot accepts depends on
    # the scheme selected there.
    ordered = sorted(study.spec_paths.items(),
                     key=lambda item: 0 if item[1].endswith(".name") else 1)
    for param, path in ordered:
        default = study.defaults[param]
        if path == "workload.suites":
            # Scalar per-suite defaults ("suite") wrap into a 1-tuple;
            # multiprogram defaults ("suites") are already sequences.
            if not isinstance(default, (list, tuple)):
                default = (default,)
            spec = with_path(spec, path, tuple(default))
            continue
        if ".params." in path:
            mech_path, _, param_name = path.rpartition(".params.")
            mechanism = resolve_path(spec, mech_path)
            registry = registry_for_structure(mech_path.rsplit(".", 1)[-1])
            if param_name not in registry.accepted_params(mechanism.name):
                continue  # e.g. dyn_* knobs while the scheme is fixed
        spec = with_path(spec, path, default)
    return spec


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def load_study_spec(path: str) -> StudySpec:
    """Read a :class:`StudySpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return StudySpec.from_json(handle.read())


def save_study_spec(spec: StudySpec, path: str) -> None:
    """Write a :class:`StudySpec` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spec.to_json() + "\n")


def sweep_from_payload(payload: Any):
    """A StudySpec *or* SweepSpec JSON payload → the engine's SweepSpec.

    The sweep service's submit path: clients may POST either spec
    surface, and both round-trip through the exact facade the CLI uses,
    so service-submitted points hash identically to batch-run points
    and share the result cache.  SweepSpec payloads are recognised by
    their ``base``/``grid`` keys; anything else is parsed as a
    :class:`StudySpec` and expanded via :func:`study_sweep_spec`.

    Raises :class:`~repro.config.specs.SpecError` (or ``KeyError`` for
    an unknown study) on malformed payloads — callers map those to
    client errors.
    """
    from collections.abc import Mapping as ABCMapping

    from repro.experiments import SweepSpec, get_study

    if not isinstance(payload, ABCMapping):
        raise SpecError(
            f"spec payload must be a JSON object, got "
            f"{type(payload).__name__}")
    if "study" not in payload:
        raise SpecError("spec payload needs a 'study' field")
    if "base" in payload or "grid" in payload:
        extra = set(payload) - {"study", "base", "grid", "size"}
        if extra:
            raise SpecError(
                f"unexpected sweep-payload fields: {sorted(extra)}")
        sweep = SweepSpec.from_payload(dict(payload))
        # Resolve the study now: a submit-time 400 beats a job that
        # only fails once it reaches the executor.
        get_study(sweep.study)
        return sweep
    spec = StudySpec.from_dict(dict(payload))
    return study_sweep_spec(spec)
