"""Property-based tests on the stateful structures (cache, scheduler,
register file) — the invariants every mechanism relies on."""

from hypothesis import given, settings, strategies as st

from repro.uarch.cache import Cache, CacheConfig, LineState
from repro.uarch.regfile import RegisterFile
from repro.uarch.scheduler import Scheduler
from repro.uarch.uop import SCHEDULER_LAYOUT

CONFIG = CacheConfig(name="prop-2K-4w", size_bytes=2048, ways=4,
                     line_bytes=64)

addresses = st.integers(min_value=0, max_value=1 << 20)


class TestCacheInvariants:
    @settings(max_examples=50, deadline=None)
    @given(stream=st.lists(addresses, min_size=1, max_size=200))
    def test_lru_stack_is_always_a_permutation(self, stream):
        cache = Cache(CONFIG)
        for address in stream:
            cache.access(address)
        for set_index in range(CONFIG.sets):
            stack = [cache.lru_position(set_index, p)
                     for p in range(CONFIG.ways)]
            assert sorted(stack) == list(range(CONFIG.ways))

    @settings(max_examples=50, deadline=None)
    @given(stream=st.lists(addresses, min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, stream):
        cache = Cache(CONFIG)
        for address in stream:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(stream)

    @settings(max_examples=50, deadline=None)
    @given(stream=st.lists(addresses, min_size=1, max_size=100))
    def test_immediate_reaccess_always_hits(self, stream):
        cache = Cache(CONFIG)
        for address in stream:
            cache.access(address)
            assert cache.probe(address)

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(addresses, min_size=1, max_size=100),
        inversions=st.lists(
            st.tuples(st.integers(0, CONFIG.sets - 1),
                      st.integers(0, CONFIG.ways - 1)),
            max_size=20,
        ),
    )
    def test_inverted_count_matches_states(self, stream, inversions):
        cache = Cache(CONFIG)
        for (set_index, way), address in zip(inversions, stream):
            cache.access(address)
            cache.invert_line(set_index, way)
        counted = sum(
            1
            for s in range(CONFIG.sets)
            for w in range(CONFIG.ways)
            if cache.line_state(s, w) is LineState.INVERTED
        )
        assert cache.inverted_count() == counted


class TestSchedulerInvariants:
    field_names = list(SCHEDULER_LAYOUT.fields())

    @settings(max_examples=50, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.sampled_from(field_names),
                st.integers(min_value=0, max_value=(1 << 32) - 1),
            ),
            min_size=1, max_size=40,
        )
    )
    def test_field_roundtrip_through_flattened_row(self, writes):
        sched = Scheduler(entries=2)
        slot = sched.allocate(0.0)
        now = 0.0
        expected = {}
        for name, raw in writes:
            width = SCHEDULER_LAYOUT.fields()[name]
            value = raw & ((1 << width) - 1)
            now += 1.0
            sched.set_field(slot, name, value, now)
            expected[name] = value
        for name, value in expected.items():
            assert sched.field_value(slot, name) == value

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_allocation_never_double_books(self, data):
        sched = Scheduler(entries=4)
        live = set()
        now = 0.0
        for __ in range(30):
            now += 1.0
            if data.draw(st.booleans()) and len(live) < 4:
                slot = sched.allocate(now)
                assert slot is not None
                assert slot not in live
                live.add(slot)
            elif live:
                slot = data.draw(st.sampled_from(sorted(live)))
                sched.release(slot, now)
                live.discard(slot)
        assert sum(sched.is_busy(s) for s in range(4)) == len(live)


class TestRegisterFileInvariants:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_free_list_conservation(self, data):
        rf = RegisterFile(entries=6, width=8)
        live = set()
        now = 0.0
        for __ in range(40):
            now += 1.0
            if data.draw(st.booleans()):
                entry = rf.allocate(now)
                if entry is not None:
                    assert entry not in live
                    live.add(entry)
                    rf.write(entry, data.draw(st.integers(0, 255)), now)
                else:
                    assert len(live) == 6
            elif live:
                entry = data.draw(st.sampled_from(sorted(live)))
                rf.release(entry, now)
                live.discard(entry)
        busy = sum(rf.is_busy(e) for e in range(6))
        assert busy == len(live)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=255),
                        min_size=1, max_size=20)
    )
    def test_read_returns_last_write(self, values):
        rf = RegisterFile(entries=2, width=8)
        entry = rf.allocate(0.0)
        for index, value in enumerate(values):
            rf.write(entry, value, float(index + 1))
            assert rf.read(entry) == value
