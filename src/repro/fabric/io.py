"""Crash-safe file primitives shared by the sweep fabric.

Every durable byte the fabric writes goes through one of two idioms:

* :func:`append_record` — a single ``os.write`` on an ``O_APPEND`` fd.
  POSIX guarantees the kernel serialises such writes, so concurrent
  workers appending to the same shard never interleave partial lines,
  and a crash can tear at most the final line of a file (which loaders
  detect and skip).
* :func:`atomic_write_text` / :func:`atomic_write_json` — write to a
  temp file in the same directory, then ``os.replace`` over the target.
  Readers see either the old journal or the new one, never a torn mix.

Lint rule FAB001 flags any other write path inside ``repro/fabric/``
and ``experiments/store.py``; this module is the sanctioned exception.
"""

from __future__ import annotations

import json
import os
from typing import Any, Tuple

__all__ = ["append_record", "atomic_write_text", "atomic_write_json"]


def append_record(path: str, data: bytes) -> Tuple[int, int]:
    """Append ``data`` to ``path`` with a single atomic ``os.write``.

    Returns ``(offset, end)`` — the byte range the record occupies.
    With ``O_APPEND`` the kernel picks the offset at write time, so the
    range is exact even when other processes append concurrently: the
    file position after the write is ``end`` and our bytes are the
    ``len(data)`` immediately before it.

    Raises ``OSError`` on a short write (the caller's record would be
    torn; better to fail loudly than index a half-line).
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        written = os.write(fd, data)
        if written != len(data):
            raise OSError(
                f"short write to {path}: {written} of {len(data)} bytes"
            )
        end = os.lseek(fd, 0, os.SEEK_CUR)
    finally:
        os.close(fd)
    return end - len(data), end


def atomic_write_text(path: str, text: str) -> None:
    """Replace ``path`` with ``text`` via temp-file + ``os.replace``.

    The temp file lives in the target directory so the rename never
    crosses a filesystem boundary (which would lose atomicity).
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.{os.getpid()}.tmp"
    )
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        data = text.encode("utf-8")
        written = os.write(fd, data)
        if written != len(data):
            raise OSError(
                f"short write to {tmp}: {written} of {len(data)} bytes"
            )
    finally:
        os.close(fd)
    try:
        os.replace(tmp, path)
    except OSError:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: Any) -> None:
    """Atomically serialise ``payload`` as pretty JSON at ``path``."""
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    atomic_write_text(path, text + "\n")
