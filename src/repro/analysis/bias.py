"""Bias aggregation helpers."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def merge_bias_arrays(
    arrays: Sequence[np.ndarray],
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Weighted average of per-bit bias vectors across traces.

    Weights default to uniform; for residency statistics, pass the
    simulated cycle counts so longer traces count proportionally.
    """
    if not arrays:
        raise ValueError("need at least one bias array")
    widths = {a.shape for a in arrays}
    if len(widths) != 1:
        raise ValueError(f"bias arrays have mismatched shapes: {widths}")
    if weights is None:
        weights = [1.0] * len(arrays)
    if len(weights) != len(arrays):
        raise ValueError("weights and arrays must have the same length")
    total_weight = float(sum(weights))
    if total_weight <= 0.0:
        raise ValueError("weights must sum to a positive value")
    merged = np.zeros_like(arrays[0], dtype=np.float64)
    for array, weight in zip(arrays, weights):
        merged += array * (weight / total_weight)
    return merged


def worst_imbalance(bias: np.ndarray) -> Tuple[int, float]:
    """(bit index, bias) of the most imbalanced position."""
    imbalance = np.maximum(bias, 1.0 - bias)
    index = int(np.argmax(imbalance))
    return index, float(bias[index])


def bias_band(bias: np.ndarray) -> Tuple[float, float]:
    """(min, max) bias across positions — Section 1.1's "65% to 90%"."""
    return float(np.min(bias)), float(np.max(bias))
