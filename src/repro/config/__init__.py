"""Declarative configuration: typed specs + mechanism registries.

One serialisable surface describes everything the repo can build:

- :mod:`repro.config.specs` — :class:`ProcessorSpec` (pipeline widths,
  register files, scheduler/MOB sizes, adder pool, DL0/DTLB geometry),
  :class:`ProtectionSpec` (per-structure mechanism by name + params),
  :class:`WorkloadSpec` (Table 1 suites, trace length, seed) and
  :class:`StudySpec` (a registered study whose sweep axes are spec
  field paths).  All round-trip through dicts/JSON and validate with
  helpful errors.
- :mod:`repro.config.registry` — string-keyed
  :class:`ComponentRegistry` instances mapping mechanism names
  (``line_fixed``, ``isv``, ``derived_policy``, ``idle_injection``, …)
  to factories, so new schemes plug in without touching construction
  code.

Specs are built into runtime objects by :mod:`repro.api`
(``build_core``, ``build_penelope``, ``run_study``).
"""

from repro.config.registry import (
    ADDER_MECHANISMS,
    CACHE_SCHEMES,
    ComponentRegistry,
    RF_PROTECTORS,
    SCHEDULER_PROTECTORS,
    registry_for_structure,
)
from repro.config.specs import (
    MISSING,
    CacheGeometrySpec,
    MechanismSpec,
    ProcessorSpec,
    ProtectionSpec,
    Spec,
    SpecError,
    StudySpec,
    TLBGeometrySpec,
    WorkloadSpec,
    resolve_path,
    with_path,
)

__all__ = [
    "ADDER_MECHANISMS",
    "CACHE_SCHEMES",
    "ComponentRegistry",
    "RF_PROTECTORS",
    "SCHEDULER_PROTECTORS",
    "registry_for_structure",
    "MISSING",
    "CacheGeometrySpec",
    "MechanismSpec",
    "ProcessorSpec",
    "ProtectionSpec",
    "Spec",
    "SpecError",
    "StudySpec",
    "TLBGeometrySpec",
    "WorkloadSpec",
    "resolve_path",
    "with_path",
]
