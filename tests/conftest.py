"""Shared fixtures.

Expensive artefacts (adder netlists, reference traces) are session-scoped
so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.circuits import build_ladner_fischer_adder
from repro.workloads import TraceGenerator


@pytest.fixture(scope="session")
def adder8():
    """A small 8-bit Ladner-Fischer adder for functional tests."""
    return build_ladner_fischer_adder(width=8)


@pytest.fixture(scope="session")
def adder32():
    """The paper's 32-bit adder (built once per session)."""
    return build_ladner_fischer_adder(width=32)


@pytest.fixture(scope="session")
def small_trace():
    """A short deterministic specint trace."""
    return TraceGenerator(seed=11).generate("specint2000", length=1500)


@pytest.fixture(scope="session")
def fp_trace():
    """A short deterministic FP-heavy trace."""
    return TraceGenerator(seed=11).generate("specfp2000", length=1500)
