"""Atomic sweep journal: what a run planned, for checkpoint/resume.

One JSON file per run (``journal-<run_id>.json`` in the store
directory) written with temp+rename, exactly like the PR 6 provenance
manifests: a resume must read either the complete plan or nothing — a
torn journal would silently re-plan the wrong batches, which is worse
than no journal at all.

The journal records the run's identity (``run_id``, the canonical spec
payload and its hash) and the batch plan (hash-range batches of point
keys with their fully-bound params).  Batch *state* deliberately lives
in the :class:`~repro.fabric.lease.LeaseBoard` — it changes thousands
of times per run and SQLite commits are durable; the journal is written
once at plan time, so ``repro sweep --resume RUN_ID`` re-plans from the
journal, verifies the spec hash, and asks the board which batches still
need work.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.experiments.spec import SweepSpec
from repro.fabric.io import atomic_write_json
from repro.obs.provenance import spec_hash

__all__ = [
    "JOURNAL_SCHEMA",
    "BatchPlan",
    "SweepJournal",
    "journal_path",
    "load_journal",
    "list_runs",
    "plan_batches",
]

JOURNAL_SCHEMA = "repro.journal/1"


@dataclass(frozen=True)
class BatchPlan:
    """One hash-range batch of pending points."""

    batch_id: str
    keys: Tuple[str, ...]
    params: Tuple[Dict[str, Any], ...]

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class SweepJournal:
    """The immutable plan of one fabric run."""

    run_id: str
    study: str
    spec_payload: Dict[str, Any]
    spec_hash: str
    store_dir: str
    batches: List[BatchPlan]
    cached: int = 0
    workers: int = 1
    batch_size: int = 1
    created: float = 0.0
    schema: str = JOURNAL_SCHEMA

    def spec(self) -> SweepSpec:
        """Reconstruct the sweep spec this run was planned from."""
        return SweepSpec.from_payload(self.spec_payload)

    def batch(self, batch_id: str) -> BatchPlan:
        for batch in self.batches:
            if batch.batch_id == batch_id:
                return batch
        raise KeyError(f"run {self.run_id} has no batch {batch_id!r}")

    @property
    def pending_points(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def verify(self) -> None:
        """Fail loudly if payload and recorded hash disagree.

        Catches a hand-edited or mixed-up journal before it can replay
        the wrong spec under a run_id that claims otherwise.
        """
        actual = spec_hash(self.spec_payload)
        if actual != self.spec_hash:
            raise ValueError(
                f"journal for run {self.run_id} is inconsistent: spec "
                f"payload hashes to {actual}, journal claims "
                f"{self.spec_hash}"
            )

    # -- serialisation --------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "study": self.study,
            "spec": self.spec_payload,
            "spec_hash": self.spec_hash,
            "store_dir": self.store_dir,
            "cached": self.cached,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "created": self.created,
            "batches": [
                {"id": b.batch_id, "keys": list(b.keys),
                 "params": [dict(p) for p in b.params]}
                for b in self.batches
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SweepJournal":
        if payload.get("schema") != JOURNAL_SCHEMA:
            raise ValueError(
                f"unsupported journal schema {payload.get('schema')!r} "
                f"(expected {JOURNAL_SCHEMA})"
            )
        batches = [
            BatchPlan(
                batch_id=b["id"],
                keys=tuple(b["keys"]),
                params=tuple(dict(p) for p in b["params"]),
            )
            for b in payload.get("batches", [])
        ]
        return cls(
            run_id=payload["run_id"],
            study=payload["study"],
            spec_payload=dict(payload["spec"]),
            spec_hash=payload["spec_hash"],
            store_dir=payload.get("store_dir", ""),
            batches=batches,
            cached=int(payload.get("cached", 0)),
            workers=int(payload.get("workers", 1)),
            batch_size=int(payload.get("batch_size", 1)),
            created=float(payload.get("created", 0.0)),
        )

    def save(self) -> str:
        path = journal_path(self.store_dir, self.run_id)
        atomic_write_json(path, self.to_payload())
        return path


def journal_path(directory: str, run_id: str) -> str:
    return os.path.join(directory, f"journal-{run_id}.json")


def load_journal(directory: str, run_id: str) -> SweepJournal:
    path = journal_path(directory, run_id)
    if not os.path.exists(path):
        known = ", ".join(list_runs(directory)) or "none"
        raise FileNotFoundError(
            f"no journal for run {run_id!r} in {directory} "
            f"(known runs: {known})"
        )
    with open(path) as handle:
        payload = json.load(handle)
    journal = SweepJournal.from_payload(payload)
    journal.verify()
    return journal


def list_runs(directory: str) -> List[str]:
    """Run ids with a journal in ``directory``, oldest first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    stamped = []
    for name in sorted(names):
        if name.startswith("journal-") and name.endswith(".json"):
            run_id = name[len("journal-"):-len(".json")]
            stamped.append(
                (os.path.getmtime(os.path.join(directory, name)), run_id)
            )
    return [run_id for __, run_id in sorted(stamped)]


def plan_batches(
    pending: List[Tuple[str, Dict[str, Any]]],
    batch_size: int,
) -> List[BatchPlan]:
    """Chunk pending ``(key, bound_params)`` pairs into hash-range
    batches.

    Sorting by content hash *is* the range partition: each batch owns a
    contiguous slice of key space, so any scheduler replanning the same
    pending set produces the same batches regardless of grid order.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ordered = sorted(pending, key=lambda item: item[0])
    total = len(ordered)
    count = math.ceil(total / batch_size) if total else 0
    batches = []
    for i in range(count):
        chunk = ordered[i * batch_size:(i + 1) * batch_size]
        batches.append(BatchPlan(
            batch_id=f"b{i:04d}",
            keys=tuple(key for key, __ in chunk),
            params=tuple(dict(params) for __, params in chunk),
        ))
    return batches
