"""Command-line interface: run the paper's studies from a shell.

Examples
--------
::

    python -m repro.cli physics --duty 0.7
    python -m repro.cli adder --utilization 0.21
    python -m repro.cli regfile --suites specint2000 office
    python -m repro.cli caches --size-kb 16 --ways 8
    python -m repro.cli penelope --length 5000
    python -m repro.cli list-suites
    python -m repro.cli sweep caches --grid ratio=0.4,0.5,0.6 \\
        --grid ways=4,8 --workers 4
    python -m repro.cli results --study caches
    python -m repro.cli show-config --study penelope > study.json
    python -m repro.cli run --config study.json --verbose
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import format_series, format_table
from repro.workloads import suite_names


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="record execution spans; writes spans.jsonl and a "
             "Perfetto-loadable trace.json next to the store",
    )
    parser.add_argument(
        "--progress", default=None, choices=("line", "json", "none"),
        help="per-point progress rendering (default: line when "
             "--verbose, else none)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress plan, progress, summary and footer output",
    )


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suites", nargs="+", default=["specint2000", "office"],
        choices=suite_names(), help="Table 1 suites to simulate",
    )
    parser.add_argument("--length", type=int, default=5000,
                        help="uops per trace")
    parser.add_argument("--seed", type=int, default=0)


def cmd_physics(args: argparse.Namespace) -> int:
    from repro.nbti.physics import ReactionDiffusionModel, steady_state_fill

    model = ReactionDiffusionModel()
    model.run_duty_cycle(args.duty, period=10.0, cycles=args.cycles)
    print(f"duty {args.duty:.0%}: transient fill {model.fill:.4f}, "
          f"steady state {steady_state_fill(args.duty):.4f}")
    series = {f"{d / 10:.0%}": steady_state_fill(d / 10)
              for d in range(0, 11)}
    print(format_series(series, title="steady-state N_IT fill vs duty",
                        percent=False))
    return 0


def cmd_adder(args: argparse.Namespace) -> int:
    from repro.circuits import build_ladner_fischer_adder
    from repro.core.combinational import (
        adder_guardband_study,
        search_best_pair,
    )

    adder = build_ladner_fischer_adder(width=args.width)
    print(f"built {args.width}-bit Ladner-Fischer adder: "
          f"{adder.gate_count} gates / {adder.pmos_count} PMOS")
    search = search_best_pair(adder)
    print(f"best idle pair: {search.best_pair} "
          f"(narrow fully-stressed fraction "
          f"{search.fractions()[search.best_pair]:.2%})")
    vectors = [(0x12345678 & ((1 << args.width) - 1), 42, 0)]
    study = adder_guardband_study(
        adder, vectors, utilizations=(args.utilization,),
        pair=search.best_pair,
    )
    print(format_series(study, title="guardband"))
    return 0


def cmd_regfile(args: argparse.Namespace) -> int:
    from repro import api
    from repro.config import MechanismSpec, ProtectionSpec
    from repro.workloads import TraceGenerator

    # ISV on both register files only; everything else unprotected.
    protection = ProtectionSpec(
        adder=MechanismSpec("none"),
        scheduler=MechanismSpec("none"),
        dl0=MechanismSpec("none"),
        dtlb=MechanismSpec("none"),
    )
    generator = TraceGenerator(seed=args.seed)
    rows = []
    for suite in args.suites:
        trace = generator.generate(suite, length=args.length)
        base = api.build_core().run(trace)
        prot = api.build_core(hooks=api.build_hooks(protection)).run(trace)
        rows.append([
            suite,
            f"{base.int_rf.worst_bias:.1%}",
            f"{prot.int_rf.worst_bias:.1%}",
            f"{base.int_rf.free_fraction:.0%}",
        ])
    print(format_table(
        ["suite", "worst bias (base)", "worst bias (ISV)", "free time"],
        rows, title="register-file ISV study (paper: 89.9% -> 48.5%)",
    ))
    return 0


def cmd_caches(args: argparse.Namespace) -> int:
    from repro import api
    from repro.config import (
        CacheGeometrySpec,
        MechanismSpec,
        SpecError,
        WorkloadSpec,
    )
    from repro.core.cache_like import run_cache_study

    try:
        config = CacheGeometrySpec(
            size_kb=args.size_kb, ways=args.ways
        ).to_cache_config()
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    streams = api.build_address_streams(WorkloadSpec(
        suites=tuple(args.suites), length=args.length * 3, seed=args.seed,
    ))
    rows = []
    for mechanism in (
        MechanismSpec("set_fixed", {"ratio": 0.5}),
        MechanismSpec("line_fixed", {"ratio": 0.5}),
        MechanismSpec("line_dynamic", {"ratio": 0.6, "warmup": 1000,
                                       "test_window": 1000,
                                       "period": 6000}),
    ):
        study = run_cache_study(
            config, lambda: api.build_scheme(mechanism), streams
        )
        rows.append([study.scheme_name, f"{study.mean_loss:.2%}",
                     f"{study.mean_inverted_ratio:.0%}"])
    print(format_table(
        ["scheme", "mean perf loss", "achieved invert ratio"],
        rows, title=f"cache inversion study on {config.name}",
    ))
    return 0


def cmd_penelope(args: argparse.Namespace) -> int:
    from repro import api
    from repro.config import WorkloadSpec

    workload_spec = WorkloadSpec(
        suites=tuple(args.suites), length=args.length,
        traces_per_suite=1, seed=args.seed,
    )
    workload = api.build_workload(workload_spec)
    report = api.build_penelope(seed=args.seed).evaluate(workload)
    rows = [
        [b.name, f"{b.guardband:.1%}", f"{b.efficiency:.2f}"]
        for b in report.block_costs
    ]
    rows.append(["penelope processor",
                 f"{report.processor.guardband:.1%}",
                 f"{report.efficiency:.2f}"])
    rows.append(["baseline (full guardband)", "20.0%",
                 f"{report.baseline_efficiency:.2f}"])
    print(format_table(["block", "guardband", "NBTIefficiency"], rows,
                       title="Penelope whole-processor study"))
    print(f"combined CPI {report.combined_cpi:.4f}; "
          f"INT bias {report.int_rf_bias[0]:.2f}->"
          f"{report.int_rf_bias[1]:.2f}")
    return 0


def cmd_list_suites(args: argparse.Namespace) -> int:
    from repro.workloads import SUITE_PROFILES, TABLE1_TRACE_COUNTS

    rows = [
        [name, str(TABLE1_TRACE_COUNTS[name]),
         SUITE_PROFILES[name].description]
        for name in suite_names()
    ]
    rows.append(["total", str(sum(TABLE1_TRACE_COUNTS.values())), ""])
    print(format_table(["suite", "traces", "description"], rows,
                       title="Table 1 benchmark suites"))
    return 0


def _fabric_store_dir(path: Optional[str]) -> str:
    """Sharded-store directory: ``--store`` or the default fabric dir."""
    from repro.experiments import default_store_path

    if path:
        return path
    return os.path.join(os.path.dirname(default_store_path()), "fabric")


def _run_sweep_and_report(spec, *, workers, store, verbose, group_by,
                          metrics_arg, agg, intro, title,
                          progress_mode=None, quiet=False,
                          trace=False, fabric=False, resume=None,
                          batch_size=None, lease_ttl=5.0) -> int:
    """Execute an expanded sweep and print plan, progress, summary,
    and footer — shared by ``sweep`` and ``run``."""
    from repro.experiments import (
        SweepRunner,
        default_store_path,
        format_summary,
    )
    from repro.obs.progress import SweepProgress

    # --quiet beats everything; otherwise an explicit --progress mode
    # beats the legacy --verbose spelling (which means "line").
    mode = ("none" if quiet
            else progress_mode or ("line" if verbose else "none"))
    progress = SweepProgress(spec.size, mode=mode)
    # Trace artefacts land next to the store (the run's natural output
    # directory), or next to the default store for --no-store runs.
    # `is not None`, not truthiness: an empty ResultStore is falsy
    # (it has __len__), but its path is still where artefacts belong.
    obs_dir = os.path.dirname(
        store.path if store is not None else default_store_path()) or "."
    trace_json = os.path.join(obs_dir, "trace.json")
    spans_path = os.path.join(obs_dir, "spans.jsonl")
    if trace:
        from repro.obs.trace import TRACER

        TRACER.enable()
    human = not quiet and mode != "json"

    if fabric:
        from repro.fabric.runner import FabricRunner

        # CLI fabric sweeps always spawn worker processes: the whole
        # point is that any single worker can die without taking the
        # run's progress with it.
        runner = FabricRunner(
            store, workers=workers, batch_size=batch_size,
            lease_ttl=lease_ttl, progress=progress.update,
            spawn_workers=True,
        )
    else:
        runner = SweepRunner(store=store, workers=workers,
                             progress=progress.update,
                             trace_path=trace_json if trace else None)
    progress.begin(
        run_id=resume if resume is not None else runner.run_id,
        store=store.path if store is not None else None)
    if human:
        print(f"{intro}: {spec.size} points over axes "
              f"{', '.join(spec.axis_names())} ({workers} worker"
              f"{'s' if workers != 1 else ''})")
    outcome = (runner.resume(resume) if resume is not None
               else runner.run(spec))

    if trace:
        from repro.obs.trace import (
            TRACER,
            export_chrome_trace,
            save_spans,
        )

        records = TRACER.records()
        save_spans(spans_path, records)
        events = export_chrome_trace(records, trace_json)
        if human:
            print(f"trace: {events} events -> {trace_json} "
                  f"(raw spans: {spans_path})")

    metrics = metrics_arg.split(",") if metrics_arg else ()
    if outcome.results and metrics:
        from repro.experiments import metric_names

        known_metrics = set(metric_names(outcome.results))
        bad = [m for m in metrics if m not in known_metrics]
        if bad:
            print(f"error: unknown metric(s) {', '.join(bad)}; "
                  f"available: {', '.join(sorted(known_metrics))}",
                  file=sys.stderr)
            return 2
    if mode == "json":
        import json

        print(json.dumps({
            "event": "summary",
            "points": len(outcome),
            "cache_hits": outcome.cache_hits,
            "executed": outcome.executed,
            "wall_time": round(outcome.wall_time, 6),
            "run_id": outcome.run_id,
            "manifest": outcome.manifest_path,
        }, sort_keys=True))
        return 0
    if quiet:
        return 0
    print(format_summary(
        outcome.results, group_by=group_by,
        metrics=metrics,
        agg=agg,
        title=title,
    ))
    print(f"{len(outcome)} points in {outcome.wall_time:.2f}s: "
          f"{outcome.cache_hits} cache hits, "
          f"{outcome.executed} executed"
          + ("" if store is not None else " (store disabled)"))
    slowest = outcome.slowest()
    if slowest is not None:
        print(f"slowest point: {slowest.point.describe()} "
              f"({slowest.elapsed:.2f}s, key {slowest.point.key[:10]})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import (
        PointExecutionError,
        ResultStore,
        SweepSpec,
        get_study,
        parse_grid_option,
    )
    from repro.fabric.runner import FabricIncompleteError

    if args.resume is not None:
        return _cmd_sweep_resume(args)

    # Positional and --study are two spellings of the same thing
    # (`repro sweep caches` / `repro sweep --study caches`).
    study_name = args.study if args.study is not None else args.study_opt
    if (args.study is not None and args.study_opt is not None
            and args.study != args.study_opt):
        print(f"error: positional study {args.study!r} conflicts with "
              f"--study {args.study_opt!r}; pass one of them",
              file=sys.stderr)
        return 2
    if study_name is None:
        print("error: pass a study to sweep (positional or --study); "
              "see `repro sweep --help` for the registered studies",
              file=sys.stderr)
        return 2
    try:
        study = get_study(study_name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        grid = {}
        for option in args.grid or []:
            key, values = parse_grid_option(option)
            if key in grid:
                raise ValueError(
                    f"grid axis {key!r} given twice; list every value "
                    f"in one option: --grid {key}=v1,v2"
                )
            grid[key] = values
        base = {"length": args.length, "seed": args.seed}
        if args.backend is not None:
            from repro.config.registry import KERNEL_BACKENDS

            if args.backend not in KERNEL_BACKENDS.names():
                raise ValueError(
                    f"unknown kernel backend {args.backend!r}; "
                    f"choose from {', '.join(KERNEL_BACKENDS.names())}"
                )
            base["backend"] = args.backend
        if "suite" in study.defaults:
            if "suite" in grid:
                if args.suites is not None:
                    raise ValueError(
                        "--suites conflicts with --grid suite=...; "
                        "use one of them"
                    )
            else:
                grid["suite"] = list(args.suites or suite_names())
        elif "suites" in study.defaults:
            if "suites" in grid:
                # --grid suites=a,b would sweep one SINGLE-program
                # point per value — silently dropping the interference
                # this study exists to measure.
                raise ValueError(
                    f"study {study_name!r} takes the whole program set "
                    f"as one point; --grid suites=... would sweep "
                    f"single-program points instead — pass the "
                    f"programs via --suites"
                )
            if args.suites is not None:
                # The whole suite list is ONE point parameter (the
                # programs sharing the cache), not a per-suite axis.
                base["suites"] = list(args.suites)
        spec = SweepSpec(study_name, base=base, grid=grid)

        # Group keys are fully known before execution (defaults + base
        # + grid); rejecting typos here saves the whole sweep's compute.
        group_by = (args.group_by.split(",") if args.group_by
                    else spec.axis_names())
        known_params = set(study.defaults) | set(base) | set(grid)
        bad_keys = [k for k in group_by if k not in known_params]
        if bad_keys:
            raise ValueError(
                f"unknown --group-by key(s) {', '.join(bad_keys)}; "
                f"available: {', '.join(sorted(known_params))}"
            )

        if args.fabric:
            if args.no_store:
                raise ValueError(
                    "--fabric needs the result store (it IS the "
                    "store); drop --no-store"
                )
            from repro.fabric.store import ShardedResultStore

            store = ShardedResultStore(_fabric_store_dir(args.store))
        else:
            store = None if args.no_store else ResultStore(args.store)
        return _run_sweep_and_report(
            spec,
            workers=args.workers,
            store=store,
            verbose=args.verbose,
            group_by=group_by,
            metrics_arg=args.metrics,
            agg=args.agg,
            intro=f"sweep {study_name!r}",
            title=f"sweep {study_name}: {study.description}",
            progress_mode=args.progress,
            quiet=args.quiet,
            trace=args.trace,
            fabric=args.fabric,
            batch_size=args.batch_size,
            lease_ttl=args.lease_ttl,
        )
    except FabricIncompleteError as exc:
        # The run stopped with durable state behind it — distinct exit
        # code so scripts can branch straight to `sweep --resume`.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (ValueError, KeyError, PointExecutionError) as exc:
        # Bad grid syntax, unknown scheme value, unknown suite passed
        # via --grid suite=..., workers < 1, a study raising inside a
        # point (PointExecutionError names the point and params), ...
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def _cmd_sweep_resume(args: argparse.Namespace) -> int:
    """``repro sweep --resume RUN_ID``: re-drive an interrupted run."""
    from repro.experiments import PointExecutionError, get_study
    from repro.fabric.journal import load_journal
    from repro.fabric.runner import FabricIncompleteError
    from repro.fabric.store import ShardedResultStore

    directory = _fabric_store_dir(args.store)
    try:
        journal = load_journal(directory, args.resume)
        study = get_study(journal.study)
        spec = journal.spec()
        if args.study is not None and args.study != journal.study:
            raise ValueError(
                f"--resume {args.resume} was planned for study "
                f"{journal.study!r}, not {args.study!r}"
            )
        store = ShardedResultStore(directory)
        return _run_sweep_and_report(
            spec,
            workers=args.workers,
            store=store,
            verbose=args.verbose,
            group_by=spec.axis_names(),
            metrics_arg=args.metrics,
            agg=args.agg,
            intro=f"resume {journal.study!r} run {args.resume}",
            title=f"sweep {journal.study}: {study.description} "
                  f"(resumed {args.resume})",
            progress_mode=args.progress,
            quiet=args.quiet,
            trace=args.trace,
            fabric=True,
            resume=args.resume,
            batch_size=args.batch_size,
            lease_ttl=args.lease_ttl,
        )
    except FabricIncompleteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (FileNotFoundError, ValueError, KeyError,
            PointExecutionError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def cmd_run(args: argparse.Namespace) -> int:
    """Run a serialized StudySpec (JSON) through the experiment engine."""
    from repro import api
    from repro.config import SpecError
    from repro.experiments import (
        PointExecutionError,
        ResultStore,
        get_study,
    )

    try:
        spec = api.load_study_spec(args.config)
    except OSError as exc:
        print(f"error: cannot read {args.config!r}: {exc.strerror}",
              file=sys.stderr)
        return 2
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.backend is not None:
            import dataclasses

            spec = dataclasses.replace(
                spec,
                processor=dataclasses.replace(
                    spec.processor, backend=args.backend
                ),
            )
        study = get_study(spec.study)
        sweep = api.study_sweep_spec(spec)
        store = None if args.no_store else ResultStore(args.store)
        return _run_sweep_and_report(
            sweep,
            workers=args.workers if args.workers else spec.workers,
            store=store,
            verbose=args.verbose,
            group_by=sweep.axis_names(),
            metrics_arg=args.metrics,
            agg=args.agg,
            intro=f"study {spec.study!r} from {args.config}",
            title=f"study {spec.study}: {study.description}",
            progress_mode=args.progress,
            quiet=args.quiet,
            trace=args.trace,
        )
    except (SpecError, ValueError, KeyError,
            PointExecutionError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def _default_obs_dir() -> str:
    from repro.experiments import default_store_path

    return os.path.dirname(default_store_path()) or "."


def cmd_trace(args: argparse.Namespace) -> int:
    """Work with recorded observability artefacts.

    ``repro trace export OUT`` converts a raw span file (what
    ``repro sweep --trace`` writes next to the store) into Chrome
    trace-event JSON loadable in Perfetto / ``chrome://tracing``;
    ``repro trace events`` renders the structured event log as human
    lines.
    """
    if args.action == "export":
        from repro.obs.trace import export_chrome_trace, load_spans

        if not args.output:
            print("error: pass an output path: repro trace export "
                  "run.trace.json", file=sys.stderr)
            return 2
        spans_path = args.spans or os.path.join(
            _default_obs_dir(), "spans.jsonl")
        try:
            records = load_spans(spans_path)
        except OSError as exc:
            print(f"error: cannot read {spans_path!r}: {exc.strerror}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            events = export_chrome_trace(records, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: "
                  f"{exc.strerror}", file=sys.stderr)
            return 2
        print(f"wrote {events} trace events to {args.output} "
              f"(load in Perfetto or chrome://tracing)")
        return 0

    from repro.obs.log import read_events, render_event

    events_path = args.events or os.path.join(
        _default_obs_dir(), "events.jsonl")
    if getattr(args, "follow", False):
        # Follow mode tails forever (the file may not exist *yet* —
        # e.g. watching a directory a sweep is about to write into),
        # so a missing file is a wait, not an error.
        try:
            for record in read_events(events_path, level=args.level,
                                      run_id=args.run_id, follow=True):
                print(render_event(record), flush=True)
        except KeyboardInterrupt:
            return 0
        return 0
    if not os.path.exists(events_path):
        print(f"error: cannot read {events_path!r}: "
              f"No such file or directory", file=sys.stderr)
        return 2
    try:
        records = read_events(events_path, level=args.level,
                              run_id=args.run_id)
    except OSError as exc:
        print(f"error: cannot read {events_path!r}: {exc.strerror}",
              file=sys.stderr)
        return 2
    if args.limit > 0:
        records = records[-args.limit:]
    if not records:
        print(f"no events in {events_path}")
        return 0
    for record in records:
        print(render_event(record))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep service (HTTP + WebSocket, DESIGN.md §11)."""
    import asyncio

    from repro.service import SweepService

    token = args.token
    if token is None and args.token_env:
        token = os.environ.get(args.token_env) or None
    directory = _fabric_store_dir(args.store)
    service = SweepService(
        directory,
        host=args.host,
        port=args.port,
        token=token,
        max_jobs=args.max_jobs,
        default_workers=args.workers,
        default_fabric=args.fabric,
        drain_grace=args.drain_grace,
        ready_file=args.ready_file,
        quiet=args.quiet,
    )
    try:
        return asyncio.run(service.run())
    except KeyboardInterrupt:
        return 0


def _print_provenance(store_path: str) -> None:
    """One-line manifest header over stored results, when one exists.

    Best-effort on purpose: a missing or corrupt manifest must never
    block listing the results themselves.
    """
    from repro.obs.provenance import (
        describe_manifest,
        load_manifest,
        manifest_path_for,
    )

    path = manifest_path_for(store_path)
    if not os.path.exists(path):
        return
    try:
        print(describe_manifest(load_manifest(path)))
    except (OSError, ValueError):
        pass


def cmd_show_config(args: argparse.Namespace) -> int:
    """Print a study's default StudySpec as ready-to-edit JSON."""
    from repro import api

    try:
        spec = api.default_study_spec(args.study)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(spec.to_json())
    return 0


def cmd_bench_smoke(args: argparse.Namespace) -> int:
    """Execute every bench with scaled-down workloads (tier-2 smoke).

    ``pytest benchmarks/`` collects nothing (the files are named
    ``bench_*.py``), so without this entry point the benches only run
    when someone remembers to invoke them file by file — and rot.  The
    smoke run points pytest at the bench directory with the smoke/scale
    environment set, which shrinks every workload and relaxes the
    full-size shape assertions (see ``benchmarks/conftest.py``).
    """
    import os

    import pytest

    bench_dir = args.path
    if bench_dir is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        bench_dir = os.path.join(repo_root, "benchmarks")
    if not os.path.isdir(bench_dir):
        print(f"error: bench directory not found: {bench_dir}",
              file=sys.stderr)
        return 2
    if args.scale < 1:
        print("error: --scale must be >= 1", file=sys.stderr)
        return 2
    # Every key is assigned (or cleared) explicitly and restored after
    # the run, so repeated invocations in one process cannot inherit a
    # previous call's scale or artefact directory.
    overrides = {
        "REPRO_BENCH_SMOKE": "1",
        "REPRO_BENCH_SCALE": str(args.scale),
        "REPRO_BENCH_RESULTS_DIR": args.results_dir,
    }
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    # bench_*.py does not match pytest's default python_files pattern
    # (the very rot this command exists to prevent), so widen it.
    pytest_args = [
        bench_dir, "-q", "-p", "no:cacheprovider",
        "-o", "python_files=bench_*.py",
    ]
    if args.only:
        pytest_args += ["-k", args.only]
    try:
        return int(pytest.main(pytest_args))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def cmd_report(args: argparse.Namespace) -> int:
    """Render stored sweep results (or interval telemetry) as a report.

    Unlike ``repro results`` (a raw record listing), this renders the
    same aggregated view a live ``repro sweep`` prints — from the store
    alone, so any cached sweep can be re-reported without re-running
    anything.  With ``--intervals`` it instead renders an
    interval-telemetry JSON artefact (e.g. the one
    ``bench_perf_kernel.py`` emits) as per-interval bar series.
    """
    from repro.analysis import format_interval_report

    if args.intervals:
        from repro.metrics import load_interval_payload

        try:
            payload = load_interval_payload(args.intervals)
            # Render before printing: a broken output pipe (`| head`)
            # must not masquerade as a file-read error.
            rendered = format_interval_report(
                payload, metrics=args.metrics.split(",") if args.metrics
                else ())
        except OSError as exc:
            print(f"error: cannot read {args.intervals!r}: "
                  f"{exc.strerror}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(rendered)
        return 0

    if not args.study:
        print("error: pass --study NAME (or --intervals FILE)",
              file=sys.stderr)
        return 2
    from repro.experiments import (
        ExperimentPoint,
        PointResult,
        format_summary,
        metric_names,
    )
    from repro.experiments import default_store_path
    from repro.fabric import open_result_store

    store = open_result_store(args.store or default_store_path())
    records = store.records(study=args.study)
    if not records:
        print(f"no stored results for study {args.study!r} in "
              f"{store.path}", file=sys.stderr)
        return 1
    _print_provenance(store.path)
    results = [
        PointResult(
            point=ExperimentPoint.from_dict(record.study, record.params),
            metrics=dict(record.metrics),
            cached=True,
            elapsed=record.elapsed,
        )
        for record in records
    ]
    if args.group_by:
        group_by = args.group_by.split(",")
        known = {key for result in results for key in result.params}
        bad = [k for k in group_by if k not in known]
        if bad:
            print(f"error: unknown --group-by key(s) {', '.join(bad)}; "
                  f"available: {', '.join(sorted(known))}",
                  file=sys.stderr)
            return 2
    else:
        group_by = _varying_params(results)
    metrics = args.metrics.split(",") if args.metrics else ()
    if metrics:
        known_metrics = set(metric_names(results))
        bad = [m for m in metrics if m not in known_metrics]
        if bad:
            print(f"error: unknown metric(s) {', '.join(bad)}; "
                  f"available: {', '.join(sorted(known_metrics))}",
                  file=sys.stderr)
            return 2
    print(format_summary(
        results, group_by=group_by, metrics=metrics, agg=args.agg,
        title=f"report {args.study}: {len(results)} stored points "
              f"({store.path})",
    ))
    return 0


def _varying_params(results) -> List[str]:
    """Parameters whose values differ across the results (sorted) —
    the natural grouping axes of a stored sweep."""
    seen: dict = {}
    for result in results:
        for key, value in result.params.items():
            seen.setdefault(key, set()).add(repr(value))
    return sorted(key for key, values in seen.items() if len(values) > 1)


def cmd_results(args: argparse.Namespace) -> int:
    from repro.experiments import default_store_path
    from repro.fabric import open_result_store

    store = open_result_store(args.store or default_store_path())
    records = store.records(study=args.study)
    if args.limit > 0:
        records = records[-args.limit:]
    if not records:
        print(f"no stored results in {store.path}")
        return 0
    _print_provenance(store.path)
    rows = []
    for record in records:
        metrics = ", ".join(
            f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(record.metrics.items())
        )
        params = " ".join(
            f"{k}={v}" for k, v in sorted(record.params.items())
        )
        rows.append([record.key[:10], record.study, params, metrics])
    print(format_table(
        ["key", "study", "params", "metrics"], rows,
        title=f"{len(records)} stored results ({store.path})",
    ))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """AST invariant checks.  Exit 0 clean / 1 violations / 2 error."""
    from repro.lint import (
        LintError,
        default_rules,
        render_json,
        render_text,
        run_lint,
    )

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.description}")
        return 0
    paths = args.paths
    if not paths:
        # default target: the installed package sources
        paths = [os.path.dirname(os.path.abspath(__file__))]
    try:
        report = run_lint(paths, rules=args.rule)
    except LintError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    except (OSError, RecursionError) as exc:
        print(f"lint internal error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report, strict=args.strict))
    else:
        print(render_text(report, strict=args.strict))
    return report.exit_code(strict=args.strict)


def cmd_store_info(args: argparse.Namespace) -> int:
    """Describe a sharded store: counts, layout, known runs."""
    from repro.fabric import ShardedResultStore, list_runs

    directory = _fabric_store_dir(args.store)
    try:
        store = ShardedResultStore(directory)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        stats = store.stats()
        print(f"directory: {stats['directory']}")
        print(f"schema: {stats['schema']}")
        print(f"records: {stats['records']}")
        print(f"shards: {stats['shards']}")
        print(f"bytes: {stats['bytes']}")
        if stats["skipped_lines"]:
            print(f"skipped lines: {stats['skipped_lines']}")
        runs = list_runs(directory)
        print(f"runs: {len(runs)}")
        for run_id in runs:
            print(f"  {run_id}")
    finally:
        store.close()
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    """Rewrite shards keeping only the live record per key."""
    from repro.fabric import ShardedResultStore

    directory = _fabric_store_dir(args.store)
    try:
        store = ShardedResultStore(directory)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        stats = store.compact()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        store.close()
    print(f"compacted {directory}")
    print(f"records: {stats.records}")
    print(f"bytes: {stats.bytes_before} -> {stats.bytes_after} "
          f"(reclaimed {stats.reclaimed})")
    print(f"dropped lines: {stats.dropped_lines}")
    return 0


def cmd_store_migrate(args: argparse.Namespace) -> int:
    """Import a flat JSONL store into a sharded indexed store."""
    from repro.fabric import ShardedResultStore

    if not os.path.exists(args.source):
        print(f"error: flat store {args.source!r} does not exist",
              file=sys.stderr)
        return 2
    try:
        store = ShardedResultStore(args.dest, shards=args.shards)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        imported = store.import_flat_store(args.source)
        total = len(store)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        store.close()
    print(f"migrated {imported} records from {args.source} "
          f"to {store.directory}")
    print(f"records: {total}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Penelope (MICRO 2007) reproduction studies",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    physics = commands.add_parser("physics", help="NBTI physics curves")
    physics.add_argument("--duty", type=float, default=0.7)
    physics.add_argument("--cycles", type=int, default=100)
    physics.set_defaults(func=cmd_physics)

    adder = commands.add_parser("adder", help="adder aging study")
    adder.add_argument("--width", type=int, default=32)
    adder.add_argument("--utilization", type=float, default=0.21)
    adder.set_defaults(func=cmd_adder)

    regfile = commands.add_parser("regfile", help="register-file ISV study")
    _add_workload_arguments(regfile)
    regfile.set_defaults(func=cmd_regfile)

    caches = commands.add_parser("caches", help="cache inversion study")
    _add_workload_arguments(caches)
    caches.add_argument("--size-kb", type=int, default=16)
    caches.add_argument("--ways", type=int, default=8)
    caches.set_defaults(func=cmd_caches)

    penelope = commands.add_parser("penelope",
                                   help="whole-processor study")
    _add_workload_arguments(penelope)
    penelope.set_defaults(func=cmd_penelope)

    list_suites = commands.add_parser(
        "list-suites", help="list the Table 1 benchmark suites")
    list_suites.set_defaults(func=cmd_list_suites)

    # Hardcoded (not study_names()) so `repro physics` etc. don't pay
    # the experiments-subsystem import; a CLI test keeps it in sync.
    sweep = commands.add_parser(
        "sweep",
        help="expand a parameter grid and run it through the "
             "experiment engine",
        epilog="registered studies: caches, invert_ratio, multiprog, "
               "penelope, regfile, victim_policy, vmin_power",
    )
    # Validated in cmd_sweep (not argparse choices) so a typo gets the
    # same `error: unknown study ...` shape as other sweep errors.
    sweep.add_argument("study", nargs="?", default=None,
                       help="registered study to sweep")
    sweep.add_argument("--study", dest="study_opt", default=None,
                       metavar="NAME",
                       help="alternative spelling of the positional "
                            "study argument")
    sweep.add_argument(
        "--grid", action="append", metavar="KEY=V1,V2",
        help="one grid axis; repeatable (e.g. --grid ratio=0.4,0.5)",
    )
    sweep.add_argument(
        "--suites", nargs="+", default=None,
        choices=suite_names(),
        help="suite axis of the grid (default: all Table 1 suites; "
             "conflicts with --grid suite=...)",
    )
    sweep.add_argument("--length", type=int, default=6000,
                       help="trace / address-stream length per point")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--backend", default=None, metavar="NAME",
                       help="kernel backend for every point (reference "
                            "or vectorized; default: the study's "
                            "default, reference)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="process count (1 = serial)")
    sweep.add_argument("--store", default=None, metavar="PATH",
                       help="result store path (default: "
                            "benchmarks/results/store.jsonl)")
    sweep.add_argument("--no-store", action="store_true",
                       help="disable the result cache for this sweep")
    sweep.add_argument("--group-by", default=None, metavar="K1,K2",
                       help="summary grouping axes (default: grid axes)")
    sweep.add_argument("--metrics", default=None, metavar="M1,M2",
                       help="metrics to show (default: all)")
    sweep.add_argument("--agg", default="mean",
                       choices=("mean", "min", "max"))
    sweep.add_argument("--verbose", action="store_true",
                       help="print one progress line per point")
    sweep.add_argument(
        "--fabric", action="store_true",
        help="run through the resumable sweep fabric: sharded indexed "
             "store, journaled plan, lease-based worker processes "
             "(--store names the store DIRECTORY; default: "
             "benchmarks/results/fabric)")
    sweep.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted fabric run from its journal "
             "(re-executes only unfinished batches; implies --fabric)")
    sweep.add_argument("--batch-size", type=int, default=None,
                       metavar="N",
                       help="points per fabric lease batch (default: "
                            "~4 batches per worker)")
    sweep.add_argument("--lease-ttl", type=float, default=5.0,
                       metavar="SECONDS",
                       help="fabric lease TTL before an unheartbeated "
                            "batch can be stolen (default: 5)")
    _add_observability_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    run = commands.add_parser(
        "run",
        help="run a declarative study config (JSON StudySpec) through "
             "the experiment engine",
        epilog="write a starting config with: repro show-config "
               "--study caches > study.json",
    )
    run.add_argument("--config", required=True, metavar="PATH",
                     help="JSON StudySpec file (see `repro show-config`)")
    run.add_argument("--backend", default=None, metavar="NAME",
                     help="override the spec's processor.backend "
                          "(reference or vectorized)")
    run.add_argument("--workers", type=int, default=0,
                     help="process count (default: the spec's "
                          "`workers` field)")
    run.add_argument("--store", default=None, metavar="PATH",
                     help="result store path (default: "
                          "benchmarks/results/store.jsonl)")
    run.add_argument("--no-store", action="store_true",
                     help="disable the result cache for this run")
    run.add_argument("--metrics", default=None, metavar="M1,M2",
                     help="metrics to show (default: all)")
    run.add_argument("--agg", default="mean",
                     choices=("mean", "min", "max"))
    run.add_argument("--verbose", action="store_true",
                     help="print one progress line per point")
    _add_observability_arguments(run)
    run.set_defaults(func=cmd_run)

    show_config = commands.add_parser(
        "show-config",
        help="print a study's default declarative config as JSON",
    )
    show_config.add_argument("--study", default="penelope",
                             help="registered study (default: penelope)")
    show_config.add_argument(
        "--defaults", action="store_true",
        help="accepted for clarity; defaults are all this command prints",
    )
    show_config.set_defaults(func=cmd_show_config)

    bench_smoke = commands.add_parser(
        "bench-smoke",
        help="execute every benchmark with tiny workloads (rot check)",
    )
    bench_smoke.add_argument(
        "--scale", type=int, default=10,
        help="workload divisor applied to every bench (default 10)",
    )
    bench_smoke.add_argument(
        "--path", default=None, metavar="DIR",
        help="bench directory (default: <repo>/benchmarks)",
    )
    bench_smoke.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="artefact directory (default: benchmarks/results-scaled)",
    )
    bench_smoke.add_argument(
        "--only", default=None, metavar="EXPR",
        help="pytest -k expression selecting a subset of benches",
    )
    bench_smoke.set_defaults(func=cmd_bench_smoke)

    trace = commands.add_parser(
        "trace",
        help="export recorded spans as Chrome trace JSON, or render "
             "the structured event log",
        epilog="examples: repro sweep caches --trace; repro trace "
               "export run.trace.json; repro trace events --limit 20",
    )
    trace.add_argument("action", choices=("export", "events"),
                       help="export: spans -> Chrome trace JSON; "
                            "events: render events.jsonl")
    trace.add_argument("output", nargs="?", default=None,
                       help="Chrome trace JSON output path (export)")
    trace.add_argument("--spans", default=None, metavar="FILE",
                       help="raw span file (default: spans.jsonl next "
                            "to the default store)")
    trace.add_argument("--events", default=None, metavar="FILE",
                       help="event log file (default: events.jsonl "
                            "next to the default store)")
    trace.add_argument("--level", default=None,
                       choices=("debug", "info", "warning", "error"),
                       help="minimum level to show (events)")
    trace.add_argument("--run-id", default=None, dest="run_id",
                       help="only this run's events")
    trace.add_argument("--limit", type=int, default=0,
                       help="show only the newest N events")
    trace.add_argument("--follow", action="store_true",
                       help="keep tailing the event log as it grows "
                            "(events; Ctrl-C to stop)")
    trace.set_defaults(func=cmd_trace)

    results = commands.add_parser(
        "results", help="list cached sweep results")
    results.add_argument("--study", default=None,
                         help="only this study's records")
    results.add_argument("--store", default=None, metavar="PATH")
    results.add_argument("--limit", type=int, default=0,
                         help="show only the newest N records")
    results.set_defaults(func=cmd_results)

    report = commands.add_parser(
        "report",
        help="render stored sweep results (or interval telemetry) as "
             "an aggregated report",
        epilog="examples: repro report --study caches --group-by ratio; "
               "repro report --intervals "
               "benchmarks/results/perf_metrics_intervals.json",
    )
    report.add_argument("--study", default=None,
                        help="render this study's stored records")
    report.add_argument("--store", default=None, metavar="PATH",
                        help="result store path (default: "
                             "benchmarks/results/store.jsonl)")
    report.add_argument("--group-by", default=None, metavar="K1,K2",
                        help="grouping axes (default: every parameter "
                             "that varies across the records)")
    report.add_argument("--metrics", default=None, metavar="M1,M2",
                        help="metrics to show (default: all; with "
                             "--intervals: all active counters)")
    report.add_argument("--agg", default="mean",
                        choices=("mean", "min", "max"))
    report.add_argument("--intervals", default=None, metavar="FILE",
                        help="render an interval-telemetry JSON "
                             "artefact as per-interval bars instead")
    report.set_defaults(func=cmd_report)

    lint = commands.add_parser(
        "lint",
        help="check the repo's reproducibility invariants "
             "(AST static analysis)",
        epilog="exit codes: 0 clean, 1 violations found, 2 internal "
               "error.  Suppress one finding with a trailing "
               "'# repro: noqa[RULE-ID]' comment.",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="IDS",
                      help="only run these rule ids (comma-separated, "
                           "repeatable) — e.g. --rule DET001,RST001")
    lint.add_argument("--format", default="text",
                      choices=("text", "json"),
                      help="output format (json is the CI artefact)")
    lint.add_argument("--strict", action="store_true",
                      help="warnings also fail the run (exit 1)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the ruleset and exit")
    lint.set_defaults(func=cmd_lint)

    serve = commands.add_parser(
        "serve",
        help="run the sweep service: submit/stream/query specs over "
             "HTTP + WebSocket",
        epilog="examples: repro serve --port 8765; "
               "REPRO_SERVICE_TOKEN=s3cret repro serve "
               "--token-env REPRO_SERVICE_TOKEN",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8765)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="sharded store directory (default: "
                            "benchmarks/results/fabric)")
    serve.add_argument("--workers", type=int, default=1,
                       help="default workers per job (default: 1)")
    serve.add_argument("--max-jobs", type=int, default=2,
                       dest="max_jobs",
                       help="concurrently executing jobs (default: 2)")
    serve.add_argument("--token", default=None,
                       help="require 'Authorization: Bearer TOKEN' "
                            "(prefer --token-env: argv leaks into ps)")
    serve.add_argument("--token-env", default="REPRO_SERVICE_TOKEN",
                       dest="token_env", metavar="VAR",
                       help="read the bearer token from this "
                            "environment variable when --token is "
                            "not given (default: REPRO_SERVICE_TOKEN)")
    serve.add_argument("--fabric", action="store_true",
                       help="run jobs under the fabric runner by "
                            "default (journaled, resumable)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       dest="drain_grace", metavar="SECONDS",
                       help="how long SIGTERM waits for running jobs "
                            "(default: 30)")
    serve.add_argument("--ready-file", default=None, dest="ready_file",
                       metavar="FILE",
                       help="write {url, pid, store} JSON here once "
                            "listening (ephemeral-port discovery)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the listening/drained lines")
    serve.set_defaults(func=cmd_serve)

    store_cmd = commands.add_parser(
        "store",
        help="inspect and maintain result stores (flat or sharded)",
        epilog="examples: repro store info; repro store migrate "
               "benchmarks/results/store.jsonl benchmarks/results/fabric; "
               "repro store compact",
    )
    store_actions = store_cmd.add_subparsers(dest="store_action",
                                             required=True)
    store_info = store_actions.add_parser(
        "info", help="record counts, shard layout, known runs")
    store_info.add_argument("--store", default=None, metavar="DIR",
                            help="sharded store directory (default: "
                                 "benchmarks/results/fabric)")
    store_info.set_defaults(func=cmd_store_info)
    store_compact = store_actions.add_parser(
        "compact",
        help="rewrite shards keeping only the live record per key")
    store_compact.add_argument("--store", default=None, metavar="DIR",
                               help="sharded store directory (default: "
                                    "benchmarks/results/fabric)")
    store_compact.set_defaults(func=cmd_store_compact)
    store_migrate = store_actions.add_parser(
        "migrate",
        help="import a flat JSONL store into a sharded indexed store")
    store_migrate.add_argument("source", metavar="FLAT_JSONL",
                               help="flat store file to import")
    store_migrate.add_argument("dest", metavar="DIR",
                               help="sharded store directory to create "
                                    "or extend")
    store_migrate.add_argument("--shards", type=int, default=16,
                               help="shard count for a new store "
                                    "(default: 16)")
    store_migrate.set_defaults(func=cmd_store_migrate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        return 0  # e.g. `repro list-suites | head`


if __name__ == "__main__":
    sys.exit(main())
