"""Property-based tests (hypothesis) on the core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.circuits import build_ladner_fischer_adder
from repro.core.metric import nbti_efficiency
from repro.core.policy import BitDirective, Technique, ideal_k, repair_bit
from repro.nbti.guardband import GuardbandModel
from repro.nbti.physics import ReactionDiffusionModel, steady_state_fill
from repro.uarch.bitbias import BitBiasAccumulator, pack_bits, unpack_bits

# A shared small adder: building it inside every example is wasteful.
_ADDER = build_ladner_fischer_adder(width=16)

duties = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPhysicsProperties:
    @given(duty=duties)
    def test_steady_state_within_unit_interval(self, duty):
        assert 0.0 <= steady_state_fill(duty) <= 1.0

    @given(a=duties, b=duties)
    def test_steady_state_monotonic(self, a, b):
        low, high = sorted((a, b))
        assert steady_state_fill(low) <= steady_state_fill(high)

    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1, max_size=20,
        )
    )
    def test_nit_never_leaves_bounds(self, durations):
        model = ReactionDiffusionModel()
        for index, duration in enumerate(durations):
            if index % 2 == 0:
                model.stress(duration)
            else:
                model.relax(duration)
            assert 0.0 <= model.nit <= model.n_max

    @given(
        stress=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        relax=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    )
    def test_relax_never_increases_nit(self, stress, relax):
        model = ReactionDiffusionModel()
        model.stress(stress)
        peak = model.nit
        model.relax(relax)
        assert model.nit <= peak


class TestGuardbandProperties:
    @given(duty=duties)
    def test_guardband_bounded(self, duty):
        model = GuardbandModel()
        assert (model.min_guardband
                <= model.guardband_for_duty(duty)
                <= model.worst_guardband)

    @given(bias=duties)
    def test_bias_symmetry(self, bias):
        model = GuardbandModel()
        assert math.isclose(
            model.guardband_for_bias(bias),
            model.guardband_for_bias(1.0 - bias),
            rel_tol=1e-9,
        )

    @given(a=duties, b=duties)
    def test_guardband_monotonic_in_duty(self, a, b):
        model = GuardbandModel()
        low, high = sorted((a, b))
        assert (model.guardband_for_duty(low)
                <= model.guardband_for_duty(high))


class TestMetricProperties:
    positive = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
    guardbands = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

    @given(delay=positive, guardband=guardbands, tdp=positive)
    def test_efficiency_positive(self, delay, guardband, tdp):
        assert nbti_efficiency(delay, guardband, tdp) > 0.0

    @given(delay=positive, guardband=guardbands, tdp=positive,
           factor=st.floats(min_value=1.0, max_value=4.0))
    def test_efficiency_monotonic_in_each_argument(self, delay, guardband,
                                                   tdp, factor):
        base = nbti_efficiency(delay, guardband, tdp)
        assert nbti_efficiency(delay * factor, guardband, tdp) >= base
        assert nbti_efficiency(delay, min(1.0, guardband * factor),
                               tdp) >= base - 1e-12
        assert nbti_efficiency(delay, guardband, tdp * factor) >= base


class TestPolicyProperties:
    fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

    @given(occupancy=fractions, bias=fractions)
    def test_ideal_k_in_unit_interval(self, occupancy, bias):
        assert 0.0 <= ideal_k(occupancy, bias) <= 1.0

    @given(occupancy=st.floats(min_value=0.51, max_value=0.99),
           bias=st.floats(min_value=0.5, max_value=1.0))
    def test_ideal_k_balances_zero_time(self, occupancy, bias):
        k = ideal_k(occupancy, bias)
        zero_time = occupancy * bias + (1.0 - occupancy) * (1.0 - k)
        # Either perfectly balanced, or K clamped at 1 because the busy
        # bias alone exceeds the 50% budget.
        assert zero_time >= 0.5 - 1e-9
        if k < 1.0:
            assert math.isclose(zero_time, 0.5, abs_tol=1e-9)

    @given(k=fractions, phase=st.floats(min_value=0.0, max_value=0.999))
    def test_repair_bit_always_binary(self, k, phase):
        for technique in (Technique.ALL1, Technique.ALL0,
                          Technique.ALL1_K, Technique.ALL0_K):
            value = repair_bit(BitDirective(technique, k), phase)
            assert value in (0, 1)


class TestBitPackingProperties:
    @given(value=st.integers(min_value=0, max_value=(1 << 80) - 1))
    def test_unpack_pack_roundtrip(self, value):
        assert pack_bits(unpack_bits(value, 80)) == value

    @given(
        values=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.floats(min_value=0.01, max_value=100.0),
            ),
            min_size=1, max_size=30,
        )
    )
    def test_accumulator_time_conservation(self, values):
        acc = BitBiasAccumulator(entries=1, width=8)
        now = 0.0
        for value, delta in values:
            now += delta
            acc.set_value(0, value, now)
        acc.finalize(now + 1.0)
        assert math.isclose(acc.total_observed_time(), (now + 1.0) * 8,
                            rel_tol=1e-9)
        bias = acc.bias_to_zero()
        assert all(0.0 <= b <= 1.0 for b in bias)


class TestAdderProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 16) - 1),
        b=st.integers(min_value=0, max_value=(1 << 16) - 1),
        cin=st.integers(min_value=0, max_value=1),
    )
    def test_addition_matches_reference(self, a, b, cin):
        total, cout = _ADDER.add(a, b, cin)
        reference = a + b + cin
        assert total == reference & 0xFFFF
        assert cout == reference >> 16

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_identity_and_complement(self, a):
        assert _ADDER.add(a, 0, 0) == (a, 0)
        ones = (1 << 16) - 1
        total, cout = _ADDER.add(a, ones ^ a, 1)
        assert (total, cout) == (0, 1)
