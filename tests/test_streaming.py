"""Streaming workload pipeline: bit-identity against materialised paths.

The streaming subsystem's contract is that laziness never changes a
number: generator-backed traces, chunked trace-file readers and
interleaved multiprogram streams must produce byte-for-byte the same
uops/addresses — and therefore bit-identical core metrics and cache
counters — as their materialised twins.
"""

import dataclasses

import pytest

from repro.config import SpecError, WorkloadSpec
from repro.uarch import TraceDrivenCore
from repro.uarch.cache import Cache, CacheConfig
from repro.workloads import (
    TraceGenerator,
    generate_address_stream,
    interleave,
    iter_address_stream,
    multiprog_address_stream,
    multiprog_uop_stream,
)

CONFIG = CacheConfig(name="DL0-8K-4w", size_bytes=8 * 1024, ways=4)


def uop_dicts(uops):
    return [dataclasses.asdict(u) for u in uops]


def assert_same_core_result(lhs, rhs):
    assert lhs.uops == rhs.uops
    assert lhs.cycles == rhs.cycles
    assert (lhs.dl0.hits, lhs.dl0.misses) == (rhs.dl0.hits, rhs.dl0.misses)
    assert (lhs.dtlb.hits, lhs.dtlb.misses) == (rhs.dtlb.hits,
                                                rhs.dtlb.misses)
    assert lhs.scheduler.occupancy == rhs.scheduler.occupancy
    assert lhs.int_rf.worst_bias == rhs.int_rf.worst_bias
    assert lhs.adder_samples == rhs.adder_samples


class TestGeneratorStreaming:
    def test_stream_equals_generate(self):
        gen = TraceGenerator(seed=11)
        trace = gen.generate("multimedia", length=700, trace_index=2)
        streamed = list(gen.stream("multimedia", length=700,
                                   trace_index=2))
        assert uop_dicts(trace) == uop_dicts(streamed)

    def test_stream_validates_eagerly(self):
        with pytest.raises(ValueError, match="length"):
            TraceGenerator().stream("office", length=0)
        with pytest.raises(KeyError):
            TraceGenerator().stream("no_such_suite")

    def test_iter_address_stream_equals_list(self):
        eager = generate_address_stream("kernels", length=900, seed=4,
                                        trace_index=1)
        lazy = list(iter_address_stream("kernels", length=900, seed=4,
                                        trace_index=1))
        assert eager == lazy

    def test_iter_address_stream_validates_eagerly(self):
        with pytest.raises(ValueError, match="length"):
            iter_address_stream("office", length=-1)

    def test_core_run_accepts_generator(self):
        gen = TraceGenerator(seed=3)
        materialised = TraceDrivenCore().run(
            gen.generate("specint2000", length=600))
        streamed = TraceDrivenCore().run(
            gen.stream("specint2000", length=600))
        assert_same_core_result(materialised, streamed)

    def test_core_run_empty_iterable(self):
        result = TraceDrivenCore().run(iter(()))
        assert result.uops == 0
        assert result.cycles == 1.0

    def test_cache_replay_accepts_generator(self):
        eager = Cache(CONFIG)
        eager.replay(generate_address_stream("office", length=1500,
                                             seed=9))
        lazy = Cache(CONFIG)
        lazy.replay(iter_address_stream("office", length=1500, seed=9))
        assert eager.stats.hits == lazy.stats.hits
        assert eager.stats.misses == lazy.stats.misses
        assert eager.stats.hit_way_position == lazy.stats.hit_way_position


class TestInterleave:
    def test_round_robin_order(self):
        merged = list(interleave([iter("AAAA"), iter("BB")],
                                 slice_length=2))
        assert merged == ["A", "A", "B", "B", "A", "A"]

    def test_conserves_elements(self):
        a, b, c = list(range(10)), list(range(100, 105)), []
        for policy in ("round_robin", "random_slice"):
            merged = list(interleave([a, b, c], policy=policy,
                                     slice_length=3, seed=1))
            assert sorted(merged) == sorted(a + b + c)

    def test_random_slice_deterministic_per_seed(self):
        streams = lambda: [iter(range(40)), iter(range(100, 140))]
        first = list(interleave(streams(), policy="random_slice",
                                slice_length=4, seed=7))
        again = list(interleave(streams(), policy="random_slice",
                                slice_length=4, seed=7))
        other = list(interleave(streams(), policy="random_slice",
                                slice_length=4, seed=8))
        assert first == again
        assert first != other
        assert sorted(first) == sorted(other)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="policy"):
            interleave([[1]], policy="zigzag")
        with pytest.raises(ValueError, match="slice_length"):
            interleave([[1]], slice_length=0)
        with pytest.raises(ValueError, match="at least one"):
            interleave([])


class TestMultiprogStreams:
    def test_duplicate_suites_are_distinct_programs(self):
        merged = list(multiprog_address_stream(
            ["office", "office"], length=400, seed=5))
        assert len(merged) == 800
        first = generate_address_stream("office", length=400, seed=5,
                                        trace_index=0)
        second = generate_address_stream("office", length=400, seed=5,
                                         trace_index=1)
        assert first != second
        assert sorted(merged) == sorted(first + second)

    def test_stream_equals_materialised_through_cache(self):
        kwargs = dict(length=600, seed=2, policy="random_slice",
                      slice_length=16)
        suites = ["specint2000", "multimedia", "server"]
        materialised = list(multiprog_address_stream(suites, **kwargs))
        eager = Cache(CONFIG)
        eager.replay(materialised)
        lazy = Cache(CONFIG)
        lazy.replay(multiprog_address_stream(suites, **kwargs))
        assert eager.stats.hits == lazy.stats.hits
        assert eager.stats.misses == lazy.stats.misses

    def test_uop_stream_drives_core(self):
        kwargs = dict(length=300, seed=6, slice_length=32)
        suites = ["office", "kernels"]
        stream = multiprog_uop_stream(suites, **kwargs)
        materialised = list(multiprog_uop_stream(suites, **kwargs))
        assert len(materialised) == 600
        lazy_run = TraceDrivenCore().run(stream)
        eager_run = TraceDrivenCore().run(materialised)
        assert_same_core_result(lazy_run, eager_run)

    def test_policies_reorder_but_preserve(self):
        rr = list(multiprog_address_stream(["office", "kernels"],
                                           length=300, seed=1))
        rs = list(multiprog_address_stream(["office", "kernels"],
                                           length=300, seed=1,
                                           policy="random_slice"))
        assert rr != rs
        assert sorted(rr) == sorted(rs)


class TestWorkloadSpecInterleave:
    def test_round_trip_and_defaults(self):
        spec = WorkloadSpec(suites=("office", "kernels"),
                            interleave="random_slice", slice_length=32)
        restored = WorkloadSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert WorkloadSpec().interleave == "none"

    def test_rejects_unknown_policy_and_bad_slice(self):
        with pytest.raises(SpecError, match="interleave"):
            WorkloadSpec(interleave="zigzag")
        with pytest.raises(SpecError, match="slice_length"):
            WorkloadSpec(slice_length=0)

    def test_build_multiprog_stream_matches_direct_call(self):
        from repro import api

        spec = WorkloadSpec(suites=("office", "kernels"), length=400,
                            seed=3, interleave="random_slice",
                            slice_length=8)
        via_api = list(api.build_multiprog_stream(spec))
        direct = list(multiprog_address_stream(
            ("office", "kernels"), length=400, seed=3,
            policy="random_slice", slice_length=8))
        assert via_api == direct


class TestMultiprogStudy:
    def test_point_runs_and_reports_interference(self):
        from repro.experiments import get_study

        study = get_study("multiprog")
        metrics = study.execute({"length": 500, "suites": ("office",
                                                           "kernels")})
        assert metrics["n_programs"] == 2
        assert 0.0 <= metrics["baseline_miss_rate"] <= 1.0
        assert metrics["scheme_name"] == "LineFixed50%"
        assert metrics["inverted_ratio"] > 0.0

    def test_point_is_deterministic(self):
        from repro.experiments import get_study

        study = get_study("multiprog")
        params = {"length": 400, "seed": 9, "policy": "random_slice"}
        assert study.execute(params) == study.execute(params)

    def test_scalar_suites_param_coerced(self):
        from repro.experiments import get_study

        metrics = get_study("multiprog").execute(
            {"length": 400, "suites": "office"})
        assert metrics["n_programs"] == 1

    def test_cli_sweep_multiprog(self, capsys):
        from repro.cli import main

        assert main(["sweep", "multiprog", "--grid", "ratio=0.4,0.6",
                     "--length", "400", "--no-store",
                     "--suites", "office", "kernels"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "LineFixed40%" in out and "LineFixed60%" in out

    def test_cli_sweep_rejects_suites_grid_axis(self, capsys):
        # --grid suites=a,b would sweep SINGLE-program points, silently
        # dropping the interference this study measures.
        from repro.cli import main

        assert main(["sweep", "multiprog",
                     "--grid", "suites=office,kernels",
                     "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "whole program set" in err and "--suites" in err

    def test_plain_workload_spec_runs_with_policy_fallback(self):
        # A StudySpec that never sets workload.interleave ("none") must
        # still run — falling back to round-robin like
        # api.build_multiprog_stream does.
        from repro import api
        from repro.config import StudySpec

        spec = StudySpec(
            "multiprog",
            workload=WorkloadSpec(suites=("office", "kernels"),
                                  length=400),
        )
        outcome = api.run_study(spec)
        assert len(outcome.results) == 1
        assert outcome.results[0].metrics["n_programs"] == 2
