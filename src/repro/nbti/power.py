"""Vmin-driven power model for memory-like structures.

The paper's second benefit (Section 1, Conclusions): mitigating NBTI
keeps the minimum retention voltage (Vmin) of SRAM from rising, so
"the supply voltage can be decreased ... for power savings" and the
structures reach "higher power efficiency".

This module prices that benefit with first-order SRAM energy physics:

- dynamic energy scales with C·V², so it follows (V/V_nom)²;
- leakage power scales roughly with V·exp(V/V_t-ish) — modelled here
  with the common quadratic-plus-linear fit, pessimistic for NBTI
  (i.e. the reported savings are conservative);
- the operating voltage of a voltage-scaled array is
  ``max(V_target, Vmin)``, and Vmin rises one-for-one with the worst
  bit cell's V_TH shift (:mod:`repro.nbti.guardband`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL, GuardbandModel

#: Nominal supply at which energies are normalised.
NOMINAL_VDD = 1.0

#: Nominal Vmin headroom: an undegraded array retains state down to
#: this fraction of the nominal supply (typical 65nm SRAM figure).
NOMINAL_VMIN = 0.70

#: Fraction of array power that is leakage at nominal conditions.
LEAKAGE_SHARE = 0.4


@dataclass(frozen=True)
class ArrayPowerModel:
    """First-order SRAM array power as a function of supply voltage."""

    nominal_vdd: float = NOMINAL_VDD
    nominal_vmin: float = NOMINAL_VMIN
    leakage_share: float = LEAKAGE_SHARE
    guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL

    def __post_init__(self) -> None:
        if not 0.0 < self.nominal_vmin < self.nominal_vdd:
            raise ValueError("need 0 < nominal_vmin < nominal_vdd")
        if not 0.0 <= self.leakage_share <= 1.0:
            raise ValueError("leakage_share must be within [0, 1]")

    # ------------------------------------------------------------------
    def vmin(self, worst_bias: float) -> float:
        """Retention voltage after lifetime degradation at ``worst_bias``.

        Vmin rises one-for-one (in fractions of the nominal supply) with
        the V_TH shift of the most stressed PMOS in the worst cell —
        Section 1's "10% Vmin increase may be required to tolerate 10%
        V_TH shifts".
        """
        shift = self.guardband_model.vmin_increase_for_bias(worst_bias)
        return self.nominal_vmin + shift * self.nominal_vdd

    def operating_voltage(self, worst_bias: float,
                          target_vdd: float) -> float:
        """Voltage a scaled array actually runs at: Vmin-floored."""
        if target_vdd <= 0.0:
            raise ValueError("target_vdd must be positive")
        return max(target_vdd, self.vmin(worst_bias))

    def relative_power(self, vdd: float) -> float:
        """Array power at ``vdd`` relative to nominal supply.

        Dynamic follows V²; leakage follows V² as well to first order
        (DIBL-dominated subthreshold leakage ~ V·e^(ηV) linearised) —
        kept separate so the shares can be re-weighted.
        """
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        scale = vdd / self.nominal_vdd
        dynamic = (1.0 - self.leakage_share) * scale ** 2
        leakage = self.leakage_share * scale ** 2
        return dynamic + leakage

    # ------------------------------------------------------------------
    def power_at_scaled_voltage(
        self, worst_bias: float, target_vdd: float
    ) -> float:
        """Power of an array asked to run at ``target_vdd``."""
        return self.relative_power(
            self.operating_voltage(worst_bias, target_vdd)
        )

    def savings_from_balancing(
        self,
        baseline_bias: float,
        protected_bias: float,
        target_vdd: float,
    ) -> float:
        """Relative power saved by balancing the array's bit cells.

        Both arrays are asked to scale to ``target_vdd``; the balanced
        one has the lower Vmin floor and therefore reaches a lower
        voltage.  Returns 1 - P_protected / P_baseline (0 when the
        target is above both floors).
        """
        baseline = self.power_at_scaled_voltage(baseline_bias, target_vdd)
        protected = self.power_at_scaled_voltage(protected_bias,
                                                 target_vdd)
        return 1.0 - protected / baseline
