"""The Penelope processor: whole-chip integration (Section 4.7).

Running every mechanism together:

- the adder injects the <0,0,0>/<1,1,1> pair during idle cycles,
- both register files run ISV at release,
- the scheduler applies the per-field policy at release,
- the DL0 and DTLB run a line-granularity inversion scheme,

and the block costs combine into the processor-level NBTIefficiency via
eqs. (2)–(4).  The paper's bottom line: Penelope 1.28 vs 1.73 for paying
the full guardband (inverting periodically cannot even cover the adder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from repro.circuits.ladner_fischer import (
    LadnerFischerAdder,
    build_ladner_fischer_adder,
)
from repro.core.cache_like import LineFixedScheme, ProtectedCache
from repro.core.combinational import IdleInputInjector
from repro.core.memory_like import (
    ISVRegisterFileProtector,
    SchedulerPolicy,
    SchedulerProfiler,
    SchedulerProtector,
    derive_scheduler_policy,
)
from repro.core.metric import (
    BlockCost,
    ProcessorCost,
    baseline_block_cost,
    nbti_efficiency,
)
from repro.metrics import MetricSet
from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL, GuardbandModel
from repro.uarch.backends import get_backend
from repro.uarch.core import (
    CompositeHooks,
    CoreConfig,
    CoreResult,
    TraceDrivenCore,
)
from repro.uarch.trace import Trace
from repro.uarch.uop import FP_WIDTH, INT_WIDTH


@dataclass
class PenelopeReport:
    """Measured outcome of a Penelope run over a workload."""

    baseline: List[CoreResult]
    protected: List[CoreResult]
    block_costs: List[BlockCost]
    processor: ProcessorCost
    baseline_processor: ProcessorCost
    adder_guardband: float
    int_rf_bias: Tuple[float, float]  # (baseline worst, protected worst)
    fp_rf_bias: Tuple[float, float]
    scheduler_bias: Tuple[float, float]
    combined_cpi: float

    @property
    def efficiency(self) -> float:
        return self.processor.efficiency

    @property
    def baseline_efficiency(self) -> float:
        return self.baseline_processor.efficiency


class PenelopeProcessor:
    """Builds and evaluates the NBTI-aware processor end to end.

    The mechanisms guarding each structure are pluggable through the
    four ``*_factory`` parameters (the declarative front door is
    :func:`repro.api.build_penelope`, which fills them from a
    :class:`~repro.config.specs.ProtectionSpec`).  Defaults replicate
    the paper's full Penelope configuration; a factory returning
    ``None`` leaves its structure unprotected.

    Examples
    --------
    >>> from repro.workloads import generate_workload
    >>> workload = generate_workload(traces_per_suite=1, length=2000,
    ...                              suites=["specint2000"])
    >>> report = PenelopeProcessor().evaluate(workload)
    >>> report.efficiency < report.baseline_efficiency
    True
    """

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        scheduler_policy: Optional[SchedulerPolicy] = None,
        invert_ratio: float = 0.5,
        adder: Optional[LadnerFischerAdder] = None,
        guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
        sample_period: float = 512.0,
        seed: int = 0,
        rf_protector_factory=None,
        scheduler_protector_factory=None,
        cache_scheme_factory=None,
        injector_pair: Tuple[int, int] = (1, 8),
        inject_idle: bool = True,
    ) -> None:
        """``rf_protector_factory(rf_name, width)``,
        ``scheduler_protector_factory(policy)`` and
        ``cache_scheme_factory(structure)`` (``structure`` is ``"dl0"``
        or ``"dtlb"``) build the per-run mechanism instances; each may
        return ``None`` to disable that protection."""
        self.config = config or CoreConfig()
        self.scheduler_policy = scheduler_policy
        self.invert_ratio = invert_ratio
        self.guardband_model = guardband_model
        self.sample_period = sample_period
        self.seed = seed
        self._adder = adder
        self._rf_factory = (
            rf_protector_factory if rf_protector_factory is not None
            else self._default_rf_protector
        )
        self._scheduler_factory = (
            scheduler_protector_factory
            if scheduler_protector_factory is not None
            else self._default_scheduler_protector
        )
        self._cache_factory = (
            cache_scheme_factory if cache_scheme_factory is not None
            else self._default_cache_scheme
        )
        self.injector_pair = tuple(injector_pair)
        self.inject_idle = inject_idle
        #: the most recent :meth:`evaluate` outcome (feeds `metrics()`).
        self.last_report: Optional[PenelopeReport] = None

    # -- default mechanism factories (the paper's configuration) -------
    def _default_rf_protector(self, rf_name: str, width: int):
        return ISVRegisterFileProtector(rf_name, width, self.sample_period)

    def _default_scheduler_protector(self, policy):
        return SchedulerProtector(policy, self.sample_period)

    def _default_cache_scheme(self, structure: str):
        return LineFixedScheme(self.invert_ratio)

    # ------------------------------------------------------------------
    def run_baseline(self, trace: Trace) -> CoreResult:
        """One unprotected run."""
        return TraceDrivenCore(self.config).run(trace)

    def derive_policy(self, profiling_trace: Trace) -> SchedulerPolicy:
        """Profile one trace and derive the scheduler policy (Sec. 4.5).

        Mirrors the paper's two-step flow: K values come from profiling
        traces, then the policy is applied to the evaluation traces.
        """
        profiler = SchedulerProfiler()
        result = TraceDrivenCore(self.config, profiler).run(profiling_trace)
        return derive_scheduler_policy(
            profiler, result.scheduler.occupancy
        )

    def run_protected(
        self,
        trace: Trace,
        policy: Optional[SchedulerPolicy] = None,
    ) -> CoreResult:
        """One run with every configured Penelope mechanism engaged."""
        effective_policy = (
            policy if policy is not None else self.scheduler_policy
        )
        mechanisms = [
            self._rf_factory("int_rf", INT_WIDTH),
            self._rf_factory("fp_rf", FP_WIDTH),
            self._scheduler_factory(effective_policy),
        ]
        hooks = CompositeHooks([m for m in mechanisms if m is not None])
        engine = get_backend(self.config.backend)
        dl0_scheme = self._cache_factory("dl0")
        dl0 = (
            ProtectedCache(engine.make_cache(self.config.dl0), dl0_scheme,
                           seed=self.seed)
            if dl0_scheme is not None else None
        )
        dtlb_scheme = self._cache_factory("dtlb")
        dtlb = (
            ProtectedCache(engine.make_tlb(self.config.dtlb), dtlb_scheme,
                           seed=self.seed + 1)
            if dtlb_scheme is not None else None
        )
        core = TraceDrivenCore(self.config, hooks, dl0=dl0, dtlb=dtlb)
        return core.run(trace)

    # ------------------------------------------------------------------
    def evaluate(self, workload: Sequence[Trace]) -> PenelopeReport:
        """Run baseline and protected passes and combine block costs."""
        if not workload:
            raise ValueError("workload must contain at least one trace")
        policy = self.scheduler_policy
        if policy is None:
            policy = self.derive_policy(workload[0])
        baseline = [self.run_baseline(trace) for trace in workload]
        protected = [self.run_protected(trace, policy) for trace in workload]

        # -- adder: idle injection at the measured utilisation ----------
        adder = self._adder or build_ladner_fischer_adder()
        vectors = [v for res in baseline for v in res.adder_samples]
        if not vectors:
            vectors = [(0, 0, 0)]
        per_trace = [
            sum(res.adder_utilization) / max(1, len(res.adder_utilization))
            for res in baseline
        ]
        utilization = sum(per_trace) / max(1, len(per_trace))
        injector = IdleInputInjector(adder, self.injector_pair,
                                     self.guardband_model)
        adder_report = injector.age(vectors[:256], min(1.0, utilization),
                                    inject=self.inject_idle)
        adder_guardband = self.guardband_model.guardband_for_duty(
            adder_report.worst_narrow_duty
        )

        # -- storage blocks: bias -> guardband ---------------------------
        int_base = _merged_rf_bias(baseline, fp=False)
        int_prot = _merged_rf_bias(protected, fp=False)
        fp_base = _merged_rf_bias(baseline, fp=True)
        fp_prot = _merged_rf_bias(protected, fp=True)
        sched_base = _merged_scheduler_bias(baseline)
        sched_prot = _merged_scheduler_bias(protected)

        gb = self.guardband_model.guardband_for_bias
        block_costs = [
            BlockCost("adder", delay=1.0, guardband=adder_guardband,
                      tdp=1.0),
            BlockCost("int_rf", delay=1.0, guardband=gb(int_prot),
                      tdp=1.01),
            BlockCost("fp_rf", delay=1.0, guardband=gb(fp_prot), tdp=1.01),
            BlockCost("scheduler", delay=1.0, guardband=gb(sched_prot),
                      tdp=1.02),
            BlockCost("dl0+dtlb", delay=1.0,
                      guardband=self.guardband_model.min_guardband,
                      tdp=1.01),
        ]

        combined_cpi = _combined_cpi(baseline, protected)
        processor = ProcessorCost(blocks=block_costs,
                                  combined_cpi=combined_cpi)
        baseline_processor = ProcessorCost(
            blocks=[baseline_block_cost(b.name) for b in block_costs],
            combined_cpi=1.0,
        )
        report = PenelopeReport(
            baseline=baseline,
            protected=protected,
            block_costs=block_costs,
            processor=processor,
            baseline_processor=baseline_processor,
            adder_guardband=adder_guardband,
            int_rf_bias=(int_base, int_prot),
            fp_rf_bias=(fp_base, fp_prot),
            scheduler_bias=(sched_base, sched_prot),
            combined_cpi=combined_cpi,
        )
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget the last evaluation (the MetricSource contract).

        The processor itself is stateless across :meth:`evaluate`
        calls — every run builds fresh cores and mechanisms — so the
        only per-run state is the report backing :meth:`metrics`.
        """
        self.last_report = None

    def metrics(self) -> MetricSet:
        """Metric tree of the most recent :meth:`evaluate` outcome.

        Eq. (1) is wired as a :class:`~repro.metrics.stats.Derived`
        stat over the processor's ``delay``/``guardband``/``tdp``
        gauges (internal inputs), at whole-processor, baseline, and
        per-block level, so any consumer can re-derive NBTIefficiency
        from the tree alone.
        """
        report = self.last_report
        if report is None:
            raise RuntimeError(
                "PenelopeProcessor.metrics() needs an evaluate() run "
                "first: the tree reports the last evaluation"
            )
        ms = MetricSet()
        _cost_metrics(ms, report.processor)
        ms.gauge("combined_cpi", report.combined_cpi)
        ms.gauge("adder_guardband", report.adder_guardband)
        _cost_metrics(ms.child("baseline"), report.baseline_processor)
        blocks = ms.child("blocks")
        for cost in report.block_costs:
            _cost_metrics(blocks.child(cost.name), cost)
        for name, (base, prot) in (
            ("int_rf", report.int_rf_bias),
            ("fp_rf", report.fp_rf_bias),
            ("scheduler", report.scheduler_bias),
        ):
            bias = ms.child(name)
            bias.gauge("base_worst_bias", base)
            bias.gauge("protected_worst_bias", prot)
        return ms


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------
def _cost_metrics(ms: MetricSet, cost) -> MetricSet:
    """Eq. (1) inputs as internal gauges + the Derived efficiency."""
    ms.gauge("delay", cost.delay, internal=True)
    ms.gauge("guardband", cost.guardband, internal=True)
    ms.gauge("tdp", cost.tdp, internal=True)
    ms.derived("efficiency", nbti_efficiency,
               args=("delay", "guardband", "tdp"),
               help="eq. (1): (delay*(1+guardband))^3 * TDP")
    return ms



def _merged_rf_bias(results: Sequence[CoreResult], fp: bool) -> float:
    """Worst per-bit bias aggregated over traces (cycle-weighted)."""
    total: Optional[List[float]] = None
    weight = 0.0
    for res in results:
        stats = res.fp_rf if fp else res.int_rf
        contribution = [float(b) * res.cycles for b in stats.bias_to_zero]
        total = (contribution if total is None
                 else [t + c for t, c in zip(total, contribution)])
        weight += res.cycles
    bias = [t / weight for t in total]
    return float(max(max(b, 1.0 - b) for b in bias))


def _merged_scheduler_bias(results: Sequence[CoreResult]) -> float:
    total: Optional[List[float]] = None
    weight = 0.0
    for res in results:
        contribution = [
            float(b) * res.cycles for b in res.scheduler.flattened_bias()
        ]
        total = (contribution if total is None
                 else [t + c for t, c in zip(total, contribution)])
        weight += res.cycles
    bias = [t / weight for t in total]
    return float(max(max(b, 1.0 - b) for b in bias))


def _combined_cpi(
    baseline: Sequence[CoreResult], protected: Sequence[CoreResult]
) -> float:
    """Normalised CPI of the protected runs vs the baseline (eq. 2)."""
    base = sum(r.cycles for r in baseline) / max(
        1, sum(r.uops for r in baseline)
    )
    prot = sum(r.cycles for r in protected) / max(
        1, sum(r.uops for r in protected)
    )
    if base <= 0.0:
        return 1.0
    return max(1.0, prot / base)
