"""JSONL-backed result store keyed by experiment-point hash.

Each line is one self-contained record::

    {"key": "...", "study": "caches", "params": {...},
     "metrics": {...}, "elapsed": 0.12, "created": 1690000000.0}

Appending is the only write operation and each record is written as a
single ``os.write`` on an ``O_APPEND`` fd (atomic on POSIX), so
concurrent sweep workers at worst duplicate a record — never interleave
partial lines; :meth:`ResultStore.load` keeps the *last* record per
key, making reruns idempotent.  A crash mid-append can tear at most the
*final* line, so ``load`` skips (and warns about) a torn final line but
treats invalid bytes anywhere else as real corruption and raises.  The
default location is ``benchmarks/results/store.jsonl`` next to the
benchmark artefacts.

For sweeps past a few thousand points, the sharded indexed store in
:mod:`repro.fabric.store` reads the same record format without the
O(whole-file) rescan; ``repro store migrate`` converts between the two.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.experiments.spec import ExperimentPoint, canonical_json
from repro.fabric.io import append_record


def default_store_path() -> str:
    """``benchmarks/results/store.jsonl`` anchored at the repo root.

    Falls back to the current working directory when the package is
    installed outside a checkout (no ``benchmarks/`` sibling).
    """
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    candidate = os.path.join(root, "benchmarks")
    if not os.path.isdir(candidate):
        candidate = os.path.join(os.getcwd(), "benchmarks")
    return os.path.join(candidate, "results", "store.jsonl")


@dataclass
class StoredResult:
    """One cached design-point outcome."""

    key: str
    study: str
    params: Dict[str, Any]
    metrics: Dict[str, Any]
    elapsed: float = 0.0
    created: float = field(default_factory=time.time)

    def to_json(self) -> str:
        return canonical_json({
            "key": self.key,
            "study": self.study,
            "params": self.params,
            "metrics": self.metrics,
            "elapsed": self.elapsed,
            "created": self.created,
        })

    @classmethod
    def from_json(cls, line: str) -> "StoredResult":
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError(
                f"store record is {type(payload).__name__}, not an object"
            )
        missing = [f for f in ("key", "study") if f not in payload]
        if missing:
            raise ValueError(
                "store record missing field(s): " + ", ".join(missing)
            )
        return cls(
            key=payload["key"],
            study=payload["study"],
            params=payload.get("params", {}),
            metrics=payload.get("metrics", {}),
            elapsed=payload.get("elapsed", 0.0),
            created=payload.get("created", 0.0),
        )


class ResultStore:
    """Append-only JSONL store with an in-memory last-wins index."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path or default_store_path()
        self._index: Dict[str, StoredResult] = {}
        self.duplicates = 0
        self.load()

    # -- reading --------------------------------------------------------
    def load(self) -> None:
        """(Re)build the index from disk.

        A torn *final* line (crash mid-``os.write``) is skipped with a
        warning — that is the only corruption the append discipline can
        produce.  An invalid line anywhere else means the file was
        damaged by something other than a crash, so raise a clean
        ``ValueError`` naming the file and line rather than silently
        dropping records.  Duplicate keys keep the last record
        (idempotent reruns); the count is exposed as ``duplicates``.
        """
        self._index.clear()
        self.duplicates = 0
        if not os.path.exists(self.path):
            return
        with open(self.path) as handle:
            lines = handle.readlines()
        last = len(lines)
        for lineno, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = StoredResult.from_json(line)
            except ValueError as exc:
                if lineno == last:
                    warnings.warn(
                        f"{self.path}: skipping torn final line "
                        f"{lineno} ({exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt store record "
                    f"({exc})"
                ) from exc
            if record.key in self._index:
                self.duplicates += 1
            self._index[record.key] = record

    def get(self, key: str) -> Optional[StoredResult]:
        return self._index.get(key)

    def get_point(self, point: ExperimentPoint) -> Optional[StoredResult]:
        return self.get(point.key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[StoredResult]:
        return iter(self._index.values())

    def records(self, study: Optional[str] = None) -> List[StoredResult]:
        found = [r for r in self._index.values()
                 if study is None or r.study == study]
        return sorted(found, key=lambda r: r.created)

    # -- writing --------------------------------------------------------
    def put(
        self,
        point: ExperimentPoint,
        metrics: Mapping[str, Any],
        elapsed: float = 0.0,
    ) -> StoredResult:
        record = StoredResult(
            key=point.key,
            study=point.study,
            params=_plain(point.as_dict()),
            metrics=dict(metrics),
            elapsed=elapsed,
        )
        self.put_record(record)
        return record

    def put_record(self, record: StoredResult) -> None:
        """Append a pre-built record (used by migration/compaction)."""
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        # One O_APPEND fd + one os.write per record: concurrent sweep
        # workers append whole lines atomically.  Buffered `open(..,
        # "a").write` could flush a record as several syscalls, letting
        # parallel writers interleave partial lines and corrupt both.
        payload = (record.to_json() + "\n").encode("utf-8")
        append_record(self.path, payload)
        self._index[record.key] = record

    def clear(self) -> None:
        """Drop every record (index and file)."""
        self._index.clear()
        self.duplicates = 0
        if os.path.exists(self.path):
            os.remove(self.path)


def _plain(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Tuples -> lists so params survive the JSON round-trip unchanged."""
    out: Dict[str, Any] = {}
    for key, value in params.items():
        out[key] = list(value) if isinstance(value, tuple) else value
    return out
