"""Seeded synthetic trace generation.

:class:`TraceGenerator` turns a :class:`~repro.workloads.suites.SuiteProfile`
into a value-carrying uop stream: register dataflow with realistic
dependency locality, operand values from the biased generators, per-suite
address streams, and the Table 2 payload bits (flags, tos, shifts,
latencies, ports, opcodes) pre-decoded.

Everything is deterministic given (seed, suite, trace index), so studies
are reproducible and profiling/evaluation splits (Section 4.5 uses 100
profiling traces out of 531) are stable.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from repro.uarch.trace import Trace
from repro.uarch.uop import Uop, UopClass
from repro.workloads.datagen import (
    AddressGenerator,
    BiasedIntGenerator,
    FPValueGenerator,
)
from repro.workloads.suites import (
    SuiteProfile,
    TABLE1_TRACE_COUNTS,
    get_profile,
    suite_names,
)

#: Architectural register counts (IA32 GPRs + rename temporaries / x87).
ARCH_INT_REGS = 24
ARCH_FP_REGS = 8

#: Default scaled-down trace length (the paper used 10M instructions).
DEFAULT_TRACE_LENGTH = 20_000

#: Latencies per uop class (cycles), Core(tm)-era integer pipeline.
_LATENCY = {
    UopClass.ALU: 1,
    UopClass.MUL: 4,
    UopClass.FP: 5,
    UopClass.LOAD: 3,
    UopClass.STORE: 1,
    UopClass.BRANCH: 1,
    UopClass.NOP: 1,
}

#: Issue-port assignment per class (one-hot index in the 5-bit field).
_PORT = {
    UopClass.ALU: 0,
    UopClass.MUL: 1,
    UopClass.FP: 1,
    UopClass.LOAD: 2,
    UopClass.STORE: 3,
    UopClass.BRANCH: 4,
    UopClass.NOP: 0,
}

#: Compact opcode assignment per class; real encodings are implementation
#: specific (the paper excludes opcode bits from Figure 8 for the same
#: reason) but a smartly-chosen dense encoding avoids huge imbalance.
_OPCODE_BASE = {
    UopClass.ALU: 0x010,
    UopClass.MUL: 0x120,
    UopClass.FP: 0x230,
    UopClass.LOAD: 0x340,
    UopClass.STORE: 0x450,
    UopClass.BRANCH: 0x560,
    UopClass.NOP: 0x001,
}


class TraceGenerator:
    """Deterministic generator of suite-profiled traces.

    Examples
    --------
    >>> gen = TraceGenerator(seed=42)
    >>> trace = gen.generate("kernels", length=1000)
    >>> len(trace)
    1000
    >>> trace.suite
    'kernels'
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(
        self,
        suite: str,
        length: int = DEFAULT_TRACE_LENGTH,
        trace_index: int = 0,
    ) -> Trace:
        """Generate one trace of the given suite."""
        profile = get_profile(suite)
        trace = Trace(name=f"{suite}-{trace_index:03d}",
                      suite=profile.name)
        for uop in self.stream(suite, length=length,
                               trace_index=trace_index):
            trace.append(uop)
        return trace

    def stream(
        self,
        suite: str,
        length: int = DEFAULT_TRACE_LENGTH,
        trace_index: int = 0,
    ) -> Iterator[Uop]:
        """Lazily yield the exact uop sequence :meth:`generate` builds.

        The generator is bounded-memory: nothing is materialised, so
        paper-scale trace lengths stream straight into
        :meth:`~repro.uarch.core.TraceDrivenCore.run` (which accepts any
        iterable) without holding a :class:`~repro.uarch.trace.Trace`.
        Bit-identical to :meth:`generate` for the same (seed, suite,
        trace_index) — asserted by ``tests/test_streaming.py``.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        profile = get_profile(suite)
        rng = random.Random(f"{self.seed}/{suite}/{trace_index}")
        return _synthesise_uops(profile, rng, length)

    def generate_suite(
        self,
        suite: str,
        n_traces: int,
        length: int = DEFAULT_TRACE_LENGTH,
    ) -> List[Trace]:
        return [
            self.generate(suite, length=length, trace_index=i)
            for i in range(n_traces)
        ]


def generate_workload(
    seed: int = 0,
    traces_per_suite: Optional[int] = None,
    scale: float = 0.01,
    length: int = DEFAULT_TRACE_LENGTH,
    suites: Optional[Sequence[str]] = None,
) -> List[Trace]:
    """Generate a scaled-down version of the paper's 531-trace workload.

    Parameters
    ----------
    traces_per_suite:
        Fixed number of traces per suite; when None, each suite gets
        ``max(1, round(count * scale))`` traces, proportional to Table 1.
    scale:
        Fraction of Table 1's per-suite trace counts to generate.
    """
    generator = TraceGenerator(seed)
    chosen = list(suites) if suites is not None else suite_names()
    workload: List[Trace] = []
    for suite in chosen:
        if traces_per_suite is not None:
            count = traces_per_suite
        else:
            count = max(1, round(TABLE1_TRACE_COUNTS[suite] * scale))
        workload.extend(generator.generate_suite(suite, count, length))
    return workload


def generate_address_stream(
    suite: str,
    length: int = 50_000,
    seed: int = 0,
    trace_index: int = 0,
) -> List[int]:
    """A bare load/store address stream for cache-only studies.

    The Table 3 evaluation only needs the memory reference stream, which
    is ~50x cheaper to generate than full uop traces.  Addresses follow
    the same per-suite working-set model as :class:`TraceGenerator`.
    """
    return list(iter_address_stream(suite, length=length, seed=seed,
                                    trace_index=trace_index))


def iter_address_stream(
    suite: str,
    length: int = 50_000,
    seed: int = 0,
    trace_index: int = 0,
) -> Iterator[int]:
    """Iterator twin of :func:`generate_address_stream`.

    Yields the bit-identical address sequence without materialising the
    list, so paper-scale streams replay through
    :meth:`~repro.uarch.cache.Cache.replay` in bounded memory.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    profile = get_profile(suite)
    rng = random.Random(f"addr/{seed}/{suite}/{trace_index}")
    addresses = AddressGenerator(
        rng,
        working_set_bytes=profile.working_set_bytes,
        hot_fraction=profile.hot_fraction,
        regions=profile.regions,
    )
    return _iter_addresses(addresses, length)


def _iter_addresses(addresses: AddressGenerator,
                    length: int) -> Iterator[int]:
    next_address = addresses.next
    for __ in range(length):
        yield next_address()


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _synthesise_uops(
    profile: SuiteProfile, rng: random.Random, length: int
) -> Iterator[Uop]:
    weights = profile.int_value_weights
    int_values = BiasedIntGenerator(
        rng,
        counter_weight=weights[0],
        address_weight=weights[1],
        constant_weight=weights[2],
        medium_weight=weights[3],
        random_weight=weights[4],
    )
    fp_values = FPValueGenerator(rng)
    addresses = AddressGenerator(
        rng,
        working_set_bytes=profile.working_set_bytes,
        hot_fraction=profile.hot_fraction,
        regions=profile.regions,
    )
    classes = [UopClass.ALU, UopClass.MUL, UopClass.FP, UopClass.LOAD,
               UopClass.STORE, UopClass.BRANCH, UopClass.NOP]
    mix = list(profile.uop_mix)

    int_reg_values: List[int] = [int_values.next() for _ in range(ARCH_INT_REGS)]
    fp_reg_values: List[int] = [fp_values.next() for _ in range(ARCH_FP_REGS)]
    recent_int: List[int] = list(range(4))
    recent_fp: List[int] = list(range(2))
    tos = 0

    for seq in range(length):
        kind = rng.choices(classes, weights=mix)[0]
        is_fp = kind is UopClass.FP
        uop = _make_uop(
            seq, kind, profile, rng,
            int_values, fp_values, addresses,
            int_reg_values, fp_reg_values,
            recent_int, recent_fp, tos,
        )
        if is_fp:
            tos = (tos + rng.choice((0, 1, 7))) % 8
        yield uop


def _pick_source(
    rng: random.Random, recent: List[int], n_regs: int, locality: float
) -> int:
    """A source register: recently-written with ``locality`` probability."""
    if recent and rng.random() < locality:
        return rng.choice(recent)
    return rng.randrange(n_regs)


def _remember_dst(recent: List[int], dst: int, depth: int = 6) -> None:
    recent.append(dst)
    if len(recent) > depth:
        recent.pop(0)


def _flags_value(rng: random.Random) -> int:
    """6-bit flags: mostly clear; ZF/CF occasionally set.

    Bits: 0=CF, 1=PF, 2=AF, 3=ZF, 4=SF, 5=OF.  High bits almost never
    set — the "almost 100% bias for some flags" of Figure 8.
    """
    flags = 0
    if rng.random() < 0.18:
        flags |= 1 << 3  # ZF
    if rng.random() < 0.10:
        flags |= 1 << 0  # CF
    if rng.random() < 0.12:
        flags |= 1 << 4  # SF
    if rng.random() < 0.04:
        flags |= 1 << 1  # PF
    # AF/OF practically never set by real code paths.
    if rng.random() < 0.01:
        flags |= 1 << 5
    return flags


def _make_uop(
    seq: int,
    kind: UopClass,
    profile: SuiteProfile,
    rng: random.Random,
    int_values: BiasedIntGenerator,
    fp_values: FPValueGenerator,
    addresses: AddressGenerator,
    int_reg_values: List[int],
    fp_reg_values: List[int],
    recent_int: List[int],
    recent_fp: List[int],
    tos: int,
) -> Uop:
    locality = profile.dependency_locality
    is_fp = kind is UopClass.FP
    has_imm = rng.random() < profile.immediate_fraction
    immediate = int_values.next() & 0xFFFF if has_imm else 0

    src1: Optional[int] = None
    src2: Optional[int] = None
    dst: Optional[int] = None
    src1_value = 0
    src2_value = 0
    result = 0
    address: Optional[int] = None
    is_sub = False
    taken = False

    if kind is UopClass.FP:
        src1 = _pick_source(rng, recent_fp, ARCH_FP_REGS, locality)
        src2 = _pick_source(rng, recent_fp, ARCH_FP_REGS, locality)
        dst = rng.randrange(ARCH_FP_REGS)
        src1_value = fp_reg_values[src1]
        src2_value = fp_reg_values[src2]
        result = fp_values.next()
        fp_reg_values[dst] = result
        _remember_dst(recent_fp, dst)
    elif kind in (UopClass.ALU, UopClass.MUL):
        src1 = _pick_source(rng, recent_int, ARCH_INT_REGS, locality)
        src2 = _pick_source(rng, recent_int, ARCH_INT_REGS, locality)
        dst = rng.randrange(ARCH_INT_REGS)
        src1_value = int_reg_values[src1]
        src2_value = int_reg_values[src2]
        is_sub = kind is UopClass.ALU and rng.random() < profile.sub_fraction
        result = int_values.next()
        int_reg_values[dst] = result
        _remember_dst(recent_int, dst)
    elif kind is UopClass.LOAD:
        src1 = _pick_source(rng, recent_int, ARCH_INT_REGS, locality)
        dst = rng.randrange(ARCH_INT_REGS)
        src1_value = int_reg_values[src1]
        address = addresses.next()
        result = int_values.next()
        int_reg_values[dst] = result
        _remember_dst(recent_int, dst)
    elif kind is UopClass.STORE:
        src1 = _pick_source(rng, recent_int, ARCH_INT_REGS, locality)
        src2 = _pick_source(rng, recent_int, ARCH_INT_REGS, locality)
        src1_value = int_reg_values[src1]
        src2_value = int_reg_values[src2]
        address = addresses.next()
    mispredicted = False
    if kind is UopClass.BRANCH:
        src1 = _pick_source(rng, recent_int, ARCH_INT_REGS, locality)
        src1_value = int_reg_values[src1]
        taken = rng.random() < profile.taken_rate
        mispredicted = rng.random() < profile.mispredict_rate

    return Uop(
        seq=seq,
        uop_class=kind,
        opcode=(_OPCODE_BASE[kind] + rng.randrange(12)) & 0xFFF,
        src1=src1,
        src2=src2,
        dst=dst,
        src1_value=src1_value,
        src2_value=src2_value,
        result_value=result,
        immediate=immediate,
        has_immediate=has_imm,
        is_fp=is_fp,
        latency=_LATENCY[kind],
        port=_PORT[kind],
        taken=taken,
        mispredicted=mispredicted,
        tos=tos if is_fp else 0,
        flags=_flags_value(rng) if kind in (UopClass.ALU, UopClass.MUL)
        else 0,
        shift1=rng.random() < profile.shift_fraction,
        shift2=rng.random() < profile.shift_fraction,
        address=address,
        is_sub=is_sub,
    )
