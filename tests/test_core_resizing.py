"""Tests for the transistor-resizing fallback."""

import pytest

from repro.circuits import AgingSimulator, build_ladner_fischer_adder
from repro.core.resizing import (
    WIDE_AREA_FACTOR,
    apply_resizing,
    plan_resizing,
    resizing_tradeoff,
)


@pytest.fixture()
def aged_adder():
    """A small adder aged under a badly-biased input pair."""
    adder = build_ladner_fischer_adder(width=8)
    sim = AgingSimulator(adder.circuit)
    sim.apply(adder.input_vector(0, 0, 0), 1.0)
    sim.apply(adder.input_vector(0, 0, 1), 1.0)  # pair 1+2: bad
    return adder, sim


class TestPlanResizing:
    def test_identifies_fully_stressed_narrow(self, aged_adder):
        __, sim = aged_adder
        plan = plan_resizing(sim, duty_threshold=0.9)
        assert plan.count > 0
        assert plan.residual_worst_duty <= 0.9
        assert plan.guardband < 0.20

    def test_area_overhead_scales_with_victims(self, aged_adder):
        __, sim = aged_adder
        strict = plan_resizing(sim, duty_threshold=0.6)
        lax = plan_resizing(sim, duty_threshold=0.95)
        assert strict.count >= lax.count
        assert strict.area_overhead >= lax.area_overhead
        total = len(sim.circuit.pmos_transistors())
        expected = strict.count * (WIDE_AREA_FACTOR - 1.0) / total
        assert strict.area_overhead == pytest.approx(expected)

    def test_block_cost_pricing(self, aged_adder):
        __, sim = aged_adder
        plan = plan_resizing(sim, duty_threshold=0.8)
        cost = plan.block_cost("adder")
        assert cost.tdp == pytest.approx(1.0 + plan.area_overhead)
        assert cost.guardband == plan.guardband

    def test_threshold_validation(self, aged_adder):
        __, sim = aged_adder
        with pytest.raises(ValueError):
            plan_resizing(sim, duty_threshold=0.3)

    def test_no_narrow_rejected(self):
        from repro.circuits.netlist import CircuitBuilder
        from repro.nbti.transistor import WidthClass

        builder = CircuitBuilder()
        a = builder.input("a")
        builder.mark_output(builder.inv(a, name="y"))
        circuit = builder.circuit
        circuit.resize_gates([g.name for g in circuit.gates],
                             WidthClass.WIDE)
        sim = AgingSimulator(circuit)
        with pytest.raises(ValueError):
            plan_resizing(sim)


class TestApplyResizing:
    def test_netlist_updated(self, aged_adder):
        adder, sim = aged_adder
        before = adder.narrow_pmos_count
        plan = plan_resizing(sim, duty_threshold=0.9)
        changed = apply_resizing(sim, plan)
        assert changed > 0
        assert adder.narrow_pmos_count < before
        # After resizing, the planned victims are no longer narrow.
        remaining = {p.name for p in adder.circuit.narrow_pmos()}
        assert not remaining & set(plan.resized)

    def test_functionality_preserved(self, aged_adder):
        adder, sim = aged_adder
        plan = plan_resizing(sim, duty_threshold=0.8)
        apply_resizing(sim, plan)
        assert adder.add(200, 55, 1) == (0, 1)
        assert adder.add(17, 5, 0) == (22, 0)


class TestTradeoff:
    def test_monotone_guardband_vs_area(self, aged_adder):
        __, sim = aged_adder
        plans = resizing_tradeoff(sim, thresholds=(0.95, 0.8, 0.6))
        guardbands = [p.guardband for p in plans]
        areas = [p.area_overhead for p in plans]
        assert guardbands == sorted(guardbands, reverse=True)
        assert areas == sorted(areas)
