"""Figure 5: adder guardband vs. utilisation with idle-input injection.

Paper: real inputs pay 20%; with the 1+8 pair injected during idle time
the guardband drops to 7.4% (30% utilisation), 5.8% (21%) and lower at
11%.  Real operand vectors come from the adder reservoir samples of the
baseline core runs; utilisation levels are the paper's three scenarios
plus the measured one.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import format_series
from repro.core.combinational import adder_guardband_study

from conftest import SMOKE, write_result


def test_fig5_guardband_vs_utilization(benchmark, adder32,
                                       baseline_results):
    vectors = [
        v
        for result in baseline_results.values()
        for v in result.adder_samples
    ][:192]
    study = benchmark.pedantic(
        adder_guardband_study,
        args=(adder32, vectors),
        kwargs={"utilizations": (0.30, 0.21, 0.11)},
        rounds=1, iterations=1,
    )
    g_real = study["real inputs"]
    g30 = study["30% real + 000 + 111"]
    g21 = study["21% real + 000 + 111"]
    g11 = study["11% real + 000 + 111"]
    assert g11 < g21 < g30 < g_real
    if not SMOKE:
        # Numeric anchors need the full-size operand reservoir.
        assert abs(g_real - 0.20) < 0.01
        assert abs(g30 - 0.074) < 0.012
        assert abs(g21 - 0.058) < 0.012

    measured_util = float(np.mean([
        np.mean(r.adder_utilization) for r in baseline_results.values()
    ]))
    text = format_series(
        study,
        title="Figure 5 — NBTI guardband vs adder utilisation",
    )
    text += (
        f"\npaper: 20% / 7.4% / 5.8% / ~4%;"
        f" measured mean utilisation of the workload: {measured_util:.1%}"
    )
    write_result("fig5_adder_guardband.txt", text)
