"""The ``"vectorized"`` kernel backend: numpy structure-of-arrays replay.

The scalar :class:`~repro.uarch.backends.reference.Cache` spends its
time in per-access Python bytecode.  This backend keeps the *scalar*
state representation (so every per-access operation — ``access``,
``probe``, the whole mechanism interface — inherits the reference
implementation unchanged and is bit-exact by construction) and
accelerates only the batched :meth:`Cache.replay` path:

1. **Materialise** the nested per-set lists into structure-of-arrays
   numpy state: ``tags[S, W]`` (int64, ``-1`` for empty),
   ``state[S, W]`` (0 = INVALID, 1 = VALID, 2 = INVERTED),
   ``pos[S, W]`` (LRU-stack position per way) and ``shadow[S, W]``.
2. **Decode** the address stream in bounded chunks
   (``line = addr // line_bytes``, ``set = line % S``,
   ``tag = line // S``) and group it by set with one stable argsort.
3. **Time-slice**: iterate ``k = 0, 1, ...`` processing the k-th
   access of *every* active set in one array step — hit detect,
   LRU touch, victim select and fill are all whole-slice ``numpy``
   expressions.  Distinct sets never interact, so reordering work
   across sets inside a slice preserves the scalar semantics exactly.
4. **Write back** the arrays into the scalar lists (LRU order is
   rebuilt from ``pos`` by argsort) and flush the batched counters.

Victim selection folds the scalar class-then-LRU scan into one
``argmax`` over the composite key ``class_rank * W + pos`` with ranks
INVALID=3 > INVERTED=2 > VALID=1 (INVERTED drops to rank 0 when
``allow_inverted_victims`` is off), which reproduces
:meth:`Cache.victim_way` including its all-inverted fallback.

Consecutive same-line accesses of a set are run-compressed: once a
line has been touched it sits VALID at MRU, so each repeat is a
position-0 hit with no state change — only the counters advance.

:meth:`replay_scheme` extends the same engine to whole *protected*
replays for the set- and way-granularity schemes, whose rotations are
deterministic functions of the access counter: the stream is processed
in segments between rotation boundaries, with the scalar
``scheme._rotate()`` applied on the synchronised list state at each
boundary.  The line-granularity schemes consume the shared RNG on a
per-access cadence, so they keep the scalar path (see DESIGN.md
section 10 for the batch-granularity rules).

Everything stays bit-identical to the reference backend; the
differential fuzz in ``tests/test_backends.py`` enforces it across
geometries, schemes and stream lengths.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterable, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

from repro.core.cache_like import InversionScheme, SetFixedScheme, WayFixedScheme
from repro.obs.trace import TRACER as _TRACER
from repro.uarch.backends.base import KernelBackend
from repro.uarch.backends.reference import Cache, CacheConfig, LineState
from repro.uarch.tlb import TLB, TLBConfig

_INVALID, _VALID, _INVERTED = 0, 1, 2
_STATE_CODE = {LineState.INVALID: _INVALID, LineState.VALID: _VALID,
               LineState.INVERTED: _INVERTED}
_CODE_STATE = (LineState.INVALID, LineState.VALID, LineState.INVERTED)

#: Addresses consumed per numpy batch; bounds memory for lazy streams.
_CHUNK = 1 << 16

#: Straggler cutoff: drop to the scalar loop once fewer than this many
#: sets still have unprocessed accesses in the current segment ...
_TAIL_SETS = 16
#: ... but only when the tail is big enough to repay the list sync.
_TAIL_ACCESSES = 256

if np is not None:
    #: Victim-class ranks by state code (INVALID, VALID, INVERTED); the
    #: composite key ``rank * ways + pos`` makes argmax reproduce the
    #: scalar class-then-reversed-LRU scan of ``Cache.victim_way``.
    _RANK_ALLOW = np.array([3, 1, 2], dtype=np.int64)
    _RANK_NOINV = np.array([3, 1, 0], dtype=np.int64)


class _Batch:
    """Counters accumulated across one replay's chunks."""

    __slots__ = ("hits", "misses", "shadow_hits", "refills", "hist")

    def __init__(self, ways: int) -> None:
        self.hits = 0
        self.misses = 0
        self.shadow_hits = 0
        self.refills = 0
        self.hist = np.zeros(ways, dtype=np.int64)


class _VectorReplayMixin(Cache):
    """Array-native ``replay`` over the scalar cache's list state."""

    __slots__ = ()

    # -- structure-of-arrays conversion --------------------------------
    def _materialize(self) -> Tuple[Any, Any, Any, Any]:
        """Snapshot the scalar lists into int/bool SoA arrays."""
        code = _STATE_CODE
        tags = np.array(
            [[-1 if t is None else t for t in row] for row in self._tags],
            dtype=np.int64,
        )
        state = np.array(
            [[code[s] for s in row] for row in self._state],
            dtype=np.int64,
        )
        pos = np.array(self._lru_pos, dtype=np.int64)
        shadow = np.array(self._shadow, dtype=bool)
        return tags, state, pos, shadow

    def _writeback(self, tags: Any, state: Any, pos: Any,
                   shadow: Any) -> None:
        """Restore the scalar lists (and counters) from the arrays."""
        code_state = _CODE_STATE
        tag_rows = tags.tolist()
        state_rows = state.tolist()
        pos_rows = pos.tolist()
        # pos holds a permutation of 0..W-1 per set, so argsort is the
        # exact inverse: order[p] = the way at stack position p.
        order_rows = np.argsort(pos, axis=1).tolist()
        shadow_rows = shadow.tolist()
        for s in range(self._sets):
            self._tags[s] = [None if t == -1 else t for t in tag_rows[s]]
            self._state[s] = [code_state[c] for c in state_rows[s]]
            self._lru_pos[s] = pos_rows[s]
            self._lru_order[s] = order_rows[s]
            self._shadow[s] = shadow_rows[s]
        self._inverted_lines = int(np.count_nonzero(state == _INVERTED))
        self._shadow_lines = int(np.count_nonzero(shadow))

    # -- batched engine ------------------------------------------------
    def _decode(self, chunk: Any, live: Optional[Any]) -> Tuple[Any, Any]:
        """(set, tag) arrays of a raw address chunk.

        ``live`` applies the set-granularity scheme's index fold: the
        line address hashes into the live sets and the whole line id
        becomes the tag (exactly ``SetFixedScheme._remap`` composed
        with the plain decode).
        """
        line = chunk // self._line_bytes
        if live is None:
            return line % self._sets, line // self._sets
        return live[line % live.size], line

    def _replay_arrays(self, set_idx: Any, tag: Any,
                       arrays: Tuple[Any, Any, Any, Any],
                       batch: _Batch) -> Tuple[Any, Any, Any, Any]:
        """Process one in-order segment of decoded accesses.

        Returns the (possibly re-materialised) state arrays: when the
        straggler tail drops to the scalar path, the arrays are synced
        to the lists and rebuilt afterwards.
        """
        tags, state, pos, shadow = arrays
        if set_idx.size == 0:
            return arrays
        ways = self._ways
        order = np.argsort(set_idx, kind="stable")
        s_sets = set_idx[order]
        s_tags = tag[order]
        # Run-compress repeats *within each set's subsequence*: after
        # any access the line sits VALID at MRU, so each repeat is a
        # position-0 hit (shadow-counted iff the line's bit is set,
        # which fills have just cleared) with no state change.
        if s_sets.size > 1:
            repeat = np.empty(s_sets.size, dtype=bool)
            repeat[0] = False
            np.logical_and(s_sets[1:] == s_sets[:-1],
                           s_tags[1:] == s_tags[:-1], out=repeat[1:])
            if repeat.any():
                keep = np.nonzero(~repeat)[0]
                s_reps = np.diff(np.append(keep, s_sets.size)) - 1
                s_sets = s_sets[keep]
                s_tags = s_tags[keep]
            else:
                s_reps = np.zeros(s_sets.size, dtype=np.int64)
        else:
            s_reps = np.zeros(s_sets.size, dtype=np.int64)
        counts = np.bincount(s_sets, minlength=self._sets)
        offsets = np.zeros(self._sets, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        # Active sets ordered by descending access count: at time-slice
        # k exactly the first n_acts[k] of them still have work, so the
        # per-slice views below are contiguous leading slabs.
        order_desc = np.argsort(-counts, kind="stable")
        nz = int(np.count_nonzero(counts))
        act_all = order_desc[:nz]
        counts_act = counts[act_all]
        off_desc = offsets[act_all]
        max_k = int(counts_act[0]) if nz else 0
        n_acts = np.searchsorted(-counts_act, -np.arange(max_k),
                                 side="left")
        # Straggler cutoff: once fewer than _TAIL_SETS sets remain the
        # per-slice numpy overhead exceeds the scalar loop, so the
        # remaining per-set suffixes run on the list state instead
        # (distinct sets never interact, so processing them set-major
        # is order-equivalent).  Tiny tails stay vectorized: a list
        # sync would cost more than it saves.
        k_cut = max_k
        small = np.nonzero(n_acts < _TAIL_SETS)[0]
        if small.size:
            candidate = int(small[0])
            over = counts_act > candidate
            tail_n = int((counts_act[over] - candidate).sum())
            if tail_n >= _TAIL_ACCESSES:
                k_cut = candidate
        rank = _RANK_ALLOW if self.allow_inverted_victims else _RANK_NOINV
        hist = batch.hist
        # Working slabs: one gather per segment instead of one per
        # slice; scattered back after the slice loop.
        stA = state[act_all]
        tgA = tags[act_all]
        poA = pos[act_all]
        shA = shadow[act_all]
        rows_all = np.arange(nz)
        for k in range(k_cut):
            n_k = int(n_acts[k])
            st = stA[:n_k]
            tg = tgA[:n_k]
            po = poA[:n_k]
            sh = shA[:n_k]
            rows = rows_all[:n_k]
            idx = off_desc[:n_k] + k
            t = s_tags[idx]
            r = s_reps[idx]
            match = (st == _VALID) & (tg == t[:, None])
            hit = match.any(axis=1)
            way = np.argmax(match, axis=1)
            if not hit.all():
                victim = np.argmax(rank[st] * ways + po, axis=1)
                way = np.where(hit, way, victim)
            p = po[rows, way]
            if hit.any():
                hrow = rows[hit]
                hist += np.bincount(p[hit], minlength=ways)
                rh = r[hit]
                n_rep = int(rh.sum())
                batch.hits += int(hrow.size) + n_rep
                hist[0] += n_rep
                shh = sh[hrow, way[hit]]
                batch.shadow_hits += int(shh.sum()) + int((rh * shh).sum())
            miss = ~hit
            if miss.any():
                mrow = rows[miss]
                mway = way[miss]
                batch.refills += int(
                    np.count_nonzero(st[mrow, mway] == _INVERTED)
                )
                sh[mrow, mway] = False
                tg[mrow, mway] = t[miss]
                st[mrow, mway] = _VALID
                batch.misses += int(mrow.size)
                n_rep = int(r[miss].sum())
                batch.hits += n_rep
                hist[0] += n_rep
            po += po < p[:, None]
            po[rows, way] = 0
        state[act_all] = stA
        tags[act_all] = tgA
        pos[act_all] = poA
        shadow[act_all] = shA
        if k_cut < max_k:
            self._writeback(tags, state, pos, shadow)
            for i in range(int(n_acts[k_cut])):
                lo = int(off_desc[i]) + k_cut
                hi = int(off_desc[i] + counts_act[i])
                self._scalar_tail(int(act_all[i]),
                                  s_tags[lo:hi].tolist(),
                                  s_reps[lo:hi].tolist(), batch)
            return self._materialize()
        return arrays

    def _scalar_tail(self, set_index: int, tag_list: List[int],
                     reps_list: List[int], batch: _Batch) -> None:
        """Scalar (list-state) replay of one set's access suffix."""
        states = self._state[set_index]
        tags = self._tags[set_index]
        positions = self._lru_pos[set_index]
        shadow = self._shadow[set_index]
        touch, fill = self._touch, self._fill
        valid = LineState.VALID
        way_range = range(self._ways)
        hist = batch.hist
        hits = misses = shadow_hits = 0
        for tag, reps in zip(tag_list, reps_list):
            hit_way = -1
            for way in way_range:
                if states[way] is valid and tags[way] == tag:
                    hit_way = way
                    break
            if hit_way >= 0:
                position = positions[hit_way]
                hist[position] += 1
                hits += 1 + reps
                hist[0] += reps
                if shadow[hit_way]:
                    shadow_hits += 1 + reps
                if position:
                    touch(set_index, hit_way)
            else:
                misses += 1
                # _fill updates refills_of_inverted and the inverted/
                # shadow counters on self directly (scalar semantics).
                fill(set_index, tag)
                hits += reps
                hist[0] += reps
        batch.hits += hits
        batch.misses += misses
        batch.shadow_hits += shadow_hits

    def _flush_stats(self, batch: _Batch) -> None:
        stats = self.stats
        stats.accesses += batch.hits + batch.misses
        stats.hits += batch.hits
        stats.misses += batch.misses
        stats.shadow_hits += batch.shadow_hits
        stats.refills_of_inverted += batch.refills
        positions = stats.hit_way_position
        for position, count in enumerate(batch.hist.tolist()):
            if count:
                positions[position] = positions.get(position, 0) + count

    # -- public surface ------------------------------------------------
    def replay(self, addresses: Iterable[int]) -> int:
        """Batched drop-in for :meth:`Cache.replay` (same span, bits)."""
        _t = _TRACER.begin()
        arrays = self._materialize()
        batch = _Batch(self._ways)
        stream = iter(addresses)
        while True:
            chunk = np.fromiter(islice(stream, _CHUNK), dtype=np.int64)
            if chunk.size:
                set_idx, tag = self._decode(chunk, None)
                arrays = self._replay_arrays(set_idx, tag, arrays, batch)
            if chunk.size < _CHUNK:
                break
        self._writeback(*arrays)
        self._flush_stats(batch)
        if _t is not None:
            _TRACER.end(_t, "cache.replay", cache=self.config.name,
                        accesses=batch.hits + batch.misses,
                        misses=batch.misses)
        return batch.hits

    def replay_scheme(self, scheme: InversionScheme,
                      addresses: Iterable[int]) -> Optional[int]:
        """Whole-stream protected replay, if the scheme is batchable.

        Returns ``None`` — *without* consuming ``addresses`` — when the
        scheme needs the scalar path, so the caller can fall back to
        the generic ``scheme.replay``.  Exact type checks keep scheme
        subclasses (which may override per-access behaviour) on the
        scalar path automatically.
        """
        if type(scheme) is SetFixedScheme:
            return self._replay_rotating(scheme, addresses, remap=True)
        if type(scheme) is WayFixedScheme:
            return self._replay_rotating(scheme, addresses, remap=False)
        return None

    def _replay_rotating(self, scheme: Any, addresses: Iterable[int],
                         remap: bool) -> int:
        """Replay through a rotation-period scheme in batched segments.

        The scheme rotates exactly when its access counter hits a
        multiple of ``rotation_period`` (checked *before* the access),
        so rotation points are known in advance: process maximal
        rotation-free segments with the array engine, and apply the
        scalar ``scheme._rotate()`` on the synchronised list state at
        each boundary.
        """
        arrays = self._materialize()
        batch = _Batch(self._ways)
        period = scheme.rotation_period
        counter = scheme._accesses
        live = (np.asarray(scheme._live, dtype=np.int64)
                if remap else None)
        stream = iter(addresses)
        while True:
            chunk = np.fromiter(islice(stream, _CHUNK), dtype=np.int64)
            i = 0
            n = int(chunk.size)
            while i < n:
                until = (-counter) % period or period
                if until == 1:
                    # The next access increments the counter onto the
                    # boundary: rotate first, on scalar state.
                    self._writeback(*arrays)
                    scheme._accesses = counter
                    scheme._rotate()
                    arrays = self._materialize()
                    if remap:
                        live = np.asarray(scheme._live, dtype=np.int64)
                    run = period
                else:
                    run = until - 1
                seg = chunk[i:i + min(run, n - i)]
                set_idx, tag = self._decode(seg, live)
                arrays = self._replay_arrays(set_idx, tag, arrays, batch)
                counter += int(seg.size)
                i += int(seg.size)
            if chunk.size < _CHUNK:
                break
        self._writeback(*arrays)
        self._flush_stats(batch)
        scheme._accesses = counter
        return batch.hits


class VectorCache(_VectorReplayMixin):
    """A :class:`Cache` whose ``replay`` runs on the numpy engine."""

    __slots__ = ()


class VectorTLB(_VectorReplayMixin, TLB):
    """A :class:`TLB` whose ``replay`` runs on the numpy engine."""

    __slots__ = ()


# ----------------------------------------------------------------------
# The backend wrapper: SoA structures + batched NBTI kernels
# ----------------------------------------------------------------------
class VectorizedBackend(KernelBackend):
    """The numpy engine (requires the ``fast`` optional dependency)."""

    __slots__ = ()

    name = "vectorized"

    def __init__(self) -> None:
        if np is None:
            from repro.config.specs import SpecError

            raise SpecError(
                'kernel backend "vectorized" requires numpy, which is '
                "not installed; install the 'fast' extra "
                "(pip install 'repro-penelope[fast]') or select "
                "backend=\"reference\""
            )

    def make_cache(self, config: CacheConfig) -> Cache:
        return VectorCache(config)

    def make_tlb(self, config: TLBConfig) -> TLB:
        return VectorTLB(config)

    # The decay factor stays scalar ``math.exp`` (one call per kernel
    # invocation): elementwise ``np.exp`` may round differently from
    # libm in the last ulp, while the remaining multiply/subtract steps
    # are exact-rounded and therefore bit-identical per element.
    def nbti_stress(self, nits: Sequence[float], n_max: float,
                    k_stress: float, duration: float) -> List[float]:
        from repro.nbti.physics import stress_decay

        decay = stress_decay(k_stress, duration)
        nit = np.asarray(nits, dtype=np.float64)
        out: List[float] = (n_max - (n_max - nit) * decay).tolist()
        return out

    def nbti_relax(self, nits: Sequence[float], k_relax: float,
                   duration: float) -> List[float]:
        from repro.nbti.physics import relax_decay

        decay = relax_decay(k_relax, duration)
        nit = np.asarray(nits, dtype=np.float64)
        out: List[float] = (nit * decay).tolist()
        return out

    def steady_state_fill_many(
        self, duties: Sequence[float], recovery_ratio: float = 9.0,
    ) -> List[float]:
        duty = np.asarray(duties, dtype=np.float64)
        if duty.size == 0:
            return []
        bad = ~((duty >= 0.0) & (duty <= 1.0))
        if bad.any():
            offender = float(duty[int(np.argmax(bad))])
            raise ValueError(
                f"duty must be within [0, 1], got {offender!r}"
            )
        if recovery_ratio <= 0.0:
            raise ValueError("recovery_ratio must be positive")
        relax = (1.0 - duty) * recovery_ratio
        denominator = np.where(duty == 0.0, 1.0, duty + relax)
        out: List[float] = np.where(
            duty == 0.0, 0.0, duty / denominator
        ).tolist()
        return out
