"""Observability: execution traces, structured run logs, provenance.

The third leg of the telemetry triad.  :mod:`repro.metrics` (PR 5)
answers *what are the values*; this package answers *when and why*:

- :mod:`repro.obs.trace` — a span-based tracer (``TRACER.span(...)``
  context managers, an allocation-free token form for kernel hot
  paths, a bounded in-memory ring) with Chrome trace-event JSON export
  loadable in Perfetto / ``about://tracing``;
- :mod:`repro.obs.log` — a structured JSONL event stream (run id, span
  id, level, event, payload) with atomic ``O_APPEND`` appends and a
  human console renderer;
- :mod:`repro.obs.provenance` — run manifests recording the git
  revision, package version, interpreter, host, spec hash, worker
  count and per-point wall times of every sweep;
- :mod:`repro.obs.progress` — live sweep progress (rate / ETA) in
  line, JSON, or silent renderings.

The tracer costs nothing measurable while disabled and the differential
tests prove study results are bit-identical with tracing on or off —
observability never changes what is observed (DESIGN.md §7).
"""

from repro.obs.log import (
    EventLog,
    EventTailer,
    LEVELS,
    new_run_id,
    read_events,
    render_event,
    tail_events,
)
from repro.obs.progress import SweepProgress
from repro.obs.provenance import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    describe_manifest,
    environment_fingerprint,
    git_revision,
    load_manifest,
    manifest_path_for,
    spec_hash,
    write_manifest,
)
from repro.obs.trace import (
    TRACE_ENV,
    TRACER,
    Tracer,
    export_chrome_trace,
    get_tracer,
    load_spans,
    save_spans,
    to_chrome_trace,
    traced,
)

__all__ = [
    "EventLog",
    "EventTailer",
    "LEVELS",
    "new_run_id",
    "read_events",
    "render_event",
    "tail_events",
    "SweepProgress",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "describe_manifest",
    "environment_fingerprint",
    "git_revision",
    "load_manifest",
    "manifest_path_for",
    "spec_hash",
    "write_manifest",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "export_chrome_trace",
    "get_tracer",
    "load_spans",
    "save_spans",
    "to_chrome_trace",
    "traced",
]
