"""Unit tests for the reaction-diffusion NBTI model."""

import math

import pytest

from repro.nbti.physics import (
    ReactionDiffusionModel,
    StressPhase,
    simulate_waveform,
    steady_state_fill,
)


class TestSteadyStateFill:
    def test_full_stress_saturates(self):
        assert steady_state_fill(1.0) == 1.0

    def test_no_stress_is_pristine(self):
        assert steady_state_fill(0.0) == 0.0

    def test_balanced_duty_hits_10x_anchor(self):
        # fill(0.5) = 0.1 is the paper's "one order of magnitude lower"
        # V_TH shift for balanced signals.
        assert steady_state_fill(0.5) == pytest.approx(0.1)

    def test_monotonic_in_duty(self):
        fills = [steady_state_fill(d / 10) for d in range(11)]
        assert fills == sorted(fills)
        assert all(b > a for a, b in zip(fills, fills[1:]))

    def test_rejects_out_of_range_duty(self):
        with pytest.raises(ValueError):
            steady_state_fill(1.5)
        with pytest.raises(ValueError):
            steady_state_fill(-0.1)

    def test_rejects_bad_recovery_ratio(self):
        with pytest.raises(ValueError):
            steady_state_fill(0.5, recovery_ratio=0.0)

    def test_custom_recovery_ratio(self):
        # Equal rates: fill(d) = d/(d + (1-d)) = d.
        assert steady_state_fill(0.3, recovery_ratio=1.0) == pytest.approx(0.3)


class TestReactionDiffusionModel:
    def test_stress_increases_nit(self):
        model = ReactionDiffusionModel()
        before = model.nit
        model.stress(1000.0)
        assert model.nit > before

    def test_relax_decreases_nit(self):
        model = ReactionDiffusionModel()
        model.stress(1000.0)
        stressed = model.nit
        model.relax(1000.0)
        assert 0.0 < model.nit < stressed

    def test_recovery_is_asymptotic_not_complete(self):
        # "Full recovery could only happen after infinite relaxation
        # time": each relax interval shrinks NIT geometrically but never
        # reaches zero (within float range).
        model = ReactionDiffusionModel()
        model.stress(1000.0)
        previous = model.nit
        for __ in range(5):
            model.relax(100.0)
            assert 0.0 < model.nit < previous
            previous = model.nit

    def test_nit_bounded_by_n_max(self):
        model = ReactionDiffusionModel()
        model.stress(1e9)
        assert model.nit <= model.n_max

    def test_exact_exponential_stress_update(self):
        model = ReactionDiffusionModel(k_stress=1e-3)
        model.stress(500.0)
        assert model.nit == pytest.approx(1.0 - math.exp(-0.5))

    def test_split_stress_equals_single_interval(self):
        a = ReactionDiffusionModel()
        b = ReactionDiffusionModel()
        a.stress(800.0)
        for __ in range(8):
            b.stress(100.0)
        assert a.nit == pytest.approx(b.nit)

    def test_duty_cycle_converges_to_steady_state(self):
        model = ReactionDiffusionModel(k_stress=1e-3)
        # Fast switching relative to 1/k: the discrete trajectory
        # converges to the continuous steady state.
        model.run_duty_cycle(duty=0.5, period=1.0, cycles=30_000)
        assert model.fill == pytest.approx(model.steady_state(0.5), rel=0.05)

    def test_duty_cycle_ordering(self):
        fills = []
        for duty in (0.3, 0.6, 0.9):
            model = ReactionDiffusionModel()
            model.run_duty_cycle(duty, period=1.0, cycles=20_000)
            fills.append(model.fill)
        assert fills == sorted(fills)

    def test_history_records_phase_boundaries(self):
        model = ReactionDiffusionModel()
        model.stress(10.0)
        model.relax(5.0)
        history = model.history
        assert len(history) == 3
        assert history[0] == (0.0, 0.0)
        assert history[-1][0] == pytest.approx(15.0)

    def test_saw_tooth_shape(self):
        # Figure 1: NIT rises during stress, falls during relax.
        model = ReactionDiffusionModel()
        trajectory = simulate_waveform(
            [(StressPhase.STRESS, 500.0), (StressPhase.RELAX, 500.0)] * 3,
            model,
        )
        values = [nit for __, nit in trajectory]
        for i in range(1, len(values), 2):
            assert values[i] > values[i - 1]  # stress raised NIT
        for i in range(2, len(values), 2):
            assert values[i] < values[i - 1]  # relax lowered NIT

    def test_degradation_slows_as_bonds_deplete(self):
        # Figure 1's saturating envelope: equal stress intervals generate
        # fewer traps as fewer Si-H bonds remain.
        model = ReactionDiffusionModel()
        deltas = []
        for __ in range(5):
            before = model.nit
            model.stress(1000.0)
            deltas.append(model.nit - before)
        assert deltas == sorted(deltas, reverse=True)

    def test_temperature_accelerates_stress(self):
        hot = ReactionDiffusionModel(temperature_k=400.0)
        cold = ReactionDiffusionModel(temperature_k=320.0)
        assert hot.acceleration > 1.0 > cold.acceleration

    def test_voltage_accelerates_stress(self):
        high = ReactionDiffusionModel(vdd=1.3)
        low = ReactionDiffusionModel(vdd=0.9)
        assert high.acceleration > 1.0 > low.acceleration

    def test_reference_conditions_are_neutral(self):
        assert ReactionDiffusionModel().acceleration == pytest.approx(1.0)

    def test_reset(self):
        model = ReactionDiffusionModel()
        model.stress(100.0)
        model.reset()
        assert model.nit == 0.0
        assert model.time == 0.0
        assert model.history == [(0.0, 0.0)]

    def test_apply_dispatches_phases(self):
        model = ReactionDiffusionModel()
        model.apply(StressPhase.STRESS, 100.0)
        assert model.nit > 0.0
        nit = model.nit
        model.apply(StressPhase.RELAX, 100.0)
        assert model.nit < nit

    def test_rejects_negative_duration(self):
        model = ReactionDiffusionModel()
        with pytest.raises(ValueError):
            model.stress(-1.0)
        with pytest.raises(ValueError):
            model.relax(-1.0)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReactionDiffusionModel(k_stress=0.0)
        with pytest.raises(ValueError):
            ReactionDiffusionModel(recovery_ratio=-1.0)
        with pytest.raises(ValueError):
            ReactionDiffusionModel(n_max=0.0)
        with pytest.raises(ValueError):
            ReactionDiffusionModel(nit=2.0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            ReactionDiffusionModel().run_duty_cycle(0.5, 1.0, -1)


class TestSimulateWaveform:
    def test_creates_default_model(self):
        trajectory = simulate_waveform([(StressPhase.STRESS, 100.0)])
        assert len(trajectory) == 2
        assert trajectory[-1][1] > 0.0

    def test_empty_waveform(self):
        trajectory = simulate_waveform([])
        assert trajectory == [(0.0, 0.0)]
