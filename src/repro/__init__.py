"""repro — reproduction of "Penelope: The NBTI-Aware Processor" (MICRO 2007).

Layered structure:

- :mod:`repro.nbti` — NBTI device physics and guardband calibration.
- :mod:`repro.circuits` — gate-level circuits and the Ladner-Fischer
  adder with per-PMOS stress accounting.
- :mod:`repro.uarch` — the trace-driven core model (register files,
  scheduler, caches, TLB, MOB, issue ports).
- :mod:`repro.workloads` — synthetic Table 1 workload generators.
- :mod:`repro.core` — the Penelope mechanisms and the NBTIefficiency
  metric (the paper's contribution).
- :mod:`repro.experiments` — declarative sweeps, parallel execution
  and the cached result store (the run-coordination layer).
- :mod:`repro.analysis` — aggregation and report formatting.

Quick start::

    from repro.workloads import generate_workload
    from repro.core import PenelopeProcessor

    workload = generate_workload(traces_per_suite=1, length=5000)
    report = PenelopeProcessor().evaluate(workload)
    print(report.efficiency, "vs baseline", report.baseline_efficiency)
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
