"""reset() audit: every MetricSource zeroes its counters on reset.

PR 2 added per-component ``reset()`` methods ad hoc; this suite drives
every stat-bearing component through the shared audit helper
(``tests/conftest.py::assert_reset_zeroes_counters``), which exercises
the component, checks the activity registered, resets, and asserts all
counters in the metric tree read zero again.  BranchPredictor and TLB —
previously untested — are covered explicitly.
"""

import random

from repro.uarch.cache import Cache, CacheConfig
from repro.workloads import TraceGenerator

CONFIG = CacheConfig(name="DL0-4K-4w", size_bytes=4 * 1024, ways=4)


def _addresses(length=1200, seed=7):
    rng = random.Random(seed)
    return [rng.randrange(1 << 14) * 64 for __ in range(length)]


class TestResetAudit:
    def test_cache(self, reset_audit):
        reset_audit(Cache(CONFIG),
                    lambda cache: cache.replay(_addresses()))

    def test_tlb(self, reset_audit):
        from repro.uarch.tlb import TLB, TLBConfig

        def exercise(tlb):
            for address in _addresses(400):
                tlb.translate(address * 16)

        reset_audit(TLB(TLBConfig(name="DTLB-32", entries=32)), exercise)

    def test_protected_cache(self, reset_audit):
        from repro.core.cache_like import LineFixedScheme, ProtectedCache

        reset_audit(
            ProtectedCache(Cache(CONFIG), LineFixedScheme(0.5), seed=2),
            lambda protected: protected.replay(_addresses()),
        )

    def test_register_file(self, reset_audit):
        from repro.uarch.regfile import RegisterFile

        def exercise(rf):
            entry = rf.allocate(0.0)
            rf.write(entry, 0b1010, 1.0)
            rf.release(entry, 2.0)
            rf.write_special(entry, 0b0101, 3.0)

        reset_audit(RegisterFile(entries=8, width=8), exercise)

    def test_scheduler(self, reset_audit):
        from repro.uarch.scheduler import Scheduler
        from repro.uarch.uop import Uop, UopClass

        def exercise(scheduler):
            uop = Uop(seq=0, uop_class=UopClass.ALU)
            slot = scheduler.allocate(0.0)
            scheduler.fill(slot, uop, None, 0.0)
            scheduler.release(slot, 1.0)
            scheduler.write_special(slot, {"immediate": 3}, 2.0)

        reset_audit(Scheduler(entries=4), exercise)

    def test_mob(self, reset_audit):
        from repro.uarch.mob import MemoryOrderBuffer

        def exercise(mob):
            for __ in range(20):
                mob.allocate()

        reset_audit(MemoryOrderBuffer(entries=8), exercise)

    def test_bitbias_accumulator(self, reset_audit):
        from repro.uarch.bitbias import BitBiasAccumulator

        def exercise(bias):
            bias.set_value(0, 0b1100, 1.0)
            bias.set_value(0, 0b0011, 2.0)
            bias.finalize(3.0)

        reset_audit(BitBiasAccumulator(4, 4), exercise)

    def test_bimodal_predictor(self, reset_audit):
        from repro.uarch.branch_predictor import BimodalPredictor

        def exercise(predictor):
            rng = random.Random(1)
            for __ in range(200):
                predictor.update(rng.randrange(1 << 12),
                                 rng.random() < 0.7)

        reset_audit(BimodalPredictor(entries=64), exercise)

    def test_protected_bimodal_predictor(self, reset_audit):
        from repro.uarch.branch_predictor import (
            BimodalPredictor,
            ProtectedBimodalPredictor,
        )

        def exercise(protected):
            rng = random.Random(2)
            for __ in range(200):
                protected.update(rng.randrange(1 << 12),
                                 rng.random() < 0.7)

        reset_audit(
            ProtectedBimodalPredictor(BimodalPredictor(entries=64),
                                      rotation_period=64),
            exercise,
        )

    def test_trace_driven_core(self, reset_audit):
        from repro.uarch import TraceDrivenCore

        trace = TraceGenerator(seed=5).generate("specint2000", length=600)
        # run() resets on entry, so exercise WITHOUT letting run() clean
        # up afterwards, then call reset() explicitly via the audit.
        reset_audit(TraceDrivenCore(), lambda core: core.run(trace))

    def test_predictor_reset_restores_prediction_behaviour(self):
        """reset() must restore the cold table, not just the counters."""
        from repro.uarch.branch_predictor import BimodalPredictor

        predictor = BimodalPredictor(entries=16)
        for __ in range(4):
            predictor.update(0x40, True)
        assert predictor.predict(0x40) is True
        predictor.reset()
        assert predictor.predict(0x40) is False  # weak-not-taken again
        assert predictor.stats.predictions == 0
        assert predictor.bias.total_observed_time() == 0.0

    def test_protected_predictor_reset_reapplies_inverted_window(self):
        from repro.uarch.branch_predictor import (
            ProtectedBimodalPredictor,
        )

        protected = ProtectedBimodalPredictor(ratio=0.5,
                                              rotation_period=32)
        rng = random.Random(3)
        for __ in range(100):
            protected.update(rng.randrange(1 << 12), True)
        protected.reset()
        assert protected._first == 0 and protected._updates == 0
        # the window is re-inverted at index 0
        assert protected._is_inverted(0)
        assert protected.stats.predictions == 0
