"""Branch predictor: the paper's other cache-like example.

Section 3.2.1 lists branch predictors among the cache-like blocks whose
entries can be invalidated and inverted.  A bimodal predictor's pattern
table is an extreme case of biased storage: 2-bit counters saturate
toward taken/not-taken, so one PMOS per cell degrades continuously.

:class:`BimodalPredictor` models the table with per-cell residency
accounting, and :class:`ProtectedBimodalPredictor` applies the paper's
line-granularity inversion: a fraction of the counters holds inverted
contents and rotates round-robin, halving the effective table (a small
accuracy cost the study quantifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics import MetricSet
from repro.uarch.bitbias import BitBiasAccumulator

#: 2-bit saturating counter states.
STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = range(4)

COUNTER_BITS = 2


@dataclass
class PredictorStats:
    predictions: int = 0
    hits: int = 0

    @property
    def accuracy(self) -> float:
        return self.hits / self.predictions if self.predictions else 0.0


class BimodalPredictor:
    """A classic bimodal (per-PC 2-bit counter) branch predictor."""

    def __init__(self, entries: int = 1024,
                 initial_state: int = WEAK_NOT_TAKEN) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if not 0 <= initial_state <= STRONG_TAKEN:
            raise ValueError("invalid counter state")
        self.entries = entries
        self.initial_state = initial_state
        self._counters = [initial_state] * entries
        self.bias = BitBiasAccumulator(entries, COUNTER_BITS,
                                       initial_value=initial_state)
        self.stats = PredictorStats()
        self._now = 0.0

    def reset(self) -> None:
        """Restore the freshly-constructed table, stats and clock."""
        self._counters = [self.initial_state] * self.entries
        self.bias.reset()
        self.stats = PredictorStats()
        self._now = 0.0

    def index_of(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        """Predicted direction for a branch at ``pc``."""
        return self._counters[self.index_of(pc)] >= WEAK_TAKEN

    def update(self, pc: int, taken: bool, now: Optional[float] = None) -> bool:
        """Record the outcome; returns whether the prediction was right.

        ``now`` advances the residency clock (defaults to one unit per
        update).
        """
        self._now = now if now is not None else self._now + 1.0
        index = self.index_of(pc)
        predicted = self._counters[index] >= WEAK_TAKEN
        correct = predicted == taken
        self.stats.predictions += 1
        self.stats.hits += int(correct)
        counter = self._counters[index]
        counter = min(STRONG_TAKEN, counter + 1) if taken else \
            max(STRONG_NOT_TAKEN, counter - 1)
        if counter != self._counters[index]:
            self._counters[index] = counter
            self.bias.set_value(index, counter, self._now)
        return correct

    def write_counter(self, index: int, state: int,
                      now: Optional[float] = None) -> None:
        """Direct state write (used by the inversion mechanism)."""
        if not 0 <= state <= STRONG_TAKEN:
            raise ValueError("invalid counter state")
        self._now = now if now is not None else self._now + 1.0
        self._counters[index] = state
        self.bias.set_value(index, state, self._now)

    def counter(self, index: int) -> int:
        return self._counters[index]

    def worst_bias(self) -> float:
        self.bias.finalize(self._now)
        return self.bias.worst_bias()

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        ms = MetricSet()
        ms.counter("predictions", read=lambda: self.stats.predictions)
        ms.counter("correct", read=lambda: self.stats.hits)
        ms.ratio("accuracy", numerator="correct",
                 denominator="predictions")
        ms.child("bias", self.bias.metrics())
        return ms


class ProtectedBimodalPredictor:
    """Bimodal predictor with a rotating inverted region.

    A contiguous window of ``ratio`` of the table holds inverted repair
    contents; branches indexing into it fall back to a static
    backward-taken-style prediction (here: taken), and their updates are
    dropped.  The window rotates every ``rotation_period`` updates; on
    rotation, leaving counters are re-initialised and entering counters
    are overwritten with the inversion of their current state — the
    invalidate-and-invert step.
    """

    def __init__(
        self,
        predictor: Optional[BimodalPredictor] = None,
        ratio: float = 0.5,
        rotation_period: int = 4096,
    ) -> None:
        if not 0.0 <= ratio < 1.0:
            raise ValueError("ratio must be within [0, 1)")
        if rotation_period <= 0:
            raise ValueError("rotation_period must be positive")
        self.predictor = predictor or BimodalPredictor()
        self.ratio = ratio
        self.rotation_period = rotation_period
        self._window = int(self.predictor.entries * ratio)
        self._first = 0
        self._updates = 0
        self._invert_window()

    def reset(self) -> None:
        """Cold predictor with the inverted window re-applied at 0."""
        self.predictor.reset()
        self._first = 0
        self._updates = 0
        self._invert_window()

    # ------------------------------------------------------------------
    def _is_inverted(self, index: int) -> bool:
        offset = (index - self._first) % self.predictor.entries
        return offset < self._window

    def predict(self, pc: int) -> bool:
        index = self.predictor.index_of(pc)
        if self._is_inverted(index):
            return True  # static fallback for repair-holding entries
        return self.predictor.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        self._updates += 1
        if self._updates % self.rotation_period == 0:
            self._rotate()
        index = self.predictor.index_of(pc)
        if self._is_inverted(index):
            correct = taken  # static taken fallback
            self.predictor.stats.predictions += 1
            self.predictor.stats.hits += int(correct)
            return correct
        return self.predictor.update(pc, taken)

    @property
    def stats(self) -> PredictorStats:
        return self.predictor.stats

    def worst_bias(self) -> float:
        return self.predictor.worst_bias()

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        ms = self.predictor.metrics()
        ms.gauge("inverted_frac",
                 read=lambda: self._window / self.predictor.entries,
                 help="fraction of counters holding inverted repair data")
        return ms

    # ------------------------------------------------------------------
    def _invert_window(self) -> None:
        mask = (1 << COUNTER_BITS) - 1
        for offset in range(self._window):
            index = (self._first + offset) % self.predictor.entries
            inverted = (~self.predictor.counter(index)) & mask
            self.predictor.write_counter(index, inverted)

    def _rotate(self) -> None:
        entries = self.predictor.entries
        mask = (1 << COUNTER_BITS) - 1
        leaving = self._first
        entering = (self._first + self._window) % entries
        # The leaving counter returns to service weakly-not-taken; the
        # entering counter is invalidated-and-inverted.
        self.predictor.write_counter(leaving, WEAK_NOT_TAKEN)
        inverted = (~self.predictor.counter(entering)) & mask
        self.predictor.write_counter(entering, inverted)
        self._first = (self._first + 1) % entries
