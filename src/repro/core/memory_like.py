"""RINV registers and protectors for explicitly managed blocks.

Section 3.2.2: every explicitly managed structure (or field thereof) gets
a special register, RINV, holding the value to write into entries when
they are released.  RINV contents follow the per-bit techniques chosen by
the Figure 3 casuistic:

- ISV fields sample a workload value periodically and store its
  inversion;
- ALL1 / ALL0 / ALL1-K% fields hold constants or duty-cycled constants;
- self-balanced and unprotected fields are left alone.

Updates go through ports left idle by the workload and are discarded when
none is available — Section 4.4 measures that this happens rarely (ports
free 92% / 86% of the time for INT / FP register files).

The protectors plug into :class:`repro.uarch.core.TraceDrivenCore` via
its :class:`~repro.uarch.core.CoreHooks` observer interface.  They are
registered by name in :data:`repro.config.registry.RF_PROTECTORS`
(``isv``) and :data:`repro.config.registry.SCHEDULER_PROTECTORS`
(``derived_policy``, ``paper_policy``), the registries JSON configs and
:func:`repro.api.build_hooks` resolve mechanism names through.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.policy import BitDirective, Technique, choose_technique, repair_bit
from repro.uarch.core import CoreHooks
from repro.uarch.regfile import RegisterFile
from repro.uarch.scheduler import Scheduler
from repro.uarch.uop import SCHEDULER_LAYOUT, Uop

#: Default RINV sampling period in cycles ("we can update RINV with the
#: value flowing through a given write port ... every one million
#: cycles"; scaled to the library's shorter traces).
DEFAULT_SAMPLE_PERIOD = 512.0

#: Resolution of the K-duty phase counter for ALL1-K% techniques.
K_PHASE_STEPS = 20


class RINVRegister:
    """The special register holding inverted sampled values."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._mask = (1 << width) - 1
        self.value = self._mask  # inversion of the all-zeros reset value
        self.updates = 0

    def update_from_sample(self, sample: int) -> None:
        """Store the inversion of a sampled workload value."""
        self.value = (~sample) & self._mask
        self.updates += 1


class ISVRegisterFileProtector(CoreHooks):
    """ISV protection of a register file (Section 4.4).

    Registers are free more than 50% of the time, so the Figure 3
    casuistic selects ISV: released registers are overwritten with RINV
    (an inverted sampled value) — but only while entries have spent more
    time non-inverted than inverted, which the mechanism decides by
    timestamping a *single sampled entry* ("statistically, all entries
    will spend the same time inverted ... we choose a fixed entry for the
    sake of simplicity").
    """

    def __init__(
        self,
        rf_name: str,
        width: int,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        entries_hint: int = 128,
    ) -> None:
        if sample_period <= 0.0:
            raise ValueError("sample_period must be positive")
        self.rf_name = rf_name
        self.rinv = RINVRegister(width)
        self.sample_period = sample_period
        self._last_sample = -sample_period  # sample immediately
        # Inverted-residency tracker.  The paper timestamps one sampled
        # entry ("tracking all entries or any entry gives the same
        # results"); we integrate over the whole population, which is the
        # same estimator without single-entry sampling noise: in the
        # simulation the single entry's phase correlates with the global
        # decision and systematically under-inverts.
        self._entries = entries_hint
        self._inverted: set = set()
        self._inv_integral = 0.0
        self._total_integral = 0.0
        self._last_event = 0.0
        self.updates_written = 0
        self.updates_skipped = 0

    # -- CoreHooks ------------------------------------------------------
    def on_regfile_write(self, rf: RegisterFile, entry: int, value: int,
                         now: float) -> None:
        if rf.name != self.rf_name:
            return
        self._entries = rf.entries
        if now - self._last_sample >= self.sample_period:
            self.rinv.update_from_sample(value)
            self._last_sample = now
        self._integrate(now)
        self._inverted.discard(entry)

    def on_regfile_release(self, rf: RegisterFile, entry: int,
                           now: float) -> None:
        if rf.name != self.rf_name:
            return
        self._entries = rf.entries
        self._integrate(now)
        if self._should_invert():
            if rf.write_special(entry, self.rinv.value, now):
                self.updates_written += 1
                self._inverted.add(entry)
            else:
                self.updates_skipped += 1

    # -- internals ------------------------------------------------------
    def _should_invert(self) -> bool:
        """Invert while cumulative inverted residency trails 50%."""
        return self._inv_integral <= 0.5 * self._total_integral

    def _integrate(self, now: float) -> None:
        elapsed = now - self._last_event
        if elapsed > 0.0:
            self._inv_integral += elapsed * len(self._inverted)
            self._total_integral += elapsed * self._entries
            self._last_event = now

    @property
    def inverted_time_fraction(self) -> float:
        """Fraction of entry-time spent holding inverted contents."""
        if self._total_integral <= 0.0:
            return 0.0
        return self._inv_integral / self._total_integral


#: Fields whose activity is self-balanced by construction (register file
#: entries and MOB slots are used evenly — Section 4.5).
SELF_BALANCED_FIELDS = ("dst_tag", "src1_tag", "src2_tag", "mob_id")

#: Per-field, per-bit directives for the scheduler.
SchedulerPolicy = Dict[str, List[BitDirective]]


def _directives(technique: Technique, width: int, k: float = 1.0) -> List[BitDirective]:
    return [BitDirective(technique, k) for _ in range(width)]


def _paper_policy() -> SchedulerPolicy:
    """The field classification published in Section 4.5.

    - ALL1: latency bits 4-5, port, flags, shift1, shift2.
    - ALL1-K%: latency bits 1-3 (K = 95/75/95%), taken (50%), tos (50%),
      ready1/ready2 (60%).
    - ISV: src1_data, src2_data, immediate (and opcode, which the paper
      leaves implementation-defined).
    - Self-balanced: register tags and MOB id.
    - Unprotected: valid.
    """
    layout = SCHEDULER_LAYOUT
    policy: SchedulerPolicy = {
        "valid": _directives(Technique.UNPROTECTED, layout.valid),
        "latency": [
            BitDirective(Technique.ALL1_K, 0.95),
            BitDirective(Technique.ALL1_K, 0.75),
            BitDirective(Technique.ALL1_K, 0.95),
            BitDirective(Technique.ALL1),
            BitDirective(Technique.ALL1),
        ],
        "port": _directives(Technique.ALL1, layout.port),
        "taken": _directives(Technique.ALL1_K, layout.taken, k=0.50),
        "mob_id": _directives(Technique.SELF_BALANCED, layout.mob_id),
        "tos": _directives(Technique.ALL1_K, layout.tos, k=0.50),
        "flags": _directives(Technique.ALL1, layout.flags),
        "shift1": _directives(Technique.ALL1, layout.shift1),
        "shift2": _directives(Technique.ALL1, layout.shift2),
        "dst_tag": _directives(Technique.SELF_BALANCED, layout.dst_tag),
        "src1_tag": _directives(Technique.SELF_BALANCED, layout.src1_tag),
        "src2_tag": _directives(Technique.SELF_BALANCED, layout.src2_tag),
        "ready1": _directives(Technique.ALL1_K, layout.ready1, k=0.60),
        "ready2": _directives(Technique.ALL1_K, layout.ready2, k=0.60),
        "src1_data": _directives(Technique.ISV, layout.src1_data),
        "src2_data": _directives(Technique.ISV, layout.src2_data),
        "immediate": _directives(Technique.ISV, layout.immediate),
        "opcode": _directives(Technique.ISV, layout.opcode),
    }
    return policy


#: The classification published in the paper (Section 4.5).
PAPER_SCHEDULER_POLICY: SchedulerPolicy = _paper_policy()

#: ISV fields sample these uop attributes (pre-inversion).
_ISV_SOURCES = {
    "src1_data": lambda uop: uop.src1_value,
    "src2_data": lambda uop: uop.src2_value,
    "immediate": lambda uop: uop.immediate,
    "opcode": lambda uop: uop.opcode,
}


class SchedulerProtector(CoreHooks):
    """Applies a :data:`SchedulerPolicy` at slot release (Section 4.5)."""

    def __init__(
        self,
        policy: Optional[SchedulerPolicy] = None,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
    ) -> None:
        self.policy = policy if policy is not None else PAPER_SCHEDULER_POLICY
        self.sample_period = sample_period
        layout = SCHEDULER_LAYOUT.fields()
        self.rinv: Dict[str, RINVRegister] = {
            name: RINVRegister(width)
            for name, width in layout.items()
            if name in _ISV_SOURCES
        }
        self._last_sample = -sample_period
        self._phase_counter = 0
        self.updates_written = 0
        self.updates_skipped = 0

    # -- CoreHooks ------------------------------------------------------
    def on_scheduler_fill(self, sched: Scheduler, slot: int, uop: Uop,
                          now: float) -> None:
        if now - self._last_sample < self.sample_period:
            return
        self._last_sample = now
        for fieldname, source in _ISV_SOURCES.items():
            width = self.rinv[fieldname].width
            self.rinv[fieldname].update_from_sample(
                source(uop) & ((1 << width) - 1)
            )

    def on_scheduler_release(self, sched: Scheduler, slot: int,
                             now: float) -> None:
        values = self._compose_repair_values(sched)
        if not values:
            return
        if sched.write_special(slot, values, now):
            self.updates_written += 1
        else:
            self.updates_skipped += 1
        self._phase_counter += 1

    # -- internals ------------------------------------------------------
    def _compose_repair_values(self, sched: Scheduler) -> Dict[str, int]:
        phase = (self._phase_counter % K_PHASE_STEPS) / K_PHASE_STEPS
        values: Dict[str, int] = {}
        for fieldname, directives in self.policy.items():
            rinv = self.rinv.get(fieldname)
            inverted_sample = rinv.value if rinv is not None else None
            composed = 0
            any_bit = False
            for bit_index, directive in enumerate(directives):
                sampled_bit = None
                if inverted_sample is not None:
                    # RINV already stores the inversion; undo it here
                    # because repair_bit() inverts sampled bits itself.
                    sampled_bit = 1 - ((inverted_sample >> bit_index) & 1)
                bit = repair_bit(directive, phase, sampled_bit)
                if bit is None:
                    continue
                any_bit = True
                composed |= bit << bit_index
            if any_bit:
                values[fieldname] = composed
        return values


class SchedulerProfiler(CoreHooks):
    """Profiling pass: collects busy-time bit statistics at dispatch.

    The paper derives K for each field from 100 profiling traces
    (Section 4.5); this hook accumulates the per-bit one-frequency of
    dispatched payloads, which :func:`derive_scheduler_policy` combines
    with the measured occupancy.
    """

    def __init__(self) -> None:
        layout = SCHEDULER_LAYOUT
        self.fills = 0
        self._ones = {
            name: [0] * width for name, width in layout.fields().items()
        }
        self._field_fills = {name: 0 for name in layout.fields()}

    def on_scheduler_fill(self, sched: Scheduler, slot: int, uop: Uop,
                          now: float) -> None:
        self.fills += 1
        mob_id = 0 if uop.uop_class.is_memory else None
        values = sched.field_values(uop, mob_id=mob_id)
        for name, counts in self._ones.items():
            if name not in values:
                continue
            self._field_fills[name] += 1
            value = values[name]
            for bit_index in range(len(counts)):
                counts[bit_index] += (value >> bit_index) & 1

    def busy_bias_to_zero(self) -> Dict[str, List[float]]:
        """Per-field, per-bit fraction of dispatched payloads with a 0."""
        if self.fills == 0:
            raise ValueError("no fills profiled yet")
        return {
            name: [
                1.0 - ones / max(1, self._field_fills[name])
                for ones in counts
            ]
            for name, counts in self._ones.items()
        }


def derive_scheduler_policy(
    profiler: SchedulerProfiler,
    occupancy: float,
    field_occupancy: Optional[Mapping[str, float]] = None,
) -> SchedulerPolicy:
    """Build a policy from profiling data via the Figure 3 casuistic.

    Parameters
    ----------
    profiler:
        A :class:`SchedulerProfiler` that observed a profiling run.
    occupancy:
        Measured scheduler occupancy (the paper's is 63%).
    field_occupancy:
        Per-field overrides — the data fields are effectively available
        70-75% of the time "because they remain unused beyond the
        allocation or are not used at all for some instructions".
    """
    bias = profiler.busy_bias_to_zero()
    overrides = dict(field_occupancy or {})
    policy: SchedulerPolicy = {}
    for name, bit_biases in bias.items():
        occ = overrides.get(name, occupancy)
        directives = []
        for bit_bias in bit_biases:
            directives.append(
                choose_technique(
                    occupancy=occ,
                    busy_bias_to_zero=bit_bias,
                    self_balanced=name in SELF_BALANCED_FIELDS,
                    protectable=name != "valid",
                )
            )
        policy[name] = directives
    return policy
