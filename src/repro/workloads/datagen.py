"""Biased operand and address generators.

Section 1.1 of the paper observes that real program data is heavily
biased: "zero-signal probability for the integer register file ranges
between 65% and 90% for all bits", the adder carry-in is "0" more than
90% of the time, and some scheduler fields sit at almost 100%.  The
generators here synthesise operand streams with those fingerprints:

- integers are a mixture of loop counters, aligned addresses, small
  constants and occasional random words — high bits are almost always 0,
  low bits are zero more often than not;
- FP values use the x87 80-bit extended encoding of mostly-small,
  mostly-simple reals, giving the structured bias of Figure 6 (FP);
- addresses follow per-suite working sets with hot regions, strides and
  a random tail.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from typing import List

from repro.uarch.uop import FP_WIDTH, INT_WIDTH

_INT_MASK = (1 << INT_WIDTH) - 1


def encode_x87(value: float) -> int:
    """Encode a float as an x87 80-bit extended-precision integer.

    Layout (little-endian bit order): 63-bit fraction, 1 explicit
    integer bit, 15-bit biased exponent, 1 sign bit.  The encoding goes
    through IEEE-754 double and widens, which is exact for every double.
    """
    if math.isnan(value) or math.isinf(value):
        raise ValueError("NaN/Inf operands are not generated")
    if value == 0.0:
        return 0
    bits64 = struct.unpack("<Q", struct.pack("<d", value))[0]
    sign = bits64 >> 63
    exponent11 = (bits64 >> 52) & 0x7FF
    fraction52 = bits64 & ((1 << 52) - 1)
    if exponent11 == 0:
        # Subnormal double: normalise into the explicit-integer-bit form.
        shift = 52 - fraction52.bit_length() + 1
        fraction52 = (fraction52 << shift) & ((1 << 52) - 1)
        exponent15 = 16383 - 1022 - shift
    else:
        exponent15 = exponent11 - 1023 + 16383
    integer_bit = 1
    fraction63 = fraction52 << 11
    return (sign << 79) | (exponent15 << 64) | (integer_bit << 63) | fraction63


@dataclass
class BiasedIntGenerator:
    """Mixture model for integer operand values.

    The mixture weights are per-suite knobs; defaults give the 65-90%
    per-bit zero bias of Section 1.1.
    """

    rng: random.Random
    counter_weight: float = 0.35
    address_weight: float = 0.25
    constant_weight: float = 0.15
    medium_weight: float = 0.15
    random_weight: float = 0.10
    #: Address region base / size for address-like values.
    region_base: int = 0x0040_0000
    region_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        weights = [
            self.counter_weight,
            self.address_weight,
            self.constant_weight,
            self.medium_weight,
            self.random_weight,
        ]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("mixture weights must be non-negative, sum > 0")
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._counter = self.rng.randrange(256) * 4

    def next(self) -> int:
        draw = self.rng.random()
        if draw < self._cdf[0]:
            # Loop counters / indices: geometric magnitudes with sparse
            # set bits (ANDed uniforms: each bit is 1 only 25% of the
            # time), word-stride biased so low bits are often 0.  A small
            # negative (two's-complement) tail keeps high bits from being
            # 0 *all* the time, as real index arithmetic does.
            bits = self.rng.choice((3, 4, 5, 6, 8, 10))
            value = (self.rng.randrange(1 << bits)
                     & self.rng.randrange(1 << bits)) * 4
            if self.rng.random() < 0.08:
                return (-value - 4) & _INT_MASK
            return value
        if draw < self._cdf[1]:
            # Word-aligned addresses: region base plus a sparse geometric
            # offset (most accesses land near the base of the hot region).
            bits = self.rng.choice((6, 8, 10, 12, 14, 16))
            offset = (self.rng.randrange(1 << bits)
                      & self.rng.randrange(1 << bits)) * 4
            return (self.region_base + offset) & _INT_MASK
        if draw < self._cdf[2]:
            # Small constants: 0, 1, powers of two, -1-ish masks.
            choice = self.rng.random()
            if choice < 0.5:
                return self.rng.choice((0, 1, 2, 4, 8))
            if choice < 0.85:
                return 1 << self.rng.randrange(12)
            return _INT_MASK  # an all-ones mask now and then
        if draw < self._cdf[3]:
            # Medium magnitudes: 16-bit-ish quantities, sparse set bits.
            return (self.rng.randrange(1 << 16)
                    & self.rng.randrange(1 << 16))
        return self.rng.randrange(1 << INT_WIDTH)


@dataclass
class FPValueGenerator:
    """Biased x87 operand values.

    Real FP data is dominated by small magnitudes, integers stored as
    floats and simple fractions; random 64-bit-mantissa reals are rare.
    """

    rng: random.Random
    small_int_weight: float = 0.35
    simple_real_weight: float = 0.35
    uniform_weight: float = 0.20
    zero_weight: float = 0.10

    #: Fraction of non-zero values that are negative (sign bit set).
    negative_fraction: float = 0.15

    def next_float(self) -> float:
        draw = self.rng.random()
        if draw < self.zero_weight:
            return 0.0
        if draw < self.zero_weight + self.small_int_weight:
            magnitude = float(self.rng.randrange(1, 1000))
        elif draw < (self.zero_weight + self.small_int_weight
                     + self.simple_real_weight):
            magnitude = (self.rng.randrange(1, 64)
                         / self.rng.choice((2, 4, 8, 10, 100)))
        else:
            magnitude = self.rng.uniform(1e-3, 1e6)
        if self.rng.random() < self.negative_fraction:
            return -magnitude
        return magnitude

    def next(self) -> int:
        """Next operand as an 80-bit x87 pattern."""
        return encode_x87(self.next_float()) & ((1 << FP_WIDTH) - 1)


@dataclass
class AddressGenerator:
    """Per-suite memory address streams.

    A working set is a few hot regions accessed with strides plus a
    random tail; the working-set size is the per-suite knob that drives
    the Table 3 cache results (programs with working sets larger than
    the shrunk cache lose performance under inversion; small ones do
    not).
    """

    rng: random.Random
    working_set_bytes: int = 16 * 1024
    hot_fraction: float = 0.92
    stride_bytes: int = 4
    regions: int = 4
    base: int = 0x1000_0000
    #: Look-back window of the cold stream's backward jumps; small, so
    #: cold traffic is compulsory-miss-dominated at any cache size.
    cold_bytes: int = 32 * 1024

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within [0, 1]")
        region_bytes = max(self.stride_bytes,
                           self.working_set_bytes // max(self.regions, 1))
        self._region_bytes = region_bytes
        self._bases = [
            self.base + i * (region_bytes + 64 * 1024)
            for i in range(max(self.regions, 1))
        ]
        self._cursors = [0] * len(self._bases)
        self._cold_base = self.base + len(self._bases) * (
            region_bytes + 64 * 1024
        )
        self._cold_cursor = 0
        # Zipf-like region weights: real programs concentrate most of
        # their reuse in a small hot core, so halving the cache mostly
        # sacrifices the rarely-touched tail regions (this is what keeps
        # the paper's Table 3 losses under ~2%).
        weights = [0.6 ** i for i in range(len(self._bases))]
        total = sum(weights)
        self._region_cdf = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._region_cdf.append(acc)

    def _pick_region(self) -> int:
        draw = self.rng.random()
        for region, edge in enumerate(self._region_cdf):
            if draw < edge:
                return region
        return len(self._region_cdf) - 1

    def next(self) -> int:
        if self.rng.random() < self.hot_fraction:
            region = self._pick_region()
            if self.rng.random() < 0.9:
                # Word-by-word stride: consecutive accesses land in the
                # same cache line most of the time (spatial locality is
                # what puts 90% of DL0 hits in the MRU way).
                self._cursors[region] = (
                    self._cursors[region] + self.stride_bytes
                ) % self._region_bytes
                offset = self._cursors[region]
            else:
                offset = self.rng.randrange(self._region_bytes // 4) * 4
            return self._bases[region] + offset
        # Cold tail: a monotonic stream (compulsory misses for any cache
        # size — no reuse a bigger structure could exploit) with nearby
        # backward jumps that stay within a recent, small window.
        if self.rng.random() < 0.6:
            self._cold_cursor += 64
            return self._cold_base + self._cold_cursor
        lookback = min(self._cold_cursor, self.cold_bytes)
        offset = self.rng.randrange(max(1, lookback // 64)) * 64
        return self._cold_base + self._cold_cursor - offset
