"""Figure 6: INT and FP register-file bit bias, baseline vs ISV.

Paper: worst bit bias falls from 89.9% (INT) / 84.2% (FP) to 48.5% /
45.5% with inverted-sampled-value updates at register release.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis import format_table, merge_bias_arrays, worst_imbalance
from repro.core.memory_like import ISVRegisterFileProtector
from repro.uarch import TraceDrivenCore
from repro.uarch.core import CompositeHooks
from repro.uarch.uop import FP_WIDTH, INT_WIDTH

from conftest import SMOKE, write_result


def run_isv(workload):
    results = []
    for trace in workload:
        hooks = CompositeHooks([
            ISVRegisterFileProtector("int_rf", INT_WIDTH, 512.0),
            ISVRegisterFileProtector("fp_rf", FP_WIDTH, 512.0),
        ])
        results.append(TraceDrivenCore(hooks=hooks).run(trace))
    return results


def _worst(results, fp):
    merged = merge_bias_arrays(
        [(r.fp_rf if fp else r.int_rf).bias_to_zero for r in results],
        weights=[r.cycles for r in results],
    )
    __, bias = worst_imbalance(merged)
    return max(bias, 1.0 - bias)


def test_fig6_regfile_bias(benchmark, workload, baseline_results):
    protected = benchmark.pedantic(
        run_isv, args=(workload,), rounds=1, iterations=1
    )
    base = list(baseline_results.values())

    int_base, int_isv = _worst(base, fp=False), _worst(protected, fp=False)
    fp_base, fp_isv = _worst(base, fp=True), _worst(protected, fp=True)
    free_int = float(np.mean([r.int_rf.free_fraction for r in base]))
    free_fp = float(np.mean([r.fp_rf.free_fraction for r in base]))
    ports_int = float(np.mean(
        [r.int_rf.port_free_fraction for r in protected]
    ))

    if not SMOKE:
        assert int_isv < int_base
        assert fp_isv < fp_base
        assert int_base > 0.85   # paper: 89.9%
        assert int_isv < 0.70    # paper: 48.5% (warmup-limited here)

    rows = [
        ["INT worst bias (baseline)", f"{int_base:.1%}", "89.9%"],
        ["INT worst bias (ISV)", f"{int_isv:.1%}", "48.5%"],
        ["FP worst bias (baseline)", f"{fp_base:.1%}", "84.2%"],
        ["FP worst bias (ISV)", f"{fp_isv:.1%}", "45.5%"],
        ["INT free fraction", f"{free_int:.1%}", "54%"],
        ["FP free fraction", f"{free_fp:.1%}", "69%"],
        ["INT write port free at release", f"{ports_int:.1%}", "92%"],
    ]
    write_result(
        "fig6_regfile_bias.txt",
        format_table(["statistic", "measured", "paper"], rows,
                     title="Figure 6 — register file bit-cell balancing"),
    )
