"""Idle-input injection for combinational blocks (Sections 3.1 and 4.3).

The strategy: during idle cycles, hardwired synthetic inputs are written
into the block's input latches, alternating (round-robin) between a small
set chosen so that different inputs stress *different* PMOS transistors.
The paper's adder case study uses the eight combinations of
<InputA, InputB, CarryIn> with each operand all-0s or all-1s, pairs them
exhaustively (Figure 4), and picks the pair — <0,0,0> + <1,1,1> — that
leaves the fewest narrow transistors fully stressed; Figure 5 then shows
the guardband as a function of the block's real utilisation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.circuits.aging import AgingReport, AgingSimulator
from repro.circuits.ladner_fischer import LadnerFischerAdder
from repro.nbti.guardband import DEFAULT_GUARDBAND_MODEL, GuardbandModel

#: (a, b, cin) with operands collapsed to all-0s / all-1s.
SyntheticInput = Tuple[int, int, int]

#: Operand vectors sampled from real traces: (a, b, cin).
RealVector = Tuple[int, int, int]


def synthetic_inputs(width: int) -> List[SyntheticInput]:
    """The eight <InputA, InputB, CarryIn> combinations of Section 4.3.

    Numbered 1..8 in the paper's ascending order: input 1 is <0,0,0>,
    input 2 is <0,0,1>, ..., input 8 is <1,1,1>.
    """
    ones = (1 << width) - 1
    combos = []
    for a_bit, b_bit, cin in itertools.product((0, 1), repeat=3):
        combos.append((ones if a_bit else 0, ones if b_bit else 0, cin))
    return combos


def input_pairs(width: int) -> List[Tuple[int, int]]:
    """All 28 unordered pairs of synthetic inputs (1-based indices)."""
    return list(itertools.combinations(range(1, 9), 2))


def evaluate_input_pair(
    adder: LadnerFischerAdder,
    pair: Tuple[int, int],
    guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
) -> AgingReport:
    """Age the adder under one round-robin pair of synthetic inputs.

    Round-robin alternation gives every PMOS a zero-signal probability of
    0%, 50% or 100% (Section 4.3); the report's
    ``narrow_fully_stressed_fraction`` is the Figure 4 metric.
    """
    inputs = synthetic_inputs(adder.width)
    first, second = pair
    if not 1 <= first <= 8 or not 1 <= second <= 8 or first == second:
        raise ValueError(f"pair must be two distinct indices in 1..8: {pair}")
    simulator = AgingSimulator(adder.circuit, guardband_model)
    simulator.apply(adder.input_vector(*inputs[first - 1]), 1.0)
    simulator.apply(adder.input_vector(*inputs[second - 1]), 1.0)
    return simulator.report()


def search_best_pair(
    adder: LadnerFischerAdder,
    guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
) -> "PairSearchResult":
    """Evaluate all 28 pairs and rank them (Figure 4).

    Returns the full ranking; the paper's winner is pair (1, 8).
    """
    results: Dict[Tuple[int, int], AgingReport] = {}
    for pair in input_pairs(adder.width):
        results[pair] = evaluate_input_pair(adder, pair, guardband_model)
    best = min(
        results,
        key=lambda p: (
            results[p].narrow_fully_stressed_fraction,
            results[p].worst_narrow_duty,
        ),
    )
    return PairSearchResult(reports=results, best_pair=best)


@dataclass(frozen=True)
class PairSearchResult:
    """Outcome of the exhaustive pair search."""

    reports: Mapping[Tuple[int, int], AgingReport]
    best_pair: Tuple[int, int]

    def fractions(self) -> Dict[Tuple[int, int], float]:
        """Figure 4's Y values: narrow fully-stressed fraction per pair."""
        return {
            pair: report.narrow_fully_stressed_fraction
            for pair, report in self.reports.items()
        }


@dataclass
class IdleInputInjector:
    """Round-robin injector of a chosen input pair during idle periods.

    Drives an :class:`AgingSimulator` with a weighted mix: real sampled
    vectors for a ``utilization`` fraction of the time, and the two
    synthetic inputs evenly splitting the idle remainder — "in the long
    run all the low-degrading inputs will be used the same amount of
    time" (Section 3.1).
    """

    adder: LadnerFischerAdder
    pair: Tuple[int, int] = (1, 8)
    guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL

    def age(
        self,
        real_vectors: Sequence[RealVector],
        utilization: float,
        inject: bool = True,
    ) -> AgingReport:
        """Age the adder for a given utilisation.

        Parameters
        ----------
        real_vectors:
            Operand vectors sampled from traces; they share the busy
            ``utilization`` fraction of time equally.  With ``inject``
            False they also fill the idle time (inputs simply remain in
            the latches — the paper's baseline).
        utilization:
            Fraction of time the block computes real additions.
        inject:
            Whether the idle-input mechanism is active.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be within [0, 1]")
        if not real_vectors:
            raise ValueError("need at least one real vector")
        simulator = AgingSimulator(self.adder.circuit, self.guardband_model)
        busy_share = utilization if inject else 1.0
        weight = busy_share / len(real_vectors)
        for vector in real_vectors:
            simulator.apply(self.adder.input_vector(*vector), weight)
        if inject and utilization < 1.0:
            inputs = synthetic_inputs(self.adder.width)
            idle_each = (1.0 - utilization) / 2.0
            for index in self.pair:
                simulator.apply(
                    self.adder.input_vector(*inputs[index - 1]), idle_each
                )
        return simulator.report()


def adder_guardband_study(
    adder: LadnerFischerAdder,
    real_vectors: Sequence[RealVector],
    utilizations: Iterable[float] = (0.30, 0.21, 0.11),
    pair: Tuple[int, int] = (1, 8),
    guardband_model: GuardbandModel = DEFAULT_GUARDBAND_MODEL,
) -> Dict[str, float]:
    """Figure 5: guardband for real inputs vs. injected idle inputs.

    Returns a mapping with the baseline ("real inputs") and one entry per
    utilisation level ("<u>% real + 000 + 111").
    """
    injector = IdleInputInjector(adder, pair, guardband_model)
    results: Dict[str, float] = {}
    baseline = injector.age(real_vectors, utilization=1.0, inject=False)
    results["real inputs"] = guardband_model.guardband_for_duty(
        baseline.worst_narrow_duty
    )
    for utilization in utilizations:
        report = injector.age(real_vectors, utilization, inject=True)
        label = f"{int(round(utilization * 100))}% real + 000 + 111"
        results[label] = guardband_model.guardband_for_duty(
            report.worst_narrow_duty
        )
    return results
