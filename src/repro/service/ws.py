"""RFC 6455 WebSocket framing, hand-rolled on the standard library.

The repo's no-dependency discipline extends to the service layer: the
whole protocol surface the sweep service needs is ~200 lines — the
handshake digest, a frame encoder, an incremental frame decoder, and a
fragment reassembler — and owning them keeps the framing unit-testable
as pure bytes-in/bytes-out functions (no sockets, no event loop).

Scope is deliberately the server-and-one-client subset of the RFC:

- frames: FIN/opcode/length/mask headers with 7/16/64-bit lengths;
- masking: required on client→server frames (the server rejects
  unmasked input), never applied server→client;
- fragmentation: continuation frames reassemble into one message;
  control frames (ping/pong/close) may interleave but never fragment;
- close: 2-byte big-endian status code + UTF-8 reason.

No extensions (RSV bits must be zero), no subprotocol negotiation.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
from typing import List, Mapping, NamedTuple, Optional, Tuple

__all__ = [
    "Frame",
    "FrameDecoder",
    "HandshakeError",
    "MessageAssembler",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_CONT",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WSProtocolError",
    "accept_key",
    "client_handshake",
    "close_payload",
    "encode_frame",
    "handshake_response",
    "mask_bytes",
    "parse_close",
    "send_close",
    "send_frame",
    "send_text",
]

#: RFC 6455 §1.3 — the fixed GUID appended to the client key before
#: SHA-1 in the Sec-WebSocket-Accept computation.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_DATA_OPCODES = (OP_CONT, OP_TEXT, OP_BINARY)
_CONTROL_OPCODES = (OP_CLOSE, OP_PING, OP_PONG)

#: Largest accepted payload; a streaming service sends small JSON
#: messages, so anything bigger is a protocol error (close 1009).
MAX_PAYLOAD = 1 << 23


class WSProtocolError(Exception):
    """A framing violation; ``code`` is the close code to send back."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class HandshakeError(Exception):
    """The HTTP request is not a valid WebSocket upgrade."""


def accept_key(key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(headers: Mapping[str, str]) -> bytes:
    """The 101 response bytes for an upgrade request's headers.

    ``headers`` must be lower-cased keys (what the HTTP parser
    produces).  Raises :class:`HandshakeError` when the request is not
    an RFC 6455 upgrade.
    """
    if "websocket" not in headers.get("upgrade", "").lower():
        raise HandshakeError("missing 'Upgrade: websocket' header")
    key = headers.get("sec-websocket-key", "").strip()
    if not key:
        raise HandshakeError("missing Sec-WebSocket-Key header")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    ).encode("ascii")


def client_handshake(host: str, path: str,
                     token: Optional[str] = None) -> Tuple[bytes, str]:
    """Client-side upgrade request bytes plus the key to verify with."""
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    lines = [
        f"GET {path} HTTP/1.1",
        f"Host: {host}",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Key: {key}",
        "Sec-WebSocket-Version: 13",
    ]
    if token:
        lines.append(f"Authorization: Bearer {token}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii"), key


def mask_bytes(payload: bytes, key: bytes) -> bytes:
    """XOR-mask (involution: masking twice restores the input)."""
    if len(key) != 4:
        raise ValueError("mask key must be 4 bytes")
    return bytes(b ^ key[i & 3] for i, b in enumerate(payload))


class Frame(NamedTuple):
    """One decoded frame."""

    fin: bool
    opcode: int
    payload: bytes


def encode_frame(opcode: int, payload: bytes = b"", fin: bool = True,
                 mask_key: Optional[bytes] = None) -> bytes:
    """Serialize one frame; ``mask_key`` set ⇒ a client→server frame."""
    if opcode in _CONTROL_OPCODES and (not fin or len(payload) > 125):
        raise ValueError(
            "control frames must be unfragmented and <= 125 bytes")
    head = bytearray()
    head.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    mask_bit = 0x80 if mask_key is not None else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += length.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += length.to_bytes(8, "big")
    if mask_key is not None:
        head += mask_key
        payload = mask_bytes(payload, mask_key)
    return bytes(head) + payload


def close_payload(code: int = 1000, reason: str = "") -> bytes:
    """Close-frame payload: status code + truncated UTF-8 reason."""
    return code.to_bytes(2, "big") + reason.encode("utf-8")[:123]


def parse_close(payload: bytes) -> Tuple[int, str]:
    """Status code and reason out of a close-frame payload.

    An empty payload is legal (RFC 6455 §5.5.1) and maps to 1005
    ("no status received").
    """
    if len(payload) < 2:
        return 1005, ""
    code = int.from_bytes(payload[:2], "big")
    reason = payload[2:].decode("utf-8", errors="replace")
    return code, reason


class FrameDecoder:
    """Incremental frame parser: feed arbitrary byte chunks, get frames.

    ``require_mask=True`` is the server role (RFC 6455 §5.1: a server
    MUST fail the connection on an unmasked client frame).
    """

    def __init__(self, require_mask: bool = False,
                 max_payload: int = MAX_PAYLOAD) -> None:
        self.require_mask = require_mask
        self.max_payload = max_payload
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data``; return every frame now complete."""
        self._buffer += data
        frames: List[Frame] = []
        while True:
            parsed = self._parse_one()
            if parsed is None:
                return frames
            frame, used = parsed
            del self._buffer[:used]
            frames.append(frame)

    def _parse_one(self) -> Optional[Tuple[Frame, int]]:
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        if first & 0x70:
            raise WSProtocolError(
                1002, "nonzero RSV bits (no extension negotiated)")
        fin = bool(first & 0x80)
        opcode = first & 0x0F
        if opcode not in _DATA_OPCODES + _CONTROL_OPCODES:
            raise WSProtocolError(1002, f"unknown opcode {opcode:#x}")
        masked = bool(second & 0x80)
        length = second & 0x7F
        pos = 2
        if opcode in _CONTROL_OPCODES:
            if not fin:
                raise WSProtocolError(1002, "fragmented control frame")
            if length > 125:
                raise WSProtocolError(1002, "oversized control frame")
        if length == 126:
            if len(buf) < pos + 2:
                return None
            length = int.from_bytes(buf[pos:pos + 2], "big")
            pos += 2
        elif length == 127:
            if len(buf) < pos + 8:
                return None
            length = int.from_bytes(buf[pos:pos + 8], "big")
            if length >> 63:
                raise WSProtocolError(1002, "negative 64-bit length")
            pos += 8
        if length > self.max_payload:
            raise WSProtocolError(
                1009, f"payload of {length} bytes exceeds the "
                      f"{self.max_payload}-byte limit")
        key = b""
        if masked:
            if len(buf) < pos + 4:
                return None
            key = bytes(buf[pos:pos + 4])
            pos += 4
        elif self.require_mask:
            raise WSProtocolError(
                1002, "client frames must be masked")
        if len(buf) < pos + length:
            return None
        payload = bytes(buf[pos:pos + length])
        if masked:
            payload = mask_bytes(payload, key)
        return Frame(fin, opcode, payload), pos + length


async def send_frame(writer: asyncio.StreamWriter, opcode: int,
                     payload: bytes = b"") -> None:
    """Write one unmasked (server→client) frame and drain."""
    writer.write(encode_frame(opcode, payload))
    await writer.drain()


async def send_text(writer: asyncio.StreamWriter, text: str) -> None:
    await send_frame(writer, OP_TEXT, text.encode("utf-8"))


async def send_close(writer: asyncio.StreamWriter, code: int = 1000,
                     reason: str = "") -> None:
    await send_frame(writer, OP_CLOSE, close_payload(code, reason))


class MessageAssembler:
    """Reassemble fragmented data frames into complete messages.

    ``feed`` returns ``(opcode, payload)`` pairs: control frames pass
    through immediately (they may interleave with a fragmented
    message); data frames surface once their FIN fragment arrives,
    under the opcode of the first fragment.
    """

    def __init__(self) -> None:
        self._opcode: Optional[int] = None
        self._parts: List[bytes] = []

    def feed(self, frame: Frame) -> List[Tuple[int, bytes]]:
        if frame.opcode in _CONTROL_OPCODES:
            return [(frame.opcode, frame.payload)]
        if frame.opcode == OP_CONT:
            if self._opcode is None:
                raise WSProtocolError(
                    1002, "continuation frame without a message start")
            self._parts.append(frame.payload)
        else:
            if self._opcode is not None:
                raise WSProtocolError(
                    1002, "new data frame inside a fragmented message")
            self._opcode = frame.opcode
            self._parts = [frame.payload]
        if not frame.fin:
            return []
        message = (self._opcode, b"".join(self._parts))
        self._opcode = None
        self._parts = []
        return [message]
