"""The in-tree ruleset: the repo's reproducibility invariants as AST checks.

Each rule encodes one contract the reproduction depends on (DESIGN.md §8
documents the why at length):

==========  ============================================================
DET001      no un-seeded ``random.*`` / clock / ``os.urandom`` calls in
            kernel code — only explicit ``random.Random(seed)`` instances
DET002      no iteration over set values (set order is salted per
            process: results fed from it are not bit-reproducible)
HOT001      classes in designated hot-path modules declare ``__slots__``
RST001      a class defining ``metrics()`` defines ``reset()``, and every
            counter attribute initialised in ``__init__`` is re-assigned
            in ``reset()`` (attribute-set analysis, transitive through
            ``self.<helper>()`` calls)
REG001      every ``spec_paths`` binding in the experiments registry
            resolves against the spec classes in ``config/specs.py``
OBS001      the tracer's disabled paths allocate nothing before the
            enabled-check (calls / comprehensions / f-strings)
FAB001      fabric store/journal modules write only through the
            crash-safe helpers in ``fabric/io.py`` (single-``os.write``
            O_APPEND append or temp+rename), never via ``open(.., "a")``
            / buffered ``.write()``
==========  ============================================================
"""

from __future__ import annotations

import ast
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import FileContext, Finding, Rule

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def _body_after_docstring(func: ast.FunctionDef) -> List[ast.stmt]:
    body = list(func.body)
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        body = body[1:]
    return body


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _self_attr_target(node: ast.expr) -> Optional[str]:
    """``self.X`` as an assignment target -> ``"X"``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


# ----------------------------------------------------------------------
# DET001 — determinism: no ambient randomness / clocks in kernel code
# ----------------------------------------------------------------------
#: Directory names whose files are kernel code (results must be
#: bit-exact given the seeds); ``obs/`` is exempt — wall-clock time is
#: the tracer's whole point.
KERNEL_DIRS = ("uarch", "nbti", "circuits", "core", "workloads")

_TIME_BANNED = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
    "clock_gettime", "clock_gettime_ns",
}
_OS_BANNED = {"urandom", "getrandom"}
#: ``random.Random(seed)`` is the sanctioned construction; everything
#: else on the module (including ``SystemRandom``) is ambient state.
_RANDOM_ALLOWED = {"Random"}
_NUMPY_BANNED = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "default_rng",
}


class DeterminismRule(Rule):
    id = "DET001"
    severity = "error"
    description = (
        "kernel code must not call module-level random.*, clock "
        "functions, or os.urandom; draw from an explicit seeded "
        "random.Random instance"
    )

    def __init__(self, kernel_dirs: Sequence[str] = KERNEL_DIRS) -> None:
        self.kernel_dirs = tuple(kernel_dirs)

    def applies(self, ctx: FileContext) -> bool:
        parts = ctx.relpath.split("/")
        if "obs" in parts:
            return False
        return any(d in parts for d in self.kernel_dirs)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        aliases: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("random", "time", "os", "numpy"):
                        aliases[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = (node.module or "").split(".")[0]
                for alias in node.names:
                    bad = (
                        (module == "random"
                         and alias.name not in _RANDOM_ALLOWED)
                        or (module == "time"
                            and alias.name in _TIME_BANNED)
                        or (module == "os" and alias.name in _OS_BANNED)
                    )
                    if bad:
                        yield ctx.finding(
                            self, node,
                            f"from {module} import {alias.name}: "
                            f"ambient {module!r} state is not "
                            f"reproducible in kernel code",
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if isinstance(value, ast.Name):
                module = aliases.get(value.id)
                message = None
                if (module == "random"
                        and func.attr not in _RANDOM_ALLOWED):
                    message = (
                        f"random.{func.attr}() uses the shared "
                        f"module-level RNG; use a seeded "
                        f"random.Random(seed) instance"
                    )
                elif module == "time" and func.attr in _TIME_BANNED:
                    message = (
                        f"time.{func.attr}() makes kernel results "
                        f"depend on the wall clock"
                    )
                elif module == "os" and func.attr in _OS_BANNED:
                    message = f"os.{func.attr}() is non-deterministic"
                if message is not None:
                    yield ctx.finding(self, node, message)
            elif (isinstance(value, ast.Attribute)
                  and value.attr == "random"
                  and isinstance(value.value, ast.Name)
                  and aliases.get(value.value.id) == "numpy"
                  and func.attr in _NUMPY_BANNED):
                yield ctx.finding(
                    self, node,
                    f"numpy.random.{func.attr}() draws from global or "
                    f"unseeded state; pass a seeded Generator instead",
                )


# ----------------------------------------------------------------------
# DET002 — determinism: no iteration over set values
# ----------------------------------------------------------------------
#: Consumers whose result does not depend on element order.
_ORDER_NEUTRAL = {"sorted", "min", "max", "sum", "len", "any", "all",
                  "set", "frozenset"}


def _is_setlike(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (isinstance(func, ast.Attribute)
                and func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference")
                and _is_setlike(func.value)):
            return True
    if (isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                     ast.BitXor, ast.Sub))):
        return _is_setlike(node.left) or _is_setlike(node.right)
    return False


class SetIterationRule(Rule):
    id = "DET002"
    severity = "warning"
    description = (
        "iterating a set feeds hash-salted element order into results; "
        "sort first (sorted(...)) or keep an ordered container"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_setlike(node.iter):
                yield ctx.finding(
                    self, node.iter,
                    "for-loop over a set: element order is not "
                    "deterministic across processes",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if self._order_neutral(node, parents):
                    continue
                for gen in node.generators:
                    if _is_setlike(gen.iter):
                        yield ctx.finding(
                            self, gen.iter,
                            "comprehension over a set: element order "
                            "is not deterministic across processes",
                        )
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in ("list", "tuple")
                  and len(node.args) == 1
                  and _is_setlike(node.args[0])):
                yield ctx.finding(
                    self, node,
                    f"{node.func.id}(set) captures hash-salted order; "
                    f"use sorted(...)",
                )

    @staticmethod
    def _order_neutral(node: ast.expr,
                       parents: Mapping[ast.AST, ast.AST]) -> bool:
        """True when the comprehension is a direct argument of an
        order-insensitive consumer like ``sorted(...)``."""
        parent = parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_NEUTRAL
                and node in parent.args)


# ----------------------------------------------------------------------
# HOT001 — hot-path classes declare __slots__
# ----------------------------------------------------------------------
#: Modules whose classes sit on simulation hot paths: per-uop or
#: per-access object traffic where instance dicts cost real time and
#: memory (see benchmarks/bench_perf_kernel.py).
HOT_MODULES = (
    "uarch/cache.py",
    "uarch/core.py",
    "uarch/tlb.py",
    "uarch/uop.py",
    "uarch/backends/base.py",
    "uarch/backends/reference.py",
    "uarch/backends/vectorized.py",
    "core/cache_like.py",
    "core/inverted_mode.py",
)

_SLOTS_EXEMPT_BASES = {"Enum", "IntEnum", "Flag", "IntFlag", "StrEnum",
                       "Protocol", "Exception", "BaseException"}


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = (deco.func.id if isinstance(deco.func, ast.Name)
                else deco.func.attr if isinstance(deco.func, ast.Attribute)
                else None)
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (kw.arg == "slots" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True):
                return True
    return False


class SlotsRule(Rule):
    id = "HOT001"
    severity = "error"
    description = (
        "classes in hot-path modules must declare __slots__ (or use "
        "@dataclass(slots=True)) so per-uop/per-access objects carry "
        "no instance dict"
    )

    def __init__(self, hot_modules: Sequence[str] = HOT_MODULES) -> None:
        self.hot_modules = tuple(hot_modules)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.relpath.endswith(self.hot_modules)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            if bases & _SLOTS_EXEMPT_BASES:
                continue
            if any(b.endswith(("Error", "Exception")) for b in bases):
                continue
            if node.name.endswith(("Error", "Exception")):
                continue
            if not _has_slots(node):
                yield ctx.finding(
                    self, node,
                    f"hot-path class {node.name} does not declare "
                    f"__slots__",
                )


# ----------------------------------------------------------------------
# RST001 — reset() completeness for stat-bearing classes
# ----------------------------------------------------------------------
class ResetRule(Rule):
    id = "RST001"
    severity = "error"
    description = (
        "a class defining metrics() must define reset(), and every "
        "counter attribute assigned in __init__ must be re-assigned "
        "in reset() (directly or via a helper it calls)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if "Protocol" in _base_names(cls):
                continue
            methods = {
                stmt.name: stmt for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_metrics = "metrics" in methods
            has_reset = "reset" in methods
            if has_metrics and not has_reset:
                yield ctx.finding(
                    self, methods["metrics"],
                    f"{cls.name} defines metrics() but no reset(): "
                    f"stat-bearing components must support in-place "
                    f"reuse across runs",
                )
                continue
            if not has_reset or "__init__" not in methods:
                continue
            counters = self._assigned_attrs(
                methods, "__init__", counters_only=True
            )
            if not counters:
                continue
            reset_attrs = self._assigned_attrs(
                methods, "reset", counters_only=False
            )
            missing = sorted(set(counters) - set(reset_attrs))
            for name in missing:
                yield ctx.finding(
                    self, methods["reset"],
                    f"{cls.name}.reset() does not re-assign counter "
                    f"attribute {name!r} initialised in __init__ "
                    f"(line {counters[name]})",
                )

    @staticmethod
    def _assigned_attrs(methods: Mapping[str, ast.FunctionDef],
                        entry: str,
                        counters_only: bool) -> Dict[str, int]:
        """``self.X`` attributes assigned in ``entry``, following
        ``self.<helper>()`` calls to other methods of the class.

        With ``counters_only`` the collection is restricted to
        counter-like initialisations: numeric (non-bool) constants.
        """
        assigned: Dict[str, int] = {}
        seen: Set[str] = set()
        queue = [entry]
        while queue:
            name = queue.pop()
            if name in seen or name not in methods:
                continue
            seen.add(name)
            for node in ast.walk(methods[name]):
                if isinstance(node, ast.Assign):
                    targets: List[ast.expr] = list(node.targets)
                    value: Optional[ast.expr] = node.value
                elif isinstance(node, ast.AnnAssign) and node.value:
                    targets = [node.target]
                    value = node.value
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                    value = None  # += never *initialises* a counter
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and isinstance(node.func.value, ast.Name)
                      and node.func.value.id == "self"):
                    queue.append(node.func.attr)
                    continue
                else:
                    continue
                if counters_only:
                    if not (isinstance(value, ast.Constant)
                            and isinstance(value.value, (int, float))
                            and not isinstance(value.value, bool)):
                        continue
                for target in targets:
                    attr = _self_attr_target(target)
                    if attr is not None and attr not in assigned:
                        assigned[attr] = node.lineno
        return assigned


# ----------------------------------------------------------------------
# REG001 — registry spec_paths resolve against the spec classes
# ----------------------------------------------------------------------
class SpecPathsRule(Rule):
    id = "REG001"
    severity = "error"
    description = (
        "every spec_paths binding (register_study / StudyDefinition) "
        "must be a dotted path that resolves against the spec classes "
        "in config/specs.py"
    )

    def applies(self, ctx: FileContext) -> bool:
        return "spec_paths" in ctx.source

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        model = _spec_model()
        if model is None:
            return
        module_dicts = self._module_dicts(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name not in ("register_study", "StudyDefinition"):
                continue
            for kw in node.keywords:
                if kw.arg != "spec_paths":
                    continue
                for param, value in self._dict_entries(
                        kw.value, module_dicts):
                    message = self._validate(model, value.value)
                    if message is not None:
                        yield ctx.finding(
                            self, value,
                            f"spec_paths[{param!r}] = "
                            f"{value.value!r}: {message}",
                        )

    @staticmethod
    def _module_dicts(tree: ast.AST) -> Dict[str, ast.Dict]:
        """Module-level ``NAME = {...}`` dict assignments, for the
        shared-axes idiom ``spec_paths={**_WORKLOAD_PATHS, ...}``."""
        dicts: Dict[str, ast.Dict] = {}
        for stmt in getattr(tree, "body", []):
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Dict)):
                dicts[stmt.targets[0].id] = stmt.value
        return dicts

    def _dict_entries(
        self, node: ast.expr, module_dicts: Mapping[str, ast.Dict],
        _depth: int = 0,
    ) -> Iterator[Tuple[str, ast.Constant]]:
        """(param name, path string node) pairs of a spec_paths dict,
        expanding ``**shared`` spreads of module-level dicts."""
        if not isinstance(node, ast.Dict) or _depth > 4:
            return
        for key, value in zip(node.keys, node.values):
            if key is None:  # ** spread
                if (isinstance(value, ast.Name)
                        and value.id in module_dicts):
                    yield from self._dict_entries(
                        module_dicts[value.id], module_dicts,
                        _depth + 1)
                continue
            if (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                yield key.value, value

    @staticmethod
    def _validate(model: Mapping[str, Any], path: str) -> Optional[str]:
        """None when the dotted path resolves; else the failure reason."""
        import dataclasses

        segments = path.split(".")
        if len(segments) < 2:
            return "spec paths are dotted (section.field[...])"
        if segments[0] not in model:
            return (f"unknown spec section {segments[0]!r} "
                    f"(expected one of {', '.join(sorted(model))})")
        current: Any = model[segments[0]]
        consumed = segments[0]
        for segment in segments[1:]:
            if isinstance(current, Mapping):
                # mechanism params dicts carry scheme-dependent keys;
                # anything below them is dynamic by design
                return None
            if (dataclasses.is_dataclass(current)
                    and hasattr(current, segment)):
                current = getattr(current, segment)
                consumed = f"{consumed}.{segment}"
                continue
            return (f"{consumed!r} has no field {segment!r} in "
                    f"config/specs.py")
        return None


def _spec_model() -> Optional[Dict[str, Any]]:
    """Default spec instances the paths are resolved against.

    Imported lazily so the linter itself stays importable on trees
    without the config subsystem (the rule silently skips there).
    """
    try:
        from repro.config import specs
    except ImportError:  # pragma: no cover - repro always importable here
        return None
    return {
        "processor": specs.ProcessorSpec(),
        "protection": specs.ProtectionSpec(),
        "workload": specs.WorkloadSpec(),
    }


# ----------------------------------------------------------------------
# OBS001 — allocation-free disabled tracing
# ----------------------------------------------------------------------
#: Tracer methods that sit on kernel hot paths: their *first* statement
#: must be the enabled/None guard (DESIGN.md §7's <1%-disabled gate).
_GUARDED_TRACER_METHODS = {"span", "begin", "end", "instant",
                           "record_span"}

_ALLOC_NODES = (ast.ListComp, ast.SetComp, ast.DictComp,
                ast.GeneratorExp, ast.JoinedStr, ast.Dict, ast.List,
                ast.Set)


def _is_enabled_guard(stmt: ast.If) -> bool:
    """``if not self.enabled: return ...`` / ``if token is None:
    return`` shaped early exits.  The single-return body requirement
    keeps ordinary ``is None`` checks (lazy-init, caching) out."""
    if len(stmt.body) != 1 or not isinstance(stmt.body[0], ast.Return):
        return False
    for node in ast.walk(stmt.test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            if any(isinstance(c, ast.Constant) and c.value is None
                   for c in node.comparators):
                return True
    return False


def _allocations(nodes: Sequence[ast.AST]) -> Iterator[ast.AST]:
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) or isinstance(node, _ALLOC_NODES):
                yield node


class TraceAllocationRule(Rule):
    id = "OBS001"
    severity = "error"
    description = (
        "tracer disabled paths must not allocate: no calls, "
        "comprehensions, f-strings or container literals before the "
        "enabled/None guard"
    )

    def __init__(self, target: str = "obs/trace.py") -> None:
        self.target = target

    def applies(self, ctx: FileContext) -> bool:
        return ctx.relpath.endswith(self.target)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        tracer_classes = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef) and node.name == "Tracer"
        ]
        for cls in tracer_classes:
            for stmt in cls.body:
                if (isinstance(stmt, ast.FunctionDef)
                        and stmt.name in _GUARDED_TRACER_METHODS):
                    yield from self._check_guarded(ctx, stmt)
        for func in _walk_functions(ctx.tree):
            yield from self._check_pre_guard(ctx, func)

    def _check_guarded(self, ctx: FileContext,
                       func: ast.FunctionDef) -> Iterator[Finding]:
        body = _body_after_docstring(func)
        first = body[0] if body else None
        if not (isinstance(first, ast.If)
                and _is_enabled_guard(first)):
            yield ctx.finding(
                self, func,
                f"Tracer.{func.name}() must begin with its "
                f"enabled/None guard so the disabled path stays "
                f"allocation-free",
            )

    def _check_pre_guard(self, ctx: FileContext,
                         func: ast.FunctionDef) -> Iterator[Finding]:
        body = _body_after_docstring(func)
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.If) and _is_enabled_guard(stmt):
                for alloc in _allocations(body[:index]):
                    yield ctx.finding(
                        self, alloc,
                        f"{func.name}(): allocation before the "
                        f"enabled-check runs on the disabled path too",
                    )
                for alloc in _allocations([stmt.test]):
                    yield ctx.finding(
                        self, alloc,
                        f"{func.name}(): the enabled-check itself "
                        f"must not allocate",
                    )
                break


# ----------------------------------------------------------------------
# FAB001 — fabric durability: writes go through the sanctioned helpers
# ----------------------------------------------------------------------
#: The fabric's crash-safety argument rests on exactly two write shapes
#: (DESIGN.md §9): a single ``os.write`` on an ``O_APPEND`` fd (a crash
#: tears at most the final line) and temp+``os.replace`` (readers see
#: old or new, never partial).  Both live in ``fabric/io.py``; any other
#: write in these files silently re-introduces torn-record windows.
FAB_EXEMPT_FILES = ("fabric/io.py",)

_WRITE_MODE_CHARS = frozenset("awx+")


def _open_mode(call: ast.Call) -> Optional[str]:
    """The constant mode string of an ``open`` call, if statically known."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return "r"
    if (isinstance(mode_node, ast.Constant)
            and isinstance(mode_node.value, str)):
        return mode_node.value
    return None


class FabricWriteRule(Rule):
    id = "FAB001"
    severity = "error"
    description = (
        "fabric store/journal modules must write through the fabric.io "
        "helpers (append_record / atomic_write_*): no open() in a "
        "write mode, no .write()/.writelines() calls"
    )

    def applies(self, ctx: FileContext) -> bool:
        if ctx.relpath.endswith(FAB_EXEMPT_FILES):
            return False
        parts = ctx.relpath.split("/")
        return ("fabric" in parts
                or ctx.relpath.endswith("experiments/store.py"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _open_mode(node)
                if mode is None:
                    yield ctx.finding(
                        self, node,
                        "open() with a non-constant mode cannot be "
                        "verified crash-safe; use the fabric.io helpers",
                    )
                elif _WRITE_MODE_CHARS & set(mode):
                    yield ctx.finding(
                        self, node,
                        f"open(.., {mode!r}) bypasses the crash-safe "
                        f"write discipline; use fabric.io.append_record "
                        f"or atomic_write_*",
                    )
            elif (isinstance(func, ast.Attribute)
                  and func.attr in ("write", "writelines")):
                yield ctx.finding(
                    self, node,
                    f".{func.attr}() in a fabric module: buffered or "
                    f"multi-syscall writes can tear records mid-crash; "
                    f"use fabric.io.append_record or atomic_write_*",
                )


# ----------------------------------------------------------------------
# Default ruleset
# ----------------------------------------------------------------------
def default_rules() -> List[Rule]:
    """Fresh instances of the full in-tree ruleset."""
    return [
        DeterminismRule(),
        SetIterationRule(),
        SlotsRule(),
        ResetRule(),
        SpecPathsRule(),
        TraceAllocationRule(),
        FabricWriteRule(),
    ]
