"""Ablation: temperature / voltage sensitivity of the NBTI model.

Section 2.1 lists the physical accelerators the architectural work
holds constant; this sweep quantifies them in the reaction-diffusion
model (degradation grows with temperature and supply voltage).
"""

from repro.analysis import format_table
from repro.nbti.physics import ReactionDiffusionModel

from conftest import write_result

TEMPERATURES_K = (320.0, 358.15, 400.0)
VOLTAGES = (0.9, 1.1, 1.3)


def sweep():
    rows = []
    factors = []
    for temperature in TEMPERATURES_K:
        for vdd in VOLTAGES:
            model = ReactionDiffusionModel(temperature_k=temperature,
                                           vdd=vdd)
            # Sample the transient: acceleration scales both the stress
            # and recovery rates, so the steady state is shared but a
            # hotter/higher-voltage device reaches it (i.e. degrades)
            # faster — which is what shortens lifetime.
            model.run_duty_cycle(duty=0.7, period=10.0, cycles=60)
            rows.append([
                f"{temperature - 273.15:.0f} C",
                f"{vdd:.1f} V",
                f"{model.acceleration:.2f}x",
                f"{model.fill:.4f}",
            ])
            factors.append((temperature, vdd, model.fill))
    return rows, factors


def test_ablation_physics(benchmark):
    rows, factors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_temp = {}
    for temperature, vdd, fill in factors:
        by_temp.setdefault(vdd, []).append((temperature, fill))
    for vdd, series in by_temp.items():
        fills = [fill for __, fill in sorted(series)]
        assert fills == sorted(fills)  # hotter -> more degradation
    text = format_table(
        ["temperature", "Vdd", "acceleration", "transient N_IT fill @ 70% duty"],
        rows,
        title="Ablation — temperature/voltage acceleration (Section 2.1)",
    )
    write_result("ablation_physics.txt", text)
