"""Tests for idle-input injection and the adder case study."""

import pytest

from repro.core.combinational import (
    IdleInputInjector,
    adder_guardband_study,
    evaluate_input_pair,
    input_pairs,
    search_best_pair,
    synthetic_inputs,
)


class TestSyntheticInputs:
    def test_eight_combinations(self, adder8):
        inputs = synthetic_inputs(8)
        assert len(inputs) == 8
        assert inputs[0] == (0, 0, 0)        # input 1
        assert inputs[7] == (255, 255, 1)    # input 8

    def test_pair_enumeration(self):
        pairs = input_pairs(32)
        assert len(pairs) == 28
        assert (1, 8) in pairs
        assert all(a < b for a, b in pairs)


class TestEvaluateInputPair:
    def test_round_robin_duties_quantised(self, adder8):
        # Alternating two inputs gives every PMOS 0%, 50% or 100% duty.
        from repro.circuits import AgingSimulator

        inputs = synthetic_inputs(8)
        sim = AgingSimulator(adder8.circuit)
        sim.apply(adder8.input_vector(*inputs[0]), 1.0)
        sim.apply(adder8.input_vector(*inputs[7]), 1.0)
        for duty in sim.pmos_duties().values():
            assert duty in (0.0, 0.5, 1.0)

    def test_invalid_pair_rejected(self, adder8):
        with pytest.raises(ValueError):
            evaluate_input_pair(adder8, (0, 8))
        with pytest.raises(ValueError):
            evaluate_input_pair(adder8, (3, 3))

    def test_report_fields(self, adder8):
        report = evaluate_input_pair(adder8, (1, 8))
        assert report.total_transistors == adder8.transistor_count
        assert 0.0 <= report.narrow_fully_stressed_fraction <= 1.0


class TestSearchBestPair:
    def test_figure4_winner_is_1_8(self, adder32):
        result = search_best_pair(adder32)
        assert result.best_pair == (1, 8)
        fractions = result.fractions()
        assert len(fractions) == 28
        best = fractions[(1, 8)]
        assert all(best <= value for value in fractions.values())

    def test_complementary_pairs_beat_degenerate_ones(self, adder32):
        fractions = search_best_pair(adder32).fractions()
        # <0,0,0>+<0,0,1> keeps the operand inputs stressed throughout.
        assert fractions[(1, 2)] > fractions[(1, 8)]


class TestIdleInputInjector:
    def test_injection_reduces_guardband(self, adder32):
        vectors = [(12345, 678, 0), (1, 2, 0), (0xFFFF, 0x0F0F, 1)]
        injector = IdleInputInjector(adder32)
        baseline = injector.age(vectors, utilization=1.0, inject=False)
        protected = injector.age(vectors, utilization=0.21, inject=True)
        assert protected.worst_narrow_duty < baseline.worst_narrow_duty
        assert protected.guardband < baseline.guardband

    def test_lower_utilization_lower_guardband(self, adder32):
        vectors = [(12345, 678, 0)]
        injector = IdleInputInjector(adder32)
        high = injector.age(vectors, utilization=0.30)
        low = injector.age(vectors, utilization=0.11)
        assert low.guardband < high.guardband

    def test_validation(self, adder32):
        injector = IdleInputInjector(adder32)
        with pytest.raises(ValueError):
            injector.age([], utilization=0.2)
        with pytest.raises(ValueError):
            injector.age([(0, 0, 0)], utilization=1.5)


class TestAdderGuardbandStudy:
    def test_figure5_shape(self, adder32):
        """Real inputs pay ~20%; injection scales down with utilisation."""
        vectors = [(12345, 678, 0), (99, 100, 0), (0xABCD, 0x1234, 1)]
        study = adder_guardband_study(adder32, vectors)
        assert study["real inputs"] == pytest.approx(0.20, abs=0.005)
        g30 = study["30% real + 000 + 111"]
        g21 = study["21% real + 000 + 111"]
        g11 = study["11% real + 000 + 111"]
        assert g11 < g21 < g30 < study["real inputs"]
        # Paper: 7.4% at 30% utilisation, 5.8% at 21%.
        assert g30 == pytest.approx(0.074, abs=0.01)
        assert g21 == pytest.approx(0.058, abs=0.01)
