"""Synthetic workload generation.

The paper drove its simulator with 531 proprietary traces of 10M IA32
instructions from ten benchmark suites (Table 1).  This subpackage
replaces them with seeded synthetic generators whose *statistical
fingerprints* — operand value bias, uop mix, working-set size, branch
behaviour — are calibrated so the baseline measurements land where the
paper reports them (Section 1.1, Figures 6 and 8).  See DESIGN.md for
the substitution argument.

- :mod:`repro.workloads.datagen` — biased operand/address generators,
  including the x87 80-bit encoding for FP register data.
- :mod:`repro.workloads.suites` — the ten Table 1 suite profiles.
- :mod:`repro.workloads.generator` — :class:`TraceGenerator` (with lazy
  ``stream()`` / ``iter_address_stream`` twins for bounded-memory runs).
- :mod:`repro.workloads.multiprog` — multiprogram stream interleaving
  (round-robin / random-slice) for interference scenarios.
"""

from repro.workloads.datagen import (
    BiasedIntGenerator,
    FPValueGenerator,
    AddressGenerator,
    encode_x87,
)
from repro.workloads.suites import (
    SuiteProfile,
    SUITE_PROFILES,
    TABLE1_TRACE_COUNTS,
    suite_names,
)
from repro.workloads.generator import (
    TraceGenerator,
    generate_workload,
    generate_address_stream,
    iter_address_stream,
)
from repro.workloads.multiprog import (
    INTERLEAVE_POLICIES,
    interleave,
    multiprog_address_stream,
    multiprog_uop_stream,
)

__all__ = [
    "BiasedIntGenerator",
    "FPValueGenerator",
    "AddressGenerator",
    "encode_x87",
    "SuiteProfile",
    "SUITE_PROFILES",
    "TABLE1_TRACE_COUNTS",
    "suite_names",
    "TraceGenerator",
    "generate_workload",
    "generate_address_stream",
    "iter_address_stream",
    "INTERLEAVE_POLICIES",
    "interleave",
    "multiprog_address_stream",
    "multiprog_uop_stream",
]
