"""Zero-signal residency accounting.

Every architectural mechanism in the paper works by changing *how long*
each PMOS gate (equivalently: each circuit node or stored bit) spends at
logic "0".  This module provides the two ledgers the rest of the library
uses to measure that:

- :class:`StressLedger` — per-named-node accumulation of time at "0" and
  at "1", used by the gate-level aging simulator and by structure-level
  bias studies.
- :class:`BitCellStress` — the SRAM-cell view, where a stored bit value
  stresses one of the two cross-coupled PMOS and its complement stresses
  the other one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple


@dataclass
class NodeStress:
    """Accumulated residency of a single node."""

    time_at_zero: float = 0.0
    time_at_one: float = 0.0

    @property
    def total_time(self) -> float:
        return self.time_at_zero + self.time_at_one

    @property
    def duty(self) -> float:
        """Zero-signal probability observed so far (0.0 if never driven)."""
        total = self.total_time
        if total == 0.0:
            return 0.0
        return self.time_at_zero / total

    def observe(self, value: int, duration: float = 1.0) -> None:
        """Record the node holding ``value`` for ``duration`` time units."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value!r}")
        if value == 0:
            self.time_at_zero += duration
        else:
            self.time_at_one += duration

    def merge(self, other: "NodeStress") -> None:
        self.time_at_zero += other.time_at_zero
        self.time_at_one += other.time_at_one


class StressLedger:
    """Per-node zero-signal residency ledger.

    Keys are arbitrary hashable node identifiers (gate-level simulations
    use netlist node names; structure-level studies use ``(entry, bit)``
    tuples or plain bit indices).

    Examples
    --------
    >>> ledger = StressLedger()
    >>> ledger.observe("carry_in", 0, duration=9.0)
    >>> ledger.observe("carry_in", 1, duration=1.0)
    >>> ledger.duty("carry_in")
    0.9
    """

    def __init__(self) -> None:
        self._nodes: Dict[object, NodeStress] = {}

    def observe(self, node: object, value: int, duration: float = 1.0) -> None:
        """Record ``node`` holding ``value`` for ``duration`` time units."""
        self._node(node).observe(value, duration)

    def observe_word(
        self, prefix: object, word: int, width: int, duration: float = 1.0
    ) -> None:
        """Record every bit of an integer word.

        Bit ``i`` of ``word`` is recorded under node ``(prefix, i)``.
        """
        if width <= 0:
            raise ValueError("width must be positive")
        for bit in range(width):
            self.observe((prefix, bit), (word >> bit) & 1, duration)

    def duty(self, node: object) -> float:
        """Zero-signal probability of ``node`` (0.0 if never observed)."""
        stress = self._nodes.get(node)
        return 0.0 if stress is None else stress.duty

    def total_time(self, node: object) -> float:
        stress = self._nodes.get(node)
        return 0.0 if stress is None else stress.total_time

    def nodes(self) -> Iterable[object]:
        return self._nodes.keys()

    def duties(self) -> Mapping[object, float]:
        """Mapping of node -> duty for all observed nodes."""
        return {node: stress.duty for node, stress in self._nodes.items()}

    def worst(self) -> Tuple[object, float]:
        """Node with the highest zero-signal probability.

        Raises :class:`ValueError` on an empty ledger.
        """
        if not self._nodes:
            raise ValueError("ledger is empty")
        node = max(self._nodes, key=lambda n: self._nodes[n].duty)
        return node, self._nodes[node].duty

    def merge(self, other: "StressLedger") -> None:
        """Fold another ledger's residency into this one."""
        for node, stress in other._nodes.items():
            self._node(node).merge(stress)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def _node(self, node: object) -> NodeStress:
        stress = self._nodes.get(node)
        if stress is None:
            stress = NodeStress()
            self._nodes[node] = stress
        return stress


@dataclass
class BitCellStress:
    """Stress view of one SRAM bit cell (two cross-coupled inverters).

    Storing "0" stresses the PMOS of the inverter whose input is the cell
    node, storing "1" stresses the opposite one (Section 3.2: "there is
    always one of the inverters with negative voltage at its gate").  The
    cell fails when the *more* stressed of the two PMOS exceeds its
    budget, so the figure of merit is ``worst_duty``.
    """

    time_at_zero: float = 0.0
    time_at_one: float = 0.0

    def observe(self, value: int, duration: float = 1.0) -> None:
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value!r}")
        if value == 0:
            self.time_at_zero += duration
        else:
            self.time_at_one += duration

    @property
    def total_time(self) -> float:
        return self.time_at_zero + self.time_at_one

    @property
    def bias_to_zero(self) -> float:
        """Fraction of time the cell stored "0" (0.0 if never written)."""
        total = self.total_time
        if total == 0.0:
            return 0.0
        return self.time_at_zero / total

    @property
    def worst_duty(self) -> float:
        """Duty cycle of the more stressed PMOS in the cell."""
        bias = self.bias_to_zero
        if self.total_time == 0.0:
            return 0.0
        return max(bias, 1.0 - bias)

    @property
    def imbalance(self) -> float:
        """Distance of the cell's bias from the optimal 50% point."""
        if self.total_time == 0.0:
            return 0.0
        return abs(self.bias_to_zero - 0.5)
