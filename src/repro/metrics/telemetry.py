"""Interval telemetry: bounded-memory snapshot streams over a run.

The streaming pipeline (PR 4) made arbitrarily long replays possible,
but the only observable outcome was the end-of-run totals.
:class:`IntervalTelemetry` snapshots a :class:`~repro.metrics.stats.
MetricSet` every N items of a stream, so a 10M-uop run reports its
counters as a series of typed interval deltas (whose sums telescope to
the totals) while holding only the snapshot list — not the stream — in
memory.

Two attachment styles, matching the two replay styles in the repo:

- :meth:`IntervalTelemetry.watch` wraps any iterable consumed one item
  at a time (``TraceDrivenCore.run`` processes each uop — including
  its ``dl0.access`` counter updates — before pulling the next, so a
  snapshot taken inside the wrapper sees exactly-N-uop state);
- :meth:`IntervalTelemetry.replay` drives batched kernels
  (``Cache.replay`` / ``ProtectedCache.replay`` flush their counters
  once per call, so mid-stream wrapper snapshots would read stale
  totals) chunk by chunk, snapshotting between bit-identical chunks.

Snapshots serialise to a JSON payload (:meth:`to_payload` /
:meth:`save`) carrying the set's schema, so ``repro report
--intervals`` can recompute typed deltas from the artefact alone.
"""

from __future__ import annotations

import json
from itertools import islice
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.metrics.stats import (
    MetricSet,
    MetricSnapshot,
    MetricSource,
    delta_values,
)


class IntervalTelemetry:
    """Snapshot a metric tree every ``every`` items of ONE stream.

    A telemetry instance covers exactly one stream: ``watch()`` /
    ``replay()`` refuse to attach twice, because consumers like
    ``TraceDrivenCore.run`` reset their counters per run — carrying one
    snapshot series across a reset would silently produce negative
    deltas.  Create a fresh (cheap) instance per run.
    """

    def __init__(self, source: Union[MetricSource, MetricSet],
                 every: int) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = int(every)
        #: the bound component (None when built from a bare MetricSet —
        #: snapshots still work, but ``replay()`` needs the component).
        self.source = None if isinstance(source, MetricSet) else source
        self.metric_set = (source if isinstance(source, MetricSet)
                           else source.metrics())
        self.schema = self.metric_set.schema()
        self.snapshots: List[MetricSnapshot] = []
        self._count = 0
        self._attached = False

    def _attach_once(self) -> None:
        if self._attached:
            raise RuntimeError(
                "this IntervalTelemetry already covered a stream; "
                "create a new instance per run (runs may reset the "
                "source's counters, which would corrupt the deltas)"
            )
        self._attached = True
        self.record()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Items observed so far (the label of the latest snapshot)."""
        return self._count

    def record(self, label: Any = None) -> MetricSnapshot:
        """Take one snapshot now (labelled with the item count)."""
        snapshot = self.metric_set.snapshot(
            self._count if label is None else label
        )
        self.snapshots.append(snapshot)
        return snapshot

    def watch(self, items: Iterable[Any]) -> Iterator[Any]:
        """Pass ``items`` through, snapshotting every ``every`` items.

        A baseline snapshot is recorded before the first item and a
        final one after the last partial interval, so
        :meth:`deltas` always telescopes to the end-of-run totals.
        Only valid for consumers that fully process item k (counters
        included) before pulling item k+1 — batched kernels must use
        :meth:`replay` instead.  The wrapper is lazy: the baseline is
        taken when the consumer pulls the first item, i.e. *after*
        ``TraceDrivenCore.run`` has done its per-run reset.
        """
        self._attach_once()
        every = self.every
        count = self._count
        for item in items:
            yield item
            count += 1
            if count % every == 0:
                self._count = count
                self.record()
        if count % every:
            self._count = count
            self.record()

    def replay(self, addresses: Iterable[int]) -> int:
        """Chunked replay of the bound source with interval snapshots.

        Batched kernels (``Cache.replay`` / ``ProtectedCache.replay``)
        flush their counters once per call, so this drives the source
        the telemetry was constructed on chunk by chunk — bit-identical
        to one ``source.replay(addresses)`` call, bounded by one
        ``every``-sized chunk of memory.  Returns the total hits.
        """
        target = self.source
        if target is None or not hasattr(target, "replay"):
            raise TypeError(
                "replay() needs the telemetry to be constructed on a "
                "component with a replay() method (e.g. a Cache), not "
                f"on {type(target or self.metric_set).__name__}"
            )
        self._attach_once()
        hits = 0
        every = self.every
        if isinstance(addresses, Sequence):
            for start in range(0, len(addresses), every):
                chunk = addresses[start:start + every]
                hits += target.replay(chunk)
                self._count += len(chunk)
                self.record()
            return hits
        iterator = iter(addresses)
        while True:
            chunk = list(islice(iterator, every))
            if not chunk:
                break
            hits += target.replay(chunk)
            self._count += len(chunk)
            self.record()
        return hits

    # ------------------------------------------------------------------
    def deltas(self) -> List[Dict[str, Any]]:
        """Typed delta of each consecutive snapshot pair."""
        return [
            delta_values(self.schema, current.values, previous.values)
            for previous, current in zip(self.snapshots,
                                         self.snapshots[1:])
        ]

    def interval_labels(self) -> List[str]:
        """``"from..to"`` label of each delta interval."""
        return [
            f"{previous.label}..{current.label}"
            for previous, current in zip(self.snapshots,
                                         self.snapshots[1:])
        ]

    def totals(self) -> Dict[str, Any]:
        """The latest snapshot's values (end-of-run totals)."""
        return dict(self.snapshots[-1].values) if self.snapshots else {}

    def series(self, path: str) -> Dict[str, Any]:
        """``{interval label: delta}`` of one stat — ready for
        :func:`repro.analysis.format_series`."""
        return {
            label: delta[path]
            for label, delta in zip(self.interval_labels(), self.deltas())
        }

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe artefact: schema + every labelled snapshot."""
        return {
            "every": self.every,
            "schema": self.schema,
            "snapshots": [
                {"label": snapshot.label, "values": dict(snapshot.values)}
                for snapshot in self.snapshots
            ],
        }

    def save(self, path: str) -> None:
        """Write :meth:`to_payload` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# ----------------------------------------------------------------------
# Offline payload views (the `repro report --intervals` path)
# ----------------------------------------------------------------------
def load_interval_payload(path: str) -> Dict[str, Any]:
    """Read an interval-telemetry JSON artefact.

    Accepts both a bare :meth:`IntervalTelemetry.to_payload` file and a
    benchmark ``write_result`` envelope whose ``data`` holds one (the
    first value with a ``snapshots`` list wins).
    """
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    payload = _find_payload(raw)
    if payload is None:
        raise ValueError(
            f"{path}: no interval-telemetry payload found (expected a "
            f"'snapshots' list of labelled value dicts)"
        )
    return payload


def _find_payload(node: Any) -> Optional[Dict[str, Any]]:
    if isinstance(node, Mapping):
        snapshots = node.get("snapshots")
        if isinstance(snapshots, list):
            return dict(node)
        for value in node.values():
            found = _find_payload(value)
            if found is not None:
                return found
    return None


def payload_deltas(
    payload: Mapping[str, Any],
) -> Tuple[List[str], List[Dict[str, Any]]]:
    """``(interval labels, typed deltas)`` of a (possibly JSON
    round-tripped) telemetry payload."""
    snapshots = payload.get("snapshots") or []
    if len(snapshots) < 2:
        raise ValueError(
            "interval payload holds fewer than two snapshots; nothing "
            "to delta"
        )
    schema = payload.get("schema") or {}
    labels: List[str] = []
    deltas: List[Dict[str, Any]] = []
    for previous, current in zip(snapshots, snapshots[1:]):
        labels.append(f"{previous.get('label')}..{current.get('label')}")
        deltas.append(delta_values(schema, current.get("values", {}),
                                   previous.get("values", {})))
    return labels, deltas
