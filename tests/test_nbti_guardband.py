"""Unit tests for the duty->guardband calibration.

The key property: the model reproduces every guardband number quoted in
the paper's evaluation from the corresponding duty/bias alone.
"""

import pytest

from repro.nbti.guardband import (
    DEFAULT_GUARDBAND_MODEL,
    GuardbandModel,
    MIN_GUARDBAND,
    WORST_GUARDBAND,
)


class TestPaperAnchors:
    """Every guardband the paper quotes, from its duty."""

    @pytest.mark.parametrize(
        "duty,expected",
        [
            (0.50, 0.020),   # perfect balancing: 10x reduction
            (1.00, 0.200),   # full bias: the whole guardband
            (0.545, 0.0362),  # FP register file after ISV -> "3.6%"
            (0.605, 0.0578),  # adder at 21% utilisation -> "5.8%"
            (0.632, 0.0675),  # scheduler worst bit -> "6.7%"
            (0.650, 0.0740),  # adder at 30% utilisation -> "7.4%"
        ],
    )
    def test_guardband_matches_paper(self, duty, expected):
        model = GuardbandModel()
        assert model.guardband_for_duty(duty) == pytest.approx(
            expected, abs=5e-4
        )

    def test_10x_reduction_at_balance(self):
        assert DEFAULT_GUARDBAND_MODEL.guardband_reduction(0.5) == pytest.approx(10.0)


class TestGuardbandForDuty:
    def test_clamps_below_half(self):
        model = GuardbandModel()
        assert model.guardband_for_duty(0.2) == MIN_GUARDBAND
        assert model.guardband_for_duty(0.0) == MIN_GUARDBAND

    def test_monotonic_above_half(self):
        model = GuardbandModel()
        values = [model.guardband_for_duty(0.5 + i * 0.05) for i in range(11)]
        assert values == sorted(values)

    def test_range_bounds(self):
        model = GuardbandModel()
        for i in range(21):
            gb = model.guardband_for_duty(i / 20)
            assert MIN_GUARDBAND <= gb <= WORST_GUARDBAND

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GuardbandModel().guardband_for_duty(1.2)


class TestGuardbandForBias:
    def test_symmetric_in_bias(self):
        model = GuardbandModel()
        assert model.guardband_for_bias(0.8) == pytest.approx(
            model.guardband_for_bias(0.2)
        )

    def test_balanced_cell_gets_floor(self):
        assert GuardbandModel().guardband_for_bias(0.5) == MIN_GUARDBAND

    def test_fully_biased_cell_gets_worst(self):
        assert GuardbandModel().guardband_for_bias(1.0) == WORST_GUARDBAND

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GuardbandModel().guardband_for_bias(-0.01)


class TestVthAndVmin:
    def test_vth_anchors(self):
        model = GuardbandModel()
        assert model.vth_shift_for_duty(1.0) == pytest.approx(0.10)
        assert model.vth_shift_for_duty(0.5) == pytest.approx(0.01)

    def test_vth_monotonic(self):
        model = GuardbandModel()
        shifts = [model.vth_shift_for_duty(i / 10) for i in range(11)]
        assert shifts == sorted(shifts)

    def test_vth_zero_at_zero_duty(self):
        assert GuardbandModel().vth_shift_for_duty(0.0) == 0.0

    def test_vmin_tracks_worst_pmos(self):
        model = GuardbandModel()
        # Cell biased 90% to zero: worst PMOS duty is 0.9.
        assert model.vmin_increase_for_bias(0.9) == pytest.approx(
            model.vth_shift_for_duty(0.9)
        )
        # Symmetric.
        assert model.vmin_increase_for_bias(0.1) == pytest.approx(
            model.vmin_increase_for_bias(0.9)
        )

    def test_balanced_cell_vmin_is_minimal(self):
        model = GuardbandModel()
        balanced = model.vmin_increase_for_bias(0.5)
        biased = model.vmin_increase_for_bias(0.95)
        assert balanced < biased
        assert balanced == pytest.approx(0.01)

    def test_vmin_10x_reduction(self):
        # Mitigating NBTI reduces the Vmin increase ~10x (Section 1).
        model = GuardbandModel()
        ratio = model.vmin_increase_for_bias(1.0) / model.vmin_increase_for_bias(0.5)
        assert ratio == pytest.approx(10.0)


class TestValidation:
    def test_rejects_inverted_anchors(self):
        with pytest.raises(ValueError):
            GuardbandModel(min_guardband=0.3, worst_guardband=0.2)

    def test_rejects_bad_vth_anchors(self):
        with pytest.raises(ValueError):
            GuardbandModel(balanced_vth_shift=0.2, worst_vth_shift=0.1)

    def test_custom_anchors_respected(self):
        model = GuardbandModel(min_guardband=0.01, worst_guardband=0.10)
        assert model.guardband_for_duty(0.75) == pytest.approx(0.055)
