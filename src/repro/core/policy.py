"""The Figure 3 casuistic: choosing the repair technique per bit cell.

Explicitly managed blocks write special values into *released* entries.
What value to write depends on how busy the entry is and how biased its
busy-time contents are (Section 3.2, situations I–V):

- free more than half the time          -> ISV (inverted sampled values)
- busy, bias removable during idle time -> ALL1-K% / ALL0-K%
- busy, bias not removable              -> ALL1 / ALL0 (best effort)
- contents self-balanced                -> nothing to do
- always busy (e.g. the valid bit)      -> nothing *can* be done

The paper applies the casuistic per field, with per-bit K values for
multi-bit fields (Section 4.5 lists K per latency bit); this module
implements it at bit granularity, which subsumes both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Technique(enum.Enum):
    """Repair technique for one bit cell (Section 3.2.2)."""

    ALL1 = "all1"            # RINV bit always 1
    ALL0 = "all0"            # RINV bit always 0
    ALL1_K = "all1-k"        # RINV bit 1 for K% of the idle time
    ALL0_K = "all0-k"        # RINV bit 0 for K% of the idle time
    ISV = "isv"              # inverted sampled values
    SELF_BALANCED = "self"   # activity already balanced; no repair
    UNPROTECTED = "none"     # nothing can be done (e.g. valid bit)


@dataclass(frozen=True)
class BitDirective:
    """Technique plus its K parameter for one bit cell."""

    technique: Technique
    k: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.k <= 1.0:
            raise ValueError(f"K must be within [0, 1], got {self.k!r}")


def ideal_k(occupancy: float, busy_bias_to_zero: float) -> float:
    """K that balances a bit given its occupancy and busy-time bias.

    With occupancy ``o`` and busy-time bias-to-zero ``b``, writing "1"
    during a fraction K of the idle time makes the total zero-time

        o*b + (1 - o)*(1 - K)

    Solving for 0.5 gives K = 1 - (0.5 - o*b) / (1 - o), clamped to
    [0, 1] (K = 1 degenerates to ALL1, matching "ALL1(0) is a special
    case of ALL1-K%(0) when K=100%").
    """
    _check_fraction("occupancy", occupancy)
    _check_fraction("busy_bias_to_zero", busy_bias_to_zero)
    if occupancy >= 1.0:
        return 1.0
    k = 1.0 - (0.5 - occupancy * busy_bias_to_zero) / (1.0 - occupancy)
    return min(1.0, max(0.0, k))


def choose_technique(
    occupancy: float,
    busy_bias_to_zero: float,
    self_balanced: bool = False,
    protectable: bool = True,
    balance_tolerance: float = 0.02,
) -> BitDirective:
    """Figure 3, at bit granularity.

    Parameters
    ----------
    occupancy:
        Fraction of time the bit cell holds live data.
    busy_bias_to_zero:
        Fraction of the *busy* time the cell stores "0".
    self_balanced:
        Structural knowledge that activity is already balanced
        (register tags, MOB ids) — situation V.
    protectable:
        False for bits whose contents are always live (the valid bit) —
        situation IV.
    balance_tolerance:
        Slack around perfect balance below which K-techniques collapse
        to their degenerate forms.
    """
    _check_fraction("occupancy", occupancy)
    _check_fraction("busy_bias_to_zero", busy_bias_to_zero)
    if not protectable:
        return BitDirective(Technique.UNPROTECTED)
    if self_balanced:
        return BitDirective(Technique.SELF_BALANCED)
    if occupancy <= 0.5:
        return BitDirective(Technique.ISV)

    bias0 = busy_bias_to_zero
    bias1 = 1.0 - busy_bias_to_zero
    if occupancy * bias0 > 0.5:
        # Even writing "1" the whole idle time cannot balance: ALL1.
        return BitDirective(Technique.ALL1, k=1.0)
    if occupancy * bias1 > 0.5:
        return BitDirective(Technique.ALL0, k=1.0)
    if bias0 > bias1 + balance_tolerance:
        return BitDirective(Technique.ALL1_K, k=ideal_k(occupancy, bias0))
    if bias1 > bias0 + balance_tolerance:
        # Dual case: write "0" during K% of the idle time to offset a
        # bias towards "1"; by symmetry K balances the one-time.
        return BitDirective(Technique.ALL0_K, k=ideal_k(occupancy, bias1))
    return BitDirective(Technique.SELF_BALANCED)


def repair_bit(
    directive: BitDirective,
    phase: float,
    sampled_bit: Optional[int] = None,
) -> Optional[int]:
    """The RINV bit value a directive produces.

    Parameters
    ----------
    directive:
        The bit's technique.
    phase:
        A value in [0, 1) cycling over time (e.g. a counter modulo its
        period); K-techniques compare it against K.
    sampled_bit:
        The current sampled workload bit for ISV (pre-inversion).

    Returns
    -------
    int or None
        The bit to write into a released entry, or None when the bit
        must be left untouched.
    """
    if not 0.0 <= phase < 1.0:
        raise ValueError(f"phase must be within [0, 1), got {phase!r}")
    technique = directive.technique
    if technique is Technique.ALL1:
        return 1
    if technique is Technique.ALL0:
        return 0
    if technique is Technique.ALL1_K:
        return 1 if phase < directive.k else 0
    if technique is Technique.ALL0_K:
        return 0 if phase < directive.k else 1
    if technique is Technique.ISV:
        if sampled_bit is None:
            return None
        return 1 - sampled_bit
    return None


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
