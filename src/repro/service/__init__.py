"""Sweep service: submit/stream/query StudySpecs over HTTP + WebSocket.

The multi-frontend layer over the sweep engine (DESIGN.md §11): many
concurrent clients share one content-hash-deduped
:class:`~repro.fabric.store.ShardedResultStore` through a small,
stdlib-only asyncio server —

- :mod:`repro.service.http` — hand-rolled HTTP/1.1 request parsing and
  response rendering;
- :mod:`repro.service.ws` — RFC 6455 WebSocket framing (handshake,
  encoder, incremental decoder, fragment reassembly) as pure
  bytes-in/bytes-out functions;
- :mod:`repro.service.auth` — static bearer-token auth with
  constant-time comparison;
- :mod:`repro.service.hub` — bounded fan-out of job messages to any
  number of WS subscribers (slow consumers are dropped, never block);
- :mod:`repro.service.jobs` — spec-hash job dedup and execution via
  ``SweepRunner``/``FabricRunner`` in an executor;
- :mod:`repro.service.app` — routing, signal handling, graceful drain.

Run it with ``repro serve``; talk to it with
:class:`repro.client.ServiceClient` or plain ``curl``.
"""

from repro.service.app import SweepService
from repro.service.auth import TokenAuth
from repro.service.hub import Hub
from repro.service.jobs import Job, JobManager

__all__ = [
    "Hub",
    "Job",
    "JobManager",
    "SweepService",
    "TokenAuth",
]
