#!/usr/bin/env python
"""Register-file ISV study (Section 4.4 / Figure 6).

Replays a mixed workload through the core twice — baseline and with the
ISV protector attached — and prints the per-bit bias of the INT and FP
register files before and after, plus the mechanism's bookkeeping
(port availability, discarded updates, inverted-time fraction).

Run:  python examples/regfile_isv_study.py
"""

import numpy as np

from repro import api
from repro.analysis import merge_bias_arrays
from repro.config import MechanismSpec, ProtectionSpec
from repro.workloads import TraceGenerator

SUITES = ["specint2000", "specfp2000", "office"]
LENGTH = 6000

#: ISV on both register files only; every other structure unprotected.
RF_ONLY = ProtectionSpec(
    adder=MechanismSpec("none"),
    scheduler=MechanismSpec("none"),
    dl0=MechanismSpec("none"),
    dtlb=MechanismSpec("none"),
)


def run(protected: bool):
    generator = TraceGenerator(seed=13)
    results, protectors = [], []
    # Cores are reusable (run() resets per-run state); the protected
    # pass still builds one core per trace because the ISV protectors
    # themselves accumulate per-trace state.
    baseline_core = api.build_core()
    for suite in SUITES:
        trace = generator.generate(suite, length=LENGTH)
        if protected:
            hooks = api.build_hooks(RF_ONLY)
            p_int, p_fp = hooks.hooks
            protectors.append((p_int, p_fp))
            core = api.build_core(hooks=hooks)
        else:
            core = baseline_core
        results.append(core.run(trace))
    return results, protectors


def sparkline(bias: np.ndarray, buckets: int = 16) -> str:
    """Coarse per-bit bias visual (one char per bucket of bits)."""
    glyphs = " .:-=+*#%@"
    step = max(1, len(bias) // buckets)
    chars = []
    for start in range(0, len(bias), step):
        window = bias[start:start + step]
        imbalance = float(np.mean(np.abs(window - 0.5))) * 2
        chars.append(glyphs[min(9, int(imbalance * 10))])
    return "".join(chars)


def report(label: str, results, fp: bool) -> np.ndarray:
    merged = merge_bias_arrays(
        [(r.fp_rf if fp else r.int_rf).bias_to_zero for r in results],
        weights=[r.cycles for r in results],
    )
    worst = float(np.max(np.maximum(merged, 1 - merged)))
    print(f"  {label:22s} worst bias {worst:.1%}  "
          f"imbalance map [{sparkline(merged)}]")
    return merged


def main() -> None:
    print("== baseline ==")
    base_results, __ = run(protected=False)
    report("INT register file", base_results, fp=False)
    report("FP register file", base_results, fp=True)
    free_int = np.mean([r.int_rf.free_fraction for r in base_results])
    free_fp = np.mean([r.fp_rf.free_fraction for r in base_results])
    print(f"  free time: INT {free_int:.0%} (paper 54%), "
          f"FP {free_fp:.0%} (paper 69%) -> Figure 3 selects ISV")

    print("\n== with ISV at release ==")
    isv_results, protectors = run(protected=True)
    report("INT register file", isv_results, fp=False)
    report("FP register file", isv_results, fp=True)

    written = sum(p.updates_written for pair in protectors for p in pair)
    skipped = sum(p.updates_skipped for pair in protectors for p in pair)
    inv_frac = np.mean([
        pair[0].inverted_time_fraction for pair in protectors
    ])
    print(f"  updates written {written}, discarded {skipped} "
          f"({skipped / max(1, written + skipped):.1%}; paper: rare)")
    print(f"  inverted-time fraction {inv_frac:.1%} (target 50%)")
    print("\npaper: worst bias 89.9% -> 48.5% (INT), 84.2% -> 45.5% (FP)")


if __name__ == "__main__":
    main()
