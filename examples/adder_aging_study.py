#!/usr/bin/env python
"""Adder aging study (the Section 4.3 flow, end to end).

1. Measure adder utilisation under both allocation policies on a real
   workload (the paper: 21% uniform, 11-30% with priorities).
2. Search all 28 synthetic input pairs for the one minimising fully-
   stressed narrow transistors (Figure 4).
3. Sweep utilisation and report the guardband with idle-input injection
   (Figure 5).

Run:  python examples/adder_aging_study.py
"""

import numpy as np

from repro import api
from repro.analysis import format_series
from repro.circuits import build_ladner_fischer_adder
from repro.config import ProcessorSpec
from repro.core.combinational import (
    adder_guardband_study,
    search_best_pair,
)
from repro.workloads import TraceGenerator


def measure_utilization(policy: str, suites) -> tuple:
    generator = TraceGenerator(seed=7)
    utilizations = []
    vectors = []
    # One core serves every suite: run() resets all per-run state.
    core = api.build_core(ProcessorSpec(adder_policy=policy))
    for suite in suites:
        trace = generator.generate(suite, length=4000)
        result = core.run(trace)
        utilizations.append(result.adder_utilization)
        vectors.extend(result.adder_samples)
    per_adder = np.mean(utilizations, axis=0)
    return per_adder, vectors


def main() -> None:
    suites = ["specint2000", "multimedia", "office"]

    print("== Step 1: adder utilisation per allocation policy ==")
    uniform, vectors = measure_utilization("uniform", suites)
    priority, __ = measure_utilization("priority", suites)
    print(f"  uniform:  {[f'{u:.1%}' for u in uniform]} "
          f"(paper: ~21% each)")
    print(f"  priority: {[f'{u:.1%}' for u in priority]} "
          f"(paper: 11%-30% spread)")

    print("\n== Step 2: synthetic input-pair search (Figure 4) ==")
    adder = build_ladner_fischer_adder()
    search = search_best_pair(adder)
    fractions = search.fractions()
    top = dict(sorted(fractions.items(), key=lambda kv: kv[1])[:5])
    print(format_series(
        {f"{a}+{b}": v for (a, b), v in top.items()},
        title="  five best pairs (narrow fully-stressed fraction)",
    ))
    print(f"  winner: {search.best_pair} — the paper's <0,0,0> + <1,1,1>")

    print("\n== Step 3: guardband vs utilisation (Figure 5) ==")
    study = adder_guardband_study(adder, vectors[:192],
                                  utilizations=(0.30, 0.21, 0.11),
                                  pair=search.best_pair)
    print(format_series(study, title="  guardband"))
    print("  paper: 20% baseline; 7.4% @30%; 5.8% @21%")


if __name__ == "__main__":
    main()
