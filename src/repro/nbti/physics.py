"""Reaction–diffusion model of NBTI degradation and self-healing.

The paper (Section 2) describes NBTI as progressive breakage of Si-H bonds
at the silicon/oxide interface while a PMOS gate sees logic "0" (stress),
and partial re-passivation while it sees logic "1" (relax).  The number of
interface traps N_IT directly determines the threshold-voltage (V_TH)
shift, hence circuit slow-down.

The paper quotes the first-order dynamics (Section 2.2):

    "NBTI degradation (self-healing effect) happens in such a way that the
     number of N_IT created (recovered) in the interface during a given
     period of time, dt, is a fraction of the current number of Si-H bonds
     (H atoms)."

That sentence *is* a pair of coupled first-order rate equations, which we
implement verbatim:

    stress:  dN_IT/dt = +k_s * (N_max - N_IT)      (fraction of Si-H bonds)
    relax:   dN_IT/dt = -k_r * N_IT                (fraction of H atoms)

Under a periodic input with zero-signal probability ``d`` (fraction of
time stressed), N_IT converges to the steady-state fill level

    fill(d) = k_s * d / (k_s * d + k_r * (1 - d))          (eq. RD-SS)

which is 1 at d=1 (always stressed) and decreases monotonically to 0 at
d=0.  The rate constants are calibrated so the model reproduces the
paper's quoted anchor: a balanced signal (d=0.5) yields a V_TH shift one
order of magnitude lower than a fully-biased one (10% -> 1%, ref [1] in
the paper), i.e. ``fill(0.5) = 0.1`` which requires ``k_r = 9 * k_s``.

Temperature and voltage acceleration (Section 2.1 bullets) are exposed as
multiplicative factors on ``k_s`` via an Arrhenius term and a power-law
voltage term; they default to neutral so the architectural studies are
independent of them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

#: Default stress rate constant (per unit time).  The absolute scale only
#: sets how fast the saw-tooth of Figure 1 converges; all architectural
#: results depend on the *steady-state* fill, which is scale-free.
DEFAULT_K_STRESS = 1.0e-3

#: Calibration anchor: fill(0.5) = 0.1 (10x V_TH-shift reduction for a
#: balanced signal, paper Section 2.2 / ref [1]) requires k_r = 9 * k_s.
RECOVERY_TO_STRESS_RATIO = 9.0

#: Boltzmann constant in eV/K, for the optional Arrhenius acceleration.
BOLTZMANN_EV = 8.617333262e-5

#: Default NBTI activation energy in eV (typical literature value).
DEFAULT_ACTIVATION_ENERGY_EV = 0.12

#: Reference conditions at which k_s equals its nominal value.
REFERENCE_TEMPERATURE_K = 358.15  # 85 C, a typical hot-spot temperature
REFERENCE_VDD = 1.1  # volts, 65nm-era supply

#: Exponent of the power-law voltage acceleration.
VOLTAGE_EXPONENT = 3.0


class StressPhase(enum.Enum):
    """Phase of the gate input of a PMOS transistor."""

    #: Gate at logic "0": negative V_GS, traps are generated.
    STRESS = "stress"
    #: Gate at logic "1": transistor off, traps re-passivate.
    RELAX = "relax"


# ----------------------------------------------------------------------
# Kernel primitives
# ----------------------------------------------------------------------
# The exact per-interval exponential update is split into one transcendental
# step (the decay factor, always evaluated through scalar ``math.exp``) and
# IEEE-exact multiply/subtract steps.  The kernel backends
# (:mod:`repro.uarch.backends`) batch the second half across many nodes
# while reusing the same scalar decay factor, which keeps them
# bit-identical to this module: ``exp`` is the only operation whose
# last-ulp rounding could differ between libm and an array library.
def stress_decay(k_stress: float, duration: float) -> float:
    """Exponential decay factor ``exp(-k_s * t)`` of one stress interval."""
    return math.exp(-k_stress * duration)


def relax_decay(k_relax: float, duration: float) -> float:
    """Exponential decay factor ``exp(-k_r * t)`` of one relax interval."""
    return math.exp(-k_relax * duration)


def apply_stress(nit: float, n_max: float, decay: float) -> float:
    """N_IT after one stress interval with precomputed ``decay``."""
    return n_max - (n_max - nit) * decay


def apply_relax(nit: float, decay: float) -> float:
    """N_IT after one relax interval with precomputed ``decay``."""
    return nit * decay


def steady_state_fill(duty: float, recovery_ratio: float = RECOVERY_TO_STRESS_RATIO) -> float:
    """Asymptotic N_IT fill level for a given zero-signal probability.

    Parameters
    ----------
    duty:
        Zero-signal probability in [0, 1]: the long-run fraction of time
        the PMOS gate sees logic "0".
    recovery_ratio:
        Ratio ``k_r / k_s`` between the recovery and stress rate
        constants.  The default reproduces the paper's 10x anchor.

    Returns
    -------
    float
        Steady-state N_IT as a fraction of the total Si-H bond population
        (0 = pristine, 1 = fully degraded).
    """
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be within [0, 1], got {duty!r}")
    if recovery_ratio <= 0.0:
        raise ValueError("recovery_ratio must be positive")
    relax = (1.0 - duty) * recovery_ratio
    if duty == 0.0:
        return 0.0
    return duty / (duty + relax)


@dataclass
class ReactionDiffusionModel:
    """Discrete-time reaction–diffusion N_IT model for one PMOS transistor.

    The model integrates the two rate equations described in the module
    docstring with an exact per-interval exponential update, so step size
    does not affect accuracy:

        stress for t:  N_IT <- N_max - (N_max - N_IT) * exp(-k_s t)
        relax  for t:  N_IT <- N_IT * exp(-k_r t)

    Examples
    --------
    >>> model = ReactionDiffusionModel()
    >>> model.stress(1e4)
    >>> degraded = model.nit
    >>> model.relax(1e4)
    >>> model.nit < degraded
    True
    """

    k_stress: float = DEFAULT_K_STRESS
    recovery_ratio: float = RECOVERY_TO_STRESS_RATIO
    n_max: float = 1.0
    temperature_k: float = REFERENCE_TEMPERATURE_K
    vdd: float = REFERENCE_VDD
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV
    nit: float = 0.0
    time: float = 0.0
    _history: List[Tuple[float, float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.k_stress <= 0.0:
            raise ValueError("k_stress must be positive")
        if self.recovery_ratio <= 0.0:
            raise ValueError("recovery_ratio must be positive")
        if self.n_max <= 0.0:
            raise ValueError("n_max must be positive")
        if not 0.0 <= self.nit <= self.n_max:
            raise ValueError("initial nit must lie within [0, n_max]")
        self._record()

    # ------------------------------------------------------------------
    # Acceleration factors (Section 2.1: voltage and temperature bullets)
    # ------------------------------------------------------------------
    @property
    def acceleration(self) -> float:
        """Combined temperature/voltage acceleration factor on ``k_s``.

        Equals 1.0 at the reference conditions (85C, nominal Vdd); higher
        temperature or voltage accelerates degradation, consistent with
        the qualitative dependencies listed in Section 2.1 of the paper.
        """
        arrhenius = math.exp(
            (self.activation_energy_ev / BOLTZMANN_EV)
            * (1.0 / REFERENCE_TEMPERATURE_K - 1.0 / self.temperature_k)
        )
        voltage = (self.vdd / REFERENCE_VDD) ** VOLTAGE_EXPONENT
        return arrhenius * voltage

    @property
    def effective_k_stress(self) -> float:
        """Stress rate constant after temperature/voltage acceleration."""
        return self.k_stress * self.acceleration

    @property
    def k_relax(self) -> float:
        """Recovery rate constant (``recovery_ratio`` times ``k_s``)."""
        return self.effective_k_stress * self.recovery_ratio

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def stress(self, duration: float) -> float:
        """Apply ``duration`` time units of stress (gate at "0").

        Returns the new N_IT level.
        """
        self._check_duration(duration)
        decay = stress_decay(self.effective_k_stress, duration)
        self.nit = apply_stress(self.nit, self.n_max, decay)
        self.time += duration
        self._record()
        return self.nit

    def relax(self, duration: float) -> float:
        """Apply ``duration`` time units of relaxation (gate at "1").

        Returns the new N_IT level.  Recovery is asymptotic: full recovery
        would require infinite relaxation time, matching Section 2.2.
        """
        self._check_duration(duration)
        self.nit = apply_relax(self.nit, relax_decay(self.k_relax, duration))
        self.time += duration
        self._record()
        return self.nit

    def apply(self, phase: StressPhase, duration: float) -> float:
        """Apply one phase of the given kind for ``duration`` time units."""
        if phase is StressPhase.STRESS:
            return self.stress(duration)
        return self.relax(duration)

    def run_duty_cycle(self, duty: float, period: float, cycles: int) -> float:
        """Run ``cycles`` periods of a square wave with the given duty.

        Each period stresses for ``duty * period`` and relaxes for the
        remainder, producing the alternating saw-tooth of Figure 1.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            if duty > 0.0:
                self.stress(duty * period)
            if duty < 1.0:
                self.relax((1.0 - duty) * period)
        return self.nit

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def fill(self) -> float:
        """Current N_IT as a fraction of ``n_max``."""
        return self.nit / self.n_max

    def steady_state(self, duty: float) -> float:
        """Steady-state fill the model converges to under ``duty``."""
        return steady_state_fill(duty, self.recovery_ratio)

    @property
    def history(self) -> List[Tuple[float, float]]:
        """(time, nit) samples recorded at every phase boundary."""
        return list(self._history)

    def reset(self) -> None:
        """Return the transistor to the pristine state."""
        self.nit = 0.0
        self.time = 0.0
        self._history.clear()
        self._record()

    def _record(self) -> None:
        self._history.append((self.time, self.nit))

    @staticmethod
    def _check_duration(duration: float) -> None:
        if duration < 0.0:
            raise ValueError("duration must be non-negative")


def simulate_waveform(
    phases: Iterable[Tuple[StressPhase, float]],
    model: ReactionDiffusionModel | None = None,
) -> Sequence[Tuple[float, float]]:
    """Drive a model through an explicit stress/relax waveform.

    Parameters
    ----------
    phases:
        Iterable of ``(phase, duration)`` pairs.
    model:
        Model to drive; a fresh default model is created when omitted.

    Returns
    -------
    list of (time, nit)
        The trajectory sampled at each phase boundary — the data behind
        Figure 1 of the paper.
    """
    if model is None:
        model = ReactionDiffusionModel()
    for phase, duration in phases:
        model.apply(phase, duration)
    return model.history
