"""Tests for the sweep service (HTTP + WebSocket frontend).

Three layers, matching the module split:

- pure-bytes protocol units (RFC 6455 framing, HTTP parsing, auth,
  hub backpressure) — no sockets, no event loop where avoidable;
- a live server on an ephemeral port driven by the real
  :class:`repro.client.ServiceClient` over real TCP;
- the ISSUE acceptance criteria: concurrent identical submits share
  one execution and one store write per point, every stream sees
  run_start + ≥1 telemetry + run_end, and a drained fabric job
  resumes bit-identically.
"""

import asyncio
import concurrent.futures
import json
import os
import threading
import time
from contextlib import contextmanager

import pytest

from repro.client import ServiceClient, ServiceError
from repro.experiments import SweepRunner, SweepSpec
from repro.experiments.registry import _STUDIES, register_study
from repro.service import SweepService, TokenAuth
from repro.service import ws
from repro.service.hub import CLOSE, Hub
from repro.service.http import HTTPError, read_request

TINY_PAYLOAD = {
    "study": "caches",
    "base": {"length": 600, "seed": 3},
    "grid": {"ratio": [0.4, 0.6]},
}


# ----------------------------------------------------------------------
# WebSocket framing (pure bytes)
# ----------------------------------------------------------------------
class TestWSFraming:
    def test_accept_key_rfc_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert ws.accept_key("dGhlIHNhbXBsZSBub25jZQ==") == \
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_handshake_response_contains_accept(self):
        response = ws.handshake_response({
            "upgrade": "websocket",
            "sec-websocket-key": "dGhlIHNhbXBsZSBub25jZQ==",
        })
        assert b"101 Switching Protocols" in response
        assert b"s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in response

    def test_handshake_requires_upgrade_and_key(self):
        with pytest.raises(ws.HandshakeError):
            ws.handshake_response({"sec-websocket-key": "x"})
        with pytest.raises(ws.HandshakeError):
            ws.handshake_response({"upgrade": "websocket"})

    @pytest.mark.parametrize("size", [0, 5, 125, 126, 200,
                                      (1 << 16) - 1, 1 << 16, 70_000])
    def test_encode_decode_round_trip_all_length_forms(self, size):
        payload = bytes(i & 0xFF for i in range(size))
        frames = ws.FrameDecoder().feed(
            ws.encode_frame(ws.OP_BINARY, payload))
        assert frames == [ws.Frame(True, ws.OP_BINARY, payload)]

    def test_masked_round_trip_and_involution(self):
        payload = b"masked message"
        key = b"\x01\x02\x03\x04"
        assert ws.mask_bytes(ws.mask_bytes(payload, key), key) == payload
        frames = ws.FrameDecoder(require_mask=True).feed(
            ws.encode_frame(ws.OP_TEXT, payload, mask_key=key))
        assert frames == [ws.Frame(True, ws.OP_TEXT, payload)]

    def test_server_rejects_unmasked_client_frame(self):
        decoder = ws.FrameDecoder(require_mask=True)
        with pytest.raises(ws.WSProtocolError) as err:
            decoder.feed(ws.encode_frame(ws.OP_TEXT, b"hi"))
        assert err.value.code == 1002

    def test_incremental_feed_byte_by_byte(self):
        wire = ws.encode_frame(ws.OP_TEXT, b"x" * 300)
        decoder = ws.FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames += decoder.feed(wire[i:i + 1])
        assert frames == [ws.Frame(True, ws.OP_TEXT, b"x" * 300)]

    def test_two_frames_in_one_chunk(self):
        wire = (ws.encode_frame(ws.OP_TEXT, b"one")
                + ws.encode_frame(ws.OP_TEXT, b"two"))
        frames = ws.FrameDecoder().feed(wire)
        assert [f.payload for f in frames] == [b"one", b"two"]

    def test_fragmented_message_reassembles(self):
        assembler = ws.MessageAssembler()
        out = assembler.feed(ws.Frame(False, ws.OP_TEXT, b"hel"))
        assert out == []
        out = assembler.feed(ws.Frame(False, ws.OP_CONT, b"lo "))
        assert out == []
        out = assembler.feed(ws.Frame(True, ws.OP_CONT, b"world"))
        assert out == [(ws.OP_TEXT, b"hello world")]

    def test_control_frames_interleave_fragments(self):
        assembler = ws.MessageAssembler()
        assembler.feed(ws.Frame(False, ws.OP_TEXT, b"par"))
        out = assembler.feed(ws.Frame(True, ws.OP_PING, b"now"))
        assert out == [(ws.OP_PING, b"now")]
        out = assembler.feed(ws.Frame(True, ws.OP_CONT, b"tial"))
        assert out == [(ws.OP_TEXT, b"partial")]

    def test_continuation_without_start_rejected(self):
        with pytest.raises(ws.WSProtocolError):
            ws.MessageAssembler().feed(
                ws.Frame(True, ws.OP_CONT, b"orphan"))

    def test_new_data_frame_inside_fragment_rejected(self):
        assembler = ws.MessageAssembler()
        assembler.feed(ws.Frame(False, ws.OP_TEXT, b"one"))
        with pytest.raises(ws.WSProtocolError):
            assembler.feed(ws.Frame(True, ws.OP_TEXT, b"two"))

    def test_fragmented_control_frame_rejected(self):
        wire = bytearray(ws.encode_frame(ws.OP_PING, b"hi"))
        wire[0] &= 0x7F  # clear FIN on a control frame
        with pytest.raises(ws.WSProtocolError) as err:
            ws.FrameDecoder().feed(bytes(wire))
        assert err.value.code == 1002

    def test_rsv_bits_rejected(self):
        wire = bytearray(ws.encode_frame(ws.OP_TEXT, b"hi"))
        wire[0] |= 0x40
        with pytest.raises(ws.WSProtocolError) as err:
            ws.FrameDecoder().feed(bytes(wire))
        assert err.value.code == 1002

    def test_unknown_opcode_rejected(self):
        wire = bytearray(ws.encode_frame(ws.OP_TEXT, b"hi"))
        wire[0] = 0x80 | 0x3
        with pytest.raises(ws.WSProtocolError):
            ws.FrameDecoder().feed(bytes(wire))

    def test_oversized_payload_closes_1009(self):
        decoder = ws.FrameDecoder(max_payload=16)
        with pytest.raises(ws.WSProtocolError) as err:
            decoder.feed(ws.encode_frame(ws.OP_BINARY, b"z" * 17))
        assert err.value.code == 1009

    def test_close_payload_round_trip(self):
        assert ws.parse_close(ws.close_payload(1013, "slow")) == \
            (1013, "slow")
        # Empty close payload is legal: 1005 "no status received".
        assert ws.parse_close(b"") == (1005, "")

    def test_control_frame_encode_limits(self):
        with pytest.raises(ValueError):
            ws.encode_frame(ws.OP_PING, b"z" * 126)
        with pytest.raises(ValueError):
            ws.encode_frame(ws.OP_CLOSE, b"", fin=False)


# ----------------------------------------------------------------------
# Auth
# ----------------------------------------------------------------------
class TestTokenAuth:
    def test_disabled_when_no_token(self):
        auth = TokenAuth(None)
        assert not auth.enabled
        assert auth.check({})

    def test_bearer_token_checked(self):
        auth = TokenAuth("s3cret")
        assert auth.enabled
        assert auth.check({"authorization": "Bearer s3cret"})
        assert auth.check({"authorization": "bearer s3cret"})
        assert not auth.check({"authorization": "Bearer wrong"})
        assert not auth.check({"authorization": "s3cret"})
        assert not auth.check({})


# ----------------------------------------------------------------------
# HTTP parsing
# ----------------------------------------------------------------------
def _parse_request(wire):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(wire)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHTTPParsing:
    def test_get_with_query(self):
        request = _parse_request(
            b"GET /v1/results?key=abc&limit=5 HTTP/1.1\r\n"
            b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/results"
        assert request.param("key") == "abc"
        assert request.param("limit") == "5"
        assert request.param("missing", "d") == "d"

    def test_post_with_body(self):
        body = json.dumps({"study": "caches"}).encode()
        request = _parse_request(
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        assert request.json() == {"study": "caches"}

    def test_clean_eof_returns_none(self):
        assert _parse_request(b"") is None

    def test_bad_version_rejected(self):
        with pytest.raises(HTTPError) as err:
            _parse_request(b"GET / HTTP/2.0\r\nHost: x\r\n\r\n")
        assert err.value.status == 505

    def test_bad_json_body_rejected(self):
        request = _parse_request(
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 8\r\n\r\n{not json"[:60])
        with pytest.raises(HTTPError) as err:
            request.json()
        assert err.value.status == 400


# ----------------------------------------------------------------------
# Hub backpressure
# ----------------------------------------------------------------------
class TestHub:
    def test_backlog_replays_to_late_subscriber(self):
        async def go():
            hub = Hub(asyncio.get_running_loop())
            hub.publish({"n": 0})
            hub.publish({"n": 1})
            sub = hub.subscribe()
            assert await sub.queue.get() == {"n": 0}
            assert await sub.queue.get() == {"n": 1}

        asyncio.run(go())

    def test_slow_subscriber_dropped_not_blocking(self):
        async def go():
            hub = Hub(asyncio.get_running_loop(),
                      backlog=4, queue_size=4)
            slow = hub.subscribe()
            for i in range(10):
                hub.publish({"n": i})
            assert slow.dropped
            assert hub.drops == 1
            # The stale buffer was cleared: CLOSE arrives immediately.
            assert await slow.queue.get() is CLOSE
            # A fresh subscriber (queue > backlog, the real config)
            # still works; publish never raised.
            hub._queue_size = 8
            fresh = hub.subscribe()
            hub.publish({"n": 10})
            for __ in range(4):  # replayed (bounded) backlog first
                await fresh.queue.get()
            assert await fresh.queue.get() == {"n": 10}

        asyncio.run(go())

    def test_close_publishes_terminal_then_sentinel(self):
        async def go():
            hub = Hub(asyncio.get_running_loop())
            sub = hub.subscribe()
            hub.close({"type": "job", "state": "done"})
            assert await sub.queue.get() == \
                {"type": "job", "state": "done"}
            assert await sub.queue.get() is CLOSE
            # Late subscribers of a closed hub get history + CLOSE.
            late = hub.subscribe()
            assert await late.queue.get() == \
                {"type": "job", "state": "done"}
            assert await late.queue.get() is CLOSE

        asyncio.run(go())


# ----------------------------------------------------------------------
# Live server fixtures
# ----------------------------------------------------------------------
@contextmanager
def live_service(directory, **kwargs):
    """A SweepService on an ephemeral port in a background thread."""
    service = SweepService(str(directory), port=0, quiet=True, **kwargs)
    started = threading.Event()
    box = {}

    async def main():
        box["port"] = await service.start()
        started.set()
        await service._stop.wait()
        await service.shutdown()

    def run():
        loop = asyncio.new_event_loop()
        box["loop"] = loop
        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "service failed to start"
    try:
        yield box["port"], service
    finally:
        box["loop"].call_soon_threadsafe(service.request_stop)
        thread.join(timeout=30)
        assert not thread.is_alive(), "service failed to drain"


def _sleepy_point(params):
    time.sleep(float(params["duration"]))
    return {"slept": float(params["duration"]),
            "ratio": float(params.get("ratio", 0.0))}


@contextmanager
def sleepy_study(name="service_sleepy"):
    register_study(name, "sleeps; lets tests catch jobs mid-flight",
                   defaults={"duration": 0.3, "ratio": 0.0}
                   )(_sleepy_point)
    try:
        yield name
    finally:
        _STUDIES.pop(name, None)


class TestLiveService:
    def test_submit_stream_result_roundtrip(self, tmp_path):
        with live_service(tmp_path / "svc") as (port, __):
            client = ServiceClient(f"http://127.0.0.1:{port}")
            health = client.healthz()
            assert health["status"] == "ok"

            submitted = client.submit(TINY_PAYLOAD)
            job_id = submitted["job"]
            assert submitted["deduplicated"] is False
            assert submitted["total"] == 2

            kinds, types, telemetry = [], [], 0
            for message in client.stream(job_id):
                types.append(message["type"])
                if message["type"] == "event":
                    kinds.append(message["record"]["event"])
                elif message["type"] == "telemetry":
                    telemetry += 1
            assert types[0] == "hello"
            assert "run_start" in kinds and "run_end" in kinds
            assert telemetry >= 1
            assert types[-1] == "job"

            status = client.wait(job_id, timeout=60)
            assert status["state"] == "done"
            assert status["done"] == 2

            rows = client.result(job_id)["rows"]
            assert len(rows) == 2
            assert {row["params"]["ratio"] for row in rows} == \
                {0.4, 0.6}

            # Store query by content key returns the same record.
            key = rows[0]["key"]
            records = client.query(key=key)["records"]
            assert len(records) == 1
            assert records[0]["metrics"] == rows[0]["metrics"]

            # Identical resubmit: dedup hit, no second execution.
            again = client.submit(TINY_PAYLOAD)
            assert again["deduplicated"] is True
            assert again["job"] == job_id
            assert again["submissions"] == 2

    def test_concurrent_identical_submits_share_one_execution(
            self, tmp_path):
        """The ISSUE acceptance test: N concurrent submits of one
        spec → one execution, one store write per point, N identical
        streams each seeing run_start + telemetry + run_end."""
        directory = tmp_path / "svc"
        with live_service(directory) as (port, __):
            url = f"http://127.0.0.1:{port}"

            def submit():
                return ServiceClient(url).submit(TINY_PAYLOAD)

            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                responses = list(pool.map(
                    lambda __: submit(), range(4)))

            assert len({r["job"] for r in responses}) == 1
            fresh = [r for r in responses if not r["deduplicated"]]
            assert len(fresh) == 1
            job_id = responses[0]["job"]

            def consume():
                kinds, telemetry = [], 0
                for message in ServiceClient(url).stream(job_id):
                    if message["type"] == "event":
                        kinds.append(message["record"]["event"])
                    elif message["type"] == "telemetry":
                        telemetry += 1
                return kinds, telemetry

            with concurrent.futures.ThreadPoolExecutor(3) as pool:
                streams = list(pool.map(
                    lambda __: consume(), range(3)))
            for kinds, telemetry in streams:
                assert "run_start" in kinds and "run_end" in kinds
                assert telemetry >= 1

            results = [ServiceClient(url).result(job_id)["rows"]
                       for __ in range(2)]
            assert results[0] == results[1]
            assert len(results[0]) == 2

            # One shard line per point key: the single-execution
            # guarantee, asserted at the storage layer.
            keys = []
            shard_dir = directory / "shards"
            for name in os.listdir(shard_dir):
                with open(shard_dir / name) as handle:
                    keys += [json.loads(line)["key"] for line in handle]
            assert len(keys) == len(set(keys)) == 2

    def test_auth_rejects_and_admits(self, tmp_path):
        with live_service(tmp_path / "svc", token="s3cret") as \
                (port, __):
            url = f"http://127.0.0.1:{port}"
            # healthz stays open for liveness probes.
            assert ServiceClient(url).healthz()["status"] == "ok"

            with pytest.raises(ServiceError) as err:
                ServiceClient(url).submit(TINY_PAYLOAD)
            assert err.value.status == 401
            with pytest.raises(ServiceError) as err:
                ServiceClient(url, token="wrong").jobs()
            assert err.value.status == 401

            client = ServiceClient(url, token="s3cret")
            job = client.submit(TINY_PAYLOAD)
            assert client.wait(job["job"], timeout=60)["state"] == \
                "done"
            # The WS upgrade path enforces the same token.
            with pytest.raises(ServiceError) as err:
                next(iter(ServiceClient(url).stream(job["job"])))
            assert err.value.status == 401
            assert any(m["type"] == "hello"
                       for m in client.stream(job["job"]))

    def test_bad_spec_and_unknown_routes(self, tmp_path):
        with live_service(tmp_path / "svc") as (port, __):
            client = ServiceClient(f"http://127.0.0.1:{port}")
            with pytest.raises(ServiceError) as err:
                client.submit({"study": "no_such_study",
                               "grid": {"x": [1]}})
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client.status("nonexistent-job")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.query(key="not-a-key")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client._request("GET", "/v2/nope")
            assert err.value.status == 404

    def test_result_conflicts_until_done(self, tmp_path):
        with sleepy_study() as study:
            payload = {"study": study,
                       "grid": {"duration": [0.5, 0.5001]}}
            with live_service(tmp_path / "svc") as (port, __):
                client = ServiceClient(f"http://127.0.0.1:{port}")
                job = client.submit(payload)
                with pytest.raises(ServiceError) as err:
                    client.result(job["job"])
                assert err.value.status == 409
                assert client.wait(job["job"], timeout=60)[
                    "state"] == "done"
                assert len(client.result(job["job"])["rows"]) == 2

    def test_drain_journals_fabric_job_then_resume_matches(
            self, tmp_path):
        """SIGTERM-path drain: a running fabric job is stopped
        cooperatively, reported incomplete with a resume hint, and
        ``FabricRunner.resume`` finishes it bit-identically."""
        from repro.fabric import FabricRunner, ShardedResultStore

        directory = tmp_path / "svc"
        with sleepy_study() as study:
            spec = SweepSpec(study, grid={
                "duration": [0.4, 0.4001, 0.4002, 0.4003]})
            payload = {"study": study, "grid": dict(spec.grid)}
            oracle = SweepRunner(store=None, workers=1).run(spec)

            with live_service(directory, drain_grace=30.0) as \
                    (port, service):
                client = ServiceClient(f"http://127.0.0.1:{port}")
                job = client.submit(payload, fabric=True)
                job_id = job["job"]
                deadline = time.monotonic() + 30
                while client.status(job_id)["done"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                # Context exit sends the stop; shutdown drains.
            final = service.manager.get(job_id)
            assert final is not None

            store = ShardedResultStore(str(directory))
            try:
                if final.state == "incomplete":
                    assert job_id in final.status()["resume"]
                    outcome = FabricRunner(
                        store, workers=1).resume(job_id)
                    rows = {r.point.key: r.metrics
                            for r in outcome.results}
                else:
                    # The job beat the drain; its rows stand alone.
                    assert final.state == "done"
                    rows = {r["key"]: r["metrics"]
                            for r in final.results}
            finally:
                store.close()
            assert rows == {r.point.key: r.metrics
                            for r in oracle.results}

    def test_drain_rejects_new_submits(self, tmp_path):
        with sleepy_study() as study:
            with live_service(tmp_path / "svc") as (port, service):
                client = ServiceClient(f"http://127.0.0.1:{port}")
                job = client.submit(
                    {"study": study, "grid": {"duration": [0.4]}})
                service.manager.draining = True
                with pytest.raises(ServiceError) as err:
                    client.submit(TINY_PAYLOAD)
                assert err.value.status == 503
                assert client.healthz()["draining"] is True
                service.manager.draining = False
                client.wait(job["job"], timeout=60)


# ----------------------------------------------------------------------
# `repro serve` end to end (subprocess, SIGTERM)
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_serve_subprocess_smoke(self, tmp_path):
        import signal
        import subprocess
        import sys

        ready = tmp_path / "ready.json"
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       filter(None, [os.path.abspath("src"),
                                     os.environ.get("PYTHONPATH")])))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--store", str(tmp_path / "store"),
             "--ready-file", str(ready), "--quiet"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert proc.poll() is None, \
                    proc.stderr.read().decode()
                assert time.monotonic() < deadline
                time.sleep(0.05)
            url = json.loads(ready.read_text())["url"]
            client = ServiceClient(url)
            job = client.submit(TINY_PAYLOAD)
            assert client.wait(job["job"], timeout=60)[
                "state"] == "done"
            assert client.submit(TINY_PAYLOAD)["deduplicated"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
