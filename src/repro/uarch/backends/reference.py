"""The ``"reference"`` kernel backend: the scalar set-associative cache.

This module is the semantic ground truth of the simulator.  Every other
backend (see :mod:`repro.uarch.backends.vectorized`) must reproduce its
observable behaviour bit-for-bit; the classes here are re-exported
unchanged through :mod:`repro.uarch.cache` for compatibility.

Set-associative cache with the line states the inversion schemes need.

Beyond a plain LRU cache, the model supports the three states Section
3.2.1 of the paper relies on:

- ``VALID``: a normal line holding workload data,
- ``INVALID``: an empty line (cold or explicitly invalidated),
- ``INVERTED``: invalid *and* holding inverted repair contents — the
  "valid/state bits indicate whether the cache line is valid and
  non-inverted, or invalid and inverted".

The cache also keeps a per-line *shadow-invert* bit used by the dynamic
scheme's test periods ("a bit per cache line that indicates whether cache
lines would have been inverted if the mechanism was activated.  Whenever
a hit happens in such cache lines, it is counted as an induced extra
miss"), and a hit-position histogram that backs the paper's MRU claim
(90% of DL0 hits in the MRU way).

Hot-path design
---------------
This module is the innermost loop of every Table 3 / sweep replay, so it
keeps per-access work O(ways):

- ``inverted_count()`` / ``shadow_count()`` are incremental counters
  maintained by the state-changing methods, not O(sets x ways) rescans
  (the schemes consult them after *every* access);
- the per-set LRU is position-indexed (``_lru_order`` / ``_lru_pos``),
  so hit-position lookup is O(1) and promotion shifts at most ``ways``
  slots instead of ``list.remove`` + ``list.index`` scans;
- :meth:`replay` batches a whole address stream with attribute lookups
  hoisted out of the loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.metrics import MetricSet
from repro.obs.trace import TRACER as _TRACER
from repro.uarch.backends.base import KernelBackend

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.uarch.tlb import TLB, TLBConfig


class LineState(enum.Enum):
    INVALID = "invalid"
    VALID = "valid"
    INVERTED = "inverted"  # invalid + inverted repair contents


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of a cache.

    Examples
    --------
    >>> CacheConfig(name="DL0-32K-8w", size_bytes=32 * 1024, ways=8).sets
    64
    """

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        return self.sets * self.ways


@dataclass(slots=True)
class CacheStats:
    """Running counters of one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    shadow_hits: int = 0
    inversions: int = 0
    refills_of_inverted: int = 0
    hit_way_position: Dict[int, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def mru_hit_fraction(self, position: int = 0) -> float:
        """Fraction of hits found at the given LRU-stack position."""
        if not self.hits:
            return 0.0
        return self.hit_way_position.get(position, 0) / self.hits


class Cache:
    """A set-associative, true-LRU cache.

    The cache is a *tag* model: it tracks which line addresses are
    resident, not the data bytes.  Mechanisms manipulate line states via
    :meth:`invert_line` / :meth:`invalidate_line`; the replacement victim
    search prefers INVALID and INVERTED lines over evicting VALID ones.
    """

    __slots__ = (
        "config",
        "allow_inverted_victims",
        "_sets",
        "_ways",
        "_line_bytes",
        "_tags",
        "_state",
        "_lru_order",
        "_lru_pos",
        "_shadow",
        "_inverted_lines",
        "_shadow_lines",
        "stats",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._init_arrays()
        self.stats = CacheStats()

    def _init_arrays(self) -> None:
        """(Re)build the empty line-state arrays and counters."""
        #: When False, replacement never victimises INVERTED lines —
        #: used by way-granularity inversion, where the inverted ways
        #: are statically out of service rather than a refillable pool.
        self.allow_inverted_victims = True
        # Geometry as plain ints: CacheConfig.sets/.lines are computed
        # properties, far too expensive to re-derive per access.
        sets, ways = self.config.sets, self.config.ways
        self._sets = sets
        self._ways = ways
        self._line_bytes = self.config.line_bytes
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self._state: List[List[LineState]] = [
            [LineState.INVALID] * ways for _ in range(sets)
        ]
        #: per-set LRU order: index 0 = MRU way, last = LRU way ...
        self._lru_order: List[List[int]] = [
            list(range(ways)) for _ in range(sets)
        ]
        #: ... and its inverse: way -> current LRU-stack position.
        self._lru_pos: List[List[int]] = [
            list(range(ways)) for _ in range(sets)
        ]
        self._shadow: List[List[bool]] = [
            [False] * ways for _ in range(sets)
        ]
        #: incremental INVCOUNT / shadow-bit population (kept in sync by
        #: every state-changing method; the O(sets*ways) truth is only
        #: recomputed by tests).
        self._inverted_lines = 0
        self._shadow_lines = 0

    def reset(self) -> None:
        """Restore the cold, empty post-construction state and stats."""
        self._init_arrays()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def index_of(self, address: int) -> Tuple[int, int]:
        """(set index, tag) of a byte address."""
        line = address // self._line_bytes
        return line % self._sets, line // self._sets

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, address: int) -> bool:
        """Look up an address; fills on miss.  Returns hit/miss."""
        set_index, tag = self.index_of(address)
        stats = self.stats
        stats.accesses += 1
        way = self._find(set_index, tag)
        if way is not None:
            position = self._lru_pos[set_index][way]
            stats.hit_way_position[position] = (
                stats.hit_way_position.get(position, 0) + 1
            )
            stats.hits += 1
            if self._shadow[set_index][way]:
                stats.shadow_hits += 1
            if position:
                self._touch(set_index, way)
            return True
        stats.misses += 1
        self._fill(set_index, tag)
        return False

    def replay(self, addresses: Iterable[int]) -> int:
        """Access a whole address stream; returns the number of hits.

        Bit-exact equivalent of calling :meth:`access` per address, with
        the attribute lookups hoisted out of the loop — use this from
        study harnesses replaying 10^5+ accesses.  ``addresses`` may be
        any single-pass iterable (e.g. the lazy
        :func:`~repro.workloads.generator.iter_address_stream` or a
        :func:`~repro.workloads.multiprog.multiprog_address_stream`), so
        the replay is bounded-memory.
        """
        # Batch-granularity span: one record per replay *call*, never
        # per access — the disabled cost is a single attribute test.
        _t = _TRACER.begin()
        line_bytes, sets, ways = self._line_bytes, self._sets, self._ways
        all_tags, all_states = self._tags, self._state
        all_pos, all_shadow = self._lru_pos, self._shadow
        stats = self.stats
        hit_positions = stats.hit_way_position
        touch, fill = self._touch, self._fill
        valid = LineState.VALID
        way_range = range(ways)
        n_hits = n_misses = n_shadow = 0
        for address in addresses:
            line = address // line_bytes
            set_index = line % sets
            tag = line // sets
            states = all_states[set_index]
            tags = all_tags[set_index]
            hit_way = -1
            for way in way_range:
                if states[way] is valid and tags[way] == tag:
                    hit_way = way
                    break
            if hit_way >= 0:
                position = all_pos[set_index][hit_way]
                hit_positions[position] = (
                    hit_positions.get(position, 0) + 1
                )
                n_hits += 1
                if all_shadow[set_index][hit_way]:
                    n_shadow += 1
                if position:
                    touch(set_index, hit_way)
            else:
                n_misses += 1
                fill(set_index, tag)
        stats.accesses += n_hits + n_misses
        stats.hits += n_hits
        stats.misses += n_misses
        stats.shadow_hits += n_shadow
        if _t is not None:
            _TRACER.end(_t, "cache.replay", cache=self.config.name,
                        accesses=n_hits + n_misses, misses=n_misses)
        return n_hits

    def probe(self, address: int) -> bool:
        """Non-allocating lookup (no state change, no counters)."""
        set_index, tag = self.index_of(address)
        return self._find(set_index, tag) is not None

    def _find(self, set_index: int, tag: int) -> Optional[int]:
        tags = self._tags[set_index]
        states = self._state[set_index]
        for way in range(self._ways):
            if states[way] is LineState.VALID and tags[way] == tag:
                return way
        return None

    def _fill(self, set_index: int, tag: int) -> int:
        way = self.victim_way(set_index)
        states = self._state[set_index]
        if states[way] is LineState.INVERTED:
            self.stats.refills_of_inverted += 1
            self._inverted_lines -= 1
        if self._shadow[set_index][way]:
            self._shadow[set_index][way] = False
            self._shadow_lines -= 1
        self._tags[set_index][way] = tag
        states[way] = LineState.VALID
        self._touch(set_index, way)
        return way

    def victim_way(self, set_index: int) -> int:
        """Replacement victim: prefer INVALID, then INVERTED, then LRU.

        With :attr:`allow_inverted_victims` False, INVERTED lines are
        skipped and the LRU *valid* line is evicted instead (they are
        only reclaimed if the whole set is inverted).
        """
        states = self._state[set_index]
        order = self._lru_order[set_index]
        for way in reversed(order):
            if states[way] is LineState.INVALID:
                return way
        if self.allow_inverted_victims:
            for way in reversed(order):
                if states[way] is LineState.INVERTED:
                    return way
        for way in reversed(order):
            if states[way] is LineState.VALID:
                return way
        return order[-1]

    def _touch(self, set_index: int, way: int) -> None:
        """Promote a way to MRU by shifting the ways above it down."""
        positions = self._lru_pos[set_index]
        position = positions[way]
        if position == 0:
            return
        order = self._lru_order[set_index]
        while position:
            moved = order[position - 1]
            order[position] = moved
            positions[moved] = position
            position -= 1
        order[0] = way
        positions[way] = 0

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def line_state(self, set_index: int, way: int) -> LineState:
        return self._state[set_index][way]

    def valid_ways(self, set_index: int) -> List[int]:
        states = self._state[set_index]
        return [w for w in range(self._ways)
                if states[w] is LineState.VALID]

    def inverted_count(self) -> int:
        """Number of INVERTED lines (the schemes' INVCOUNT), in O(1)."""
        return self._inverted_lines

    def lru_position(self, set_index: int, position: int) -> int:
        """Way currently at the given LRU-stack position (0 = MRU)."""
        return self._lru_order[set_index][position]

    def invert_candidate(self, set_index: int, min_position: int) -> bool:
        """Invert the set's best inversion victim, if any.

        Preference order of the line schemes: a free win (INVALID line,
        by way index), else the LRU-most VALID line at stack position
        >= ``min_position``.  Returns False when the set has neither.
        Single-scan equivalent of probing ``line_state`` way by way.
        """
        states = self._state[set_index]
        invalid = LineState.INVALID
        for way in range(self._ways):
            if states[way] is invalid:
                self.invert_line(set_index, way)
                return True
        order = self._lru_order[set_index]
        valid = LineState.VALID
        for position in range(self._ways - 1, min_position - 1, -1):
            way = order[position]
            if states[way] is valid:
                self.invert_line(set_index, way)
                return True
        return False

    def shadow_candidate(self, set_index: int, min_position: int) -> bool:
        """Shadow-mark the set's LRU-most unmarked VALID line, if any.

        Same victim preference as :meth:`invert_candidate`'s VALID
        branch, used by the dynamic scheme's test periods.  Returns
        False when no eligible line exists.
        """
        states = self._state[set_index]
        shadow = self._shadow[set_index]
        order = self._lru_order[set_index]
        for position in range(self._ways - 1, min_position - 1, -1):
            way = order[position]
            if states[way] is LineState.VALID and not shadow[way]:
                shadow[way] = True
                self._shadow_lines += 1
                return True
        return False

    def invert_line(self, set_index: int, way: int) -> None:
        """Invalidate a line and fill it with inverted repair contents."""
        states = self._state[set_index]
        if states[way] is not LineState.INVERTED:
            self._inverted_lines += 1
        states[way] = LineState.INVERTED
        self._tags[set_index][way] = None
        if self._shadow[set_index][way]:
            self._shadow[set_index][way] = False
            self._shadow_lines -= 1
        self.stats.inversions += 1

    def invalidate_line(self, set_index: int, way: int) -> None:
        states = self._state[set_index]
        if states[way] is LineState.INVERTED:
            self._inverted_lines -= 1
        states[way] = LineState.INVALID
        self._tags[set_index][way] = None
        if self._shadow[set_index][way]:
            self._shadow[set_index][way] = False
            self._shadow_lines -= 1

    def set_shadow(self, set_index: int, way: int, value: bool) -> None:
        """Mark/unmark the would-be-inverted test bit of a line."""
        row = self._shadow[set_index]
        if row[way] != value:
            self._shadow_lines += 1 if value else -1
            row[way] = value

    def is_shadow(self, set_index: int, way: int) -> bool:
        return self._shadow[set_index][way]

    def shadow_count(self) -> int:
        """Number of shadow-marked lines, in O(1)."""
        return self._shadow_lines

    def clear_shadow(self) -> None:
        if not self._shadow_lines:
            return
        for row in self._shadow:
            for way in range(len(row)):
                row[way] = False
        self._shadow_lines = 0

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        """Live metric tree over this cache's counters.

        Every stat reads through ``self`` at snapshot time, so the tree
        survives :meth:`reset` (which swaps the ``stats`` object) and
        costs the access path nothing — collection is pull-based.
        """
        ms = MetricSet()
        ms.counter("accesses", read=lambda: self.stats.accesses)
        ms.counter("hits", read=lambda: self.stats.hits)
        ms.counter("misses", read=lambda: self.stats.misses)
        ms.counter("shadow_hits", read=lambda: self.stats.shadow_hits)
        ms.counter("inversions", read=lambda: self.stats.inversions)
        ms.counter("refills_of_inverted",
                   read=lambda: self.stats.refills_of_inverted)
        ms.ratio("miss_rate", numerator="misses", denominator="accesses")
        ms.ratio("hit_rate", numerator="hits", denominator="accesses")
        ms.gauge("inverted_lines", read=self.inverted_count)
        ms.gauge("shadow_lines", read=self.shadow_count)
        lines = self.config.lines
        ms.gauge("inverted_frac",
                 read=lambda: self._inverted_lines / lines,
                 help="fraction of lines holding inverted repair data")
        ms.distribution(
            "hit_way_position",
            read=lambda: dict(self.stats.hit_way_position),
            help="hits per LRU-stack position (0 = MRU)",
        )
        return ms


# ----------------------------------------------------------------------
# The backend wrapper: scalar structures + scalar NBTI kernels
# ----------------------------------------------------------------------
class ReferenceBackend(KernelBackend):
    """The always-available scalar engine (pure Python, no numpy)."""

    __slots__ = ()

    name = "reference"

    def make_cache(self, config: CacheConfig) -> Cache:
        return Cache(config)

    def make_tlb(self, config: "TLBConfig") -> "TLB":
        from repro.uarch.tlb import TLB  # deferred: tlb.py imports us

        return TLB(config)

    def nbti_stress(self, nits: Iterable[float], n_max: float,
                    k_stress: float, duration: float) -> List[float]:
        from repro.nbti.physics import apply_stress, stress_decay

        decay = stress_decay(k_stress, duration)
        return [apply_stress(nit, n_max, decay) for nit in nits]

    def nbti_relax(self, nits: Iterable[float], k_relax: float,
                   duration: float) -> List[float]:
        from repro.nbti.physics import apply_relax, relax_decay

        decay = relax_decay(k_relax, duration)
        return [apply_relax(nit, decay) for nit in nits]

    def steady_state_fill_many(
        self, duties: Iterable[float], recovery_ratio: float = 9.0,
    ) -> List[float]:
        from repro.nbti.physics import steady_state_fill

        return [steady_state_fill(duty, recovery_ratio)
                for duty in duties]
