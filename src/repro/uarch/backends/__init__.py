"""Pluggable kernel backends: the simulation engines behind the caches.

``get_backend("reference")`` is the scalar ground truth;
``get_backend("vectorized")`` is the numpy structure-of-arrays engine
(requires the ``fast`` extra).  Both expose the same
:class:`~repro.uarch.backends.base.KernelBackend` surface and are
bit-identical by contract — see DESIGN.md section 10.

Spec-level selection goes through ``KERNEL_BACKENDS`` in
:mod:`repro.config.registry`; this module is the dependency-light core
lookup used by :class:`~repro.uarch.core.TraceDrivenCore` itself.
"""

from __future__ import annotations

from typing import Dict, List

from repro.uarch.backends.base import KernelBackend
from repro.uarch.backends.reference import (
    Cache,
    CacheConfig,
    CacheStats,
    LineState,
    ReferenceBackend,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "KernelBackend",
    "LineState",
    "ReferenceBackend",
    "backend_names",
    "get_backend",
]

#: Singleton per backend: backends are stateless factories.
_INSTANCES: Dict[str, KernelBackend] = {}


def backend_names() -> List[str]:
    """Known backend names, stable order (reference first)."""
    return ["reference", "vectorized"]


def get_backend(name: str) -> KernelBackend:
    """Resolve a backend name to its (singleton) engine.

    Raises :class:`repro.config.specs.SpecError` for unknown names and
    for ``"vectorized"`` when numpy is not installed (the ``fast``
    extra), so bad spec values fail with one consistent error type.
    """
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    if name == "reference":
        backend: KernelBackend = ReferenceBackend()
    elif name == "vectorized":
        # Deferred so the scalar path never imports (or needs) numpy.
        from repro.uarch.backends.vectorized import VectorizedBackend

        backend = VectorizedBackend()
    else:
        from repro.config.specs import SpecError

        known = ", ".join(backend_names())
        raise SpecError(
            f"unknown kernel backend {name!r}; known backends: {known}"
        )
    _INSTANCES[name] = backend
    return backend
