"""Unit tests for the unified metrics & telemetry API."""

import json
import pickle

import pytest

from repro.analysis import format_interval_report
from repro.metrics import (
    Counter,
    Derived,
    Distribution,
    Gauge,
    IntervalTelemetry,
    MetricSet,
    MetricSource,
    Ratio,
    Text,
    delta_values,
    kind_of_value,
    payload_deltas,
)
from repro.uarch import TraceDrivenCore
from repro.uarch.cache import Cache, CacheConfig
from repro.workloads import TraceGenerator

CONFIG = CacheConfig(name="DL0-4K-4w", size_bytes=4 * 1024, ways=4)


def _stream(length=3000, seed=5):
    import random

    rng = random.Random(seed)
    return [rng.randrange(1 << 14) * 64 for __ in range(length)]


class TestStatTypes:
    def test_counter_defaults_and_add(self):
        from repro.metrics import CUMULATIVE_KINDS

        stat = Counter()
        assert stat.value() == 0 and stat.kind in CUMULATIVE_KINDS
        stat.add(3)
        assert stat.value() == 3

    def test_live_stats_reject_set(self):
        stat = Counter(read=lambda: 7)
        assert stat.value() == 7
        with pytest.raises(ValueError):
            stat.set(1)
        with pytest.raises(ValueError):
            Counter(5, read=lambda: 7)

    def test_ratio_over_siblings(self):
        ms = MetricSet()
        ms.counter("num", 3)
        ms.counter("den", 4)
        ms.ratio("frac", numerator="num", denominator="den")
        assert ms.get("frac").value() == 0.75

    def test_ratio_zero_denominator_is_zero(self):
        ms = MetricSet()
        ms.counter("num", 3)
        ms.counter("den", 0)
        ms.ratio("frac", numerator="num", denominator="den")
        assert ms.get("frac").value() == 0.0

    def test_ratio_zero_denominator_convention_is_configurable(self):
        ms = MetricSet()
        ms.counter("hits", 0)
        ms.counter("checks", 0)
        ms.ratio("free", numerator="hits", denominator="checks",
                 zero=1.0)
        assert ms.get("free").value() == 1.0
        # ... and the convention survives the schema/delta round trip
        delta = ms.delta(ms.snapshot(), ms.snapshot())
        assert delta["free"] == 1.0

    def test_mixed_reference_ratio_deltas_do_not_crash(self):
        total = [10]
        ms = MetricSet()
        ms.counter("hits", 4)
        ms.ratio("rate", numerator="hits", denominator=lambda: total[0])
        assert ms.get("rate").value() == pytest.approx(0.4)
        # callable refs cannot be re-derived offline: the schema keeps
        # the stat opaque and deltas report the current value.
        assert ms.schema()["rate"] == {"kind": "ratio"}
        first = ms.snapshot()
        ms.get("hits").set(6)
        delta = ms.delta(ms.snapshot(), first)
        assert delta["rate"] == pytest.approx(0.6)

    def test_idle_port_fractions_match_finalize_convention(self):
        from repro.uarch.regfile import RegisterFile
        from repro.uarch.scheduler import Scheduler

        rf = RegisterFile(entries=8, width=8)
        assert (rf.metrics().flatten()["port_free_fraction"]
                == rf.finalize().port_free_fraction == 1.0)
        scheduler = Scheduler(entries=4)
        assert (scheduler.metrics().flatten()["port_free_fraction"]
                == scheduler.finalize().port_free_fraction == 1.0)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            Ratio()  # nothing to read
        with pytest.raises(ValueError):
            Ratio(numerator="a")  # half a reference
        with pytest.raises(ValueError):
            Ratio(0.5, numerator="a", denominator="b")  # both styles

    def test_derived_formula_over_siblings(self):
        from repro.core.metric import nbti_efficiency

        ms = MetricSet()
        ms.gauge("delay", 1.0, internal=True)
        ms.gauge("guardband", 0.20, internal=True)
        ms.gauge("tdp", 1.0, internal=True)
        ms.derived("efficiency", nbti_efficiency,
                   args=("delay", "guardband", "tdp"))
        assert ms.get("efficiency").value() == pytest.approx(1.728)
        # internal inputs stay out of the flat view
        assert list(ms.flatten()) == ["efficiency"]
        assert set(ms.flatten(include_internal=True)) == {
            "efficiency", "delay", "guardband", "tdp"}

    def test_detached_derived_raises(self):
        stat = Derived(lambda x: x, args=("x",))
        with pytest.raises(RuntimeError):
            stat.value()

    def test_distribution_copies(self):
        histogram = {0: 5, 1: 2}
        stat = Distribution(histogram)
        assert stat.value() == histogram
        assert stat.value() is not histogram

    def test_kind_of_value(self):
        assert kind_of_value(True) == "text"
        assert kind_of_value(3) == "counter"
        assert kind_of_value(3.0) == "gauge"
        assert kind_of_value("x") == "text"
        assert kind_of_value({0: 1}) == "distribution"
        assert kind_of_value(None) == "text"


class TestMetricSet:
    def _tree(self):
        ms = MetricSet()
        ms.counter("hits", 3)
        child = ms.child("dl0")
        child.counter("misses", 1)
        child.child("inner").gauge("level", 0.5)
        return ms

    def test_dotted_paths_and_flatten(self):
        ms = self._tree()
        assert ms.get("dl0.inner.level").value() == 0.5
        assert ms.flatten() == {"hits": 3, "dl0.misses": 1,
                                "dl0.inner.level": 0.5}
        assert "dl0.misses" in ms and "dl0.nope" not in ms

    def test_duplicate_and_invalid_names_rejected(self):
        ms = self._tree()
        with pytest.raises(ValueError):
            ms.counter("hits", 1)
        with pytest.raises(ValueError):
            ms.child("dl0")
        with pytest.raises(ValueError):
            ms.counter("a.b", 1)
        with pytest.raises(ValueError):
            ms.counter("", 1)

    def test_unknown_path_raises_keyerror(self):
        with pytest.raises(KeyError):
            self._tree().get("dl0.bogus")
        with pytest.raises(KeyError):
            self._tree().get("nowhere.at.all")

    def test_from_flat_round_trip(self):
        flat = {"hits": 3, "dl0.misses": 1, "dl0.rate": 0.25,
                "scheme": "LineFixed50%"}
        rebuilt = MetricSet.from_flat(flat)
        assert rebuilt.flatten() == flat
        assert rebuilt.get("hits").kind == "counter"
        assert rebuilt.get("dl0.rate").kind == "gauge"
        assert rebuilt.get("scheme").kind == "text"

    def test_snapshot_and_typed_delta(self):
        ms = MetricSet()
        ms.counter("n", 10)
        ms.gauge("level", 1.5)
        ms.ratio("rate", numerator="n", denominator="total")
        ms.counter("total", 20)
        ms.distribution("histo", {0: 4})
        first = ms.snapshot(1)
        ms.get("n").set(16)
        ms.get("total").set(40)
        ms.get("histo").set({0: 6, 1: 1})
        second = ms.snapshot(2)
        delta = ms.delta(second, first)
        assert delta["n"] == 6
        assert delta["total"] == 20
        assert delta["rate"] == pytest.approx(6 / 20)  # rate OF deltas
        assert delta["level"] == 1.5  # gauges report current level
        assert delta["histo"] == {0: 2, 1: 1}

    def test_delta_against_nothing_is_totals(self):
        ms = MetricSet()
        ms.counter("n", 4)
        assert ms.delta(ms.snapshot()) == {"n": 4}

    def test_schema_survives_json(self):
        ms = MetricSet()
        ms.counter("n", 3)
        ms.counter("total", 6)
        child = ms.child("sub")
        child.counter("k", 1)
        child.counter("all", 2)
        child.ratio("rate", numerator="k", denominator="all")
        schema = json.loads(json.dumps(ms.schema()))
        assert schema["sub.rate"] == {"kind": "ratio",
                                      "numerator": "sub.k",
                                      "denominator": "sub.all"}
        current = {"n": 5, "total": 10, "sub.k": 4, "sub.all": 8,
                   "sub.rate": 0.5}
        previous = {"n": 3, "total": 6, "sub.k": 1, "sub.all": 2,
                    "sub.rate": 0.5}
        delta = delta_values(schema, current, previous)
        assert delta["sub.rate"] == pytest.approx(3 / 6)


class TestComponentSources:
    def test_every_stat_bearing_component_is_a_metric_source(self):
        from repro.core import PenelopeProcessor
        from repro.core.cache_like import LineFixedScheme, ProtectedCache
        from repro.uarch.bitbias import BitBiasAccumulator
        from repro.uarch.branch_predictor import (
            BimodalPredictor,
            ProtectedBimodalPredictor,
        )
        from repro.uarch.mob import MemoryOrderBuffer
        from repro.uarch.regfile import RegisterFile
        from repro.uarch.scheduler import Scheduler
        from repro.uarch.tlb import TLB, TLBConfig

        sources = [
            Cache(CONFIG),
            TLB(TLBConfig(name="DTLB-32", entries=32)),
            ProtectedCache(Cache(CONFIG), LineFixedScheme(0.5)),
            RegisterFile(entries=8, width=8),
            Scheduler(entries=4),
            MemoryOrderBuffer(entries=8),
            BitBiasAccumulator(4, 4),
            BimodalPredictor(entries=64),
            ProtectedBimodalPredictor(BimodalPredictor(entries=64)),
            TraceDrivenCore(),
            PenelopeProcessor(),
        ]
        for source in sources:
            assert isinstance(source, MetricSource), source

    def test_cache_metrics_track_live_counters(self):
        cache = Cache(CONFIG)
        tree = cache.metrics()
        cache.replay(_stream(500))
        flat = tree.flatten()
        assert flat["accesses"] == 500
        assert flat["hits"] == cache.stats.hits
        assert flat["miss_rate"] == pytest.approx(cache.stats.miss_rate)
        assert flat["hit_way_position"] == cache.stats.hit_way_position
        # the tree survives reset() (stats object is swapped)
        cache.reset()
        assert tree.flatten()["accesses"] == 0

    def test_core_metrics_namespaces(self):
        core = TraceDrivenCore()
        trace = TraceGenerator(seed=3).generate("specint2000", length=400)
        result = core.run(trace)
        flat = core.metrics().flatten()
        assert flat["dl0.misses"] == result.dl0.misses
        assert flat["dtlb.accesses"] == result.dtlb.accesses
        assert flat["scheduler.allocations"] == 400
        assert flat["mob.allocations"] == core.mob.allocations
        assert "int_rf.bias.worst_bias" in flat

    def test_protected_cache_metrics_name_the_scheme(self):
        from repro.core.cache_like import LineFixedScheme, ProtectedCache

        protected = ProtectedCache(Cache(CONFIG), LineFixedScheme(0.5))
        flat = protected.metrics().flatten()
        assert flat["scheme"] == "LineFixed50%"
        assert flat["inverted_frac"] == pytest.approx(0.5)

    def test_penelope_metrics_require_an_evaluation(self):
        from repro.core import PenelopeProcessor

        processor = PenelopeProcessor()
        with pytest.raises(RuntimeError):
            processor.metrics()

    def test_penelope_efficiency_is_derived_from_eq1_inputs(self):
        from repro.core import PenelopeProcessor
        from repro.workloads import generate_workload

        workload = generate_workload(traces_per_suite=1, length=600,
                                     suites=["specint2000"])
        processor = PenelopeProcessor()
        report = processor.evaluate(workload)
        tree = processor.metrics()
        assert tree.get("efficiency").kind == "derived"
        assert tree.get("efficiency").value() == report.efficiency
        assert (tree.get("baseline.efficiency").value()
                == report.baseline_efficiency)
        blocks = {name for name in tree.children()["blocks"].children()}
        assert {"adder", "int_rf", "fp_rf", "scheduler",
                "dl0+dtlb"} == blocks


class TestIntervalTelemetry:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            IntervalTelemetry(Cache(CONFIG), every=0)

    def test_is_single_stream(self):
        """Reuse across runs would straddle the consumer's per-run
        reset and yield negative deltas — refused loudly instead."""
        core = TraceDrivenCore()
        telemetry = IntervalTelemetry(core, every=400)
        generator = TraceGenerator(seed=9)
        core.run(telemetry.watch(generator.stream("specint2000", 900)))
        with pytest.raises(RuntimeError, match="new instance per run"):
            core.run(telemetry.watch(
                generator.stream("specint2000", 900)))
        cache = Cache(CONFIG)
        cache_telemetry = IntervalTelemetry(cache, every=400)
        cache_telemetry.replay(_stream(800))
        with pytest.raises(RuntimeError, match="new instance per run"):
            cache_telemetry.replay(_stream(800))

    def test_replay_needs_a_replayable_source(self):
        from repro.metrics import MetricSet

        bare = MetricSet()
        bare.counter("n", 0)
        with pytest.raises(TypeError):
            IntervalTelemetry(bare, every=10).replay([1, 2, 3])

    def test_streaming_core_run_snapshots_and_telescoping_deltas(self):
        """The acceptance property: a streaming run yields >= 2 interval
        snapshots whose deltas sum to the end-of-run totals."""
        core = TraceDrivenCore()
        telemetry = IntervalTelemetry(core, every=800)
        stream = TraceGenerator(seed=9).stream("specint2000", length=2500)
        result = core.run(telemetry.watch(stream))

        deltas = telemetry.deltas()
        assert len(deltas) >= 2
        assert [s.label for s in telemetry.snapshots] == [0, 800, 1600,
                                                          2400, 2500]
        totals = telemetry.totals()
        assert totals["dl0.misses"] == result.dl0.misses
        assert totals["dtlb.accesses"] == result.dtlb.accesses
        for path, kind in telemetry.metric_set.kinds().items():
            if kind != "counter":
                continue
            assert sum(d[path] for d in deltas) == pytest.approx(
                totals[path]), path

    def test_watch_does_not_perturb_the_run(self):
        trace = TraceGenerator(seed=9).generate("specint2000", length=1200)
        plain = TraceDrivenCore().run(trace)
        core = TraceDrivenCore()
        telemetry = IntervalTelemetry(core, every=500)
        watched = core.run(telemetry.watch(iter(trace)))
        assert watched.cycles == plain.cycles
        assert watched.dl0.misses == plain.dl0.misses

    def test_chunked_replay_is_bit_identical(self):
        from repro.core.cache_like import LineFixedScheme, ProtectedCache

        stream = _stream(4000)
        reference = ProtectedCache(Cache(CONFIG), LineFixedScheme(0.5),
                                   seed=3)
        reference_hits = reference.replay(stream)

        protected = ProtectedCache(Cache(CONFIG), LineFixedScheme(0.5),
                                   seed=3)
        telemetry = IntervalTelemetry(protected, every=1000)
        hits = telemetry.replay(stream)
        assert hits == reference_hits
        assert protected.stats.misses == reference.stats.misses
        assert telemetry.totals()["misses"] == reference.stats.misses
        assert len(telemetry.deltas()) == 4

    def test_replay_accepts_lazy_iterables(self):
        cache = Cache(CONFIG)
        telemetry = IntervalTelemetry(cache, every=700)
        telemetry.replay(iter(_stream(1500)))
        assert telemetry.totals()["accesses"] == 1500
        assert [s.label for s in telemetry.snapshots] == [0, 700, 1400,
                                                          1500]

    def test_series_and_payload_round_trip(self, tmp_path):
        cache = Cache(CONFIG)
        telemetry = IntervalTelemetry(cache, every=1000)
        telemetry.replay(_stream(3000))
        series = telemetry.series("misses")
        assert list(series) == ["0..1000", "1000..2000", "2000..3000"]
        assert sum(series.values()) == cache.stats.misses

        path = tmp_path / "intervals.json"
        telemetry.save(str(path))
        payload = json.loads(path.read_text())
        labels, deltas = payload_deltas(payload)
        assert labels == list(series)
        assert [d["misses"] for d in deltas] == list(series.values())
        # per-interval miss rate comes from counter deltas, not totals
        for delta in deltas:
            assert delta["miss_rate"] == pytest.approx(
                delta["misses"] / delta["accesses"])

        text = format_interval_report(payload, metrics=["misses"])
        assert text.startswith("misses")
        with pytest.raises(ValueError):
            format_interval_report(payload, metrics=["bogus"])


class TestStudyMetricSets:
    def test_execute_metrics_returns_typed_tree(self):
        from repro.experiments import get_study

        tree = get_study("caches").execute_metrics({"length": 300})
        assert tree.get("scheme_name").kind == "text"
        assert tree.get("inverted_ratio").kind == "ratio"
        assert tree.get("mean_loss").kind == "gauge"

    def test_study_sets_pickle_for_pool_workers(self):
        from repro.experiments import get_study

        for study, params in (
            ("caches", {"length": 300}),
            ("invert_ratio", {"length": 300}),
            ("penelope", {"length": 300}),
            ("multiprog", {"length": 300}),
        ):
            tree = get_study(study).execute_metrics(params)
            clone = pickle.loads(pickle.dumps(tree))
            assert clone.flatten() == tree.flatten(), study

    def test_point_results_expose_tree_and_flat_views(self, tmp_path):
        from repro.experiments import (
            ResultStore,
            SweepRunner,
            SweepSpec,
        )

        spec = SweepSpec("caches", base={"length": 300},
                         grid={"ratio": [0.4, 0.5]})
        store = ResultStore(str(tmp_path / "store.jsonl"))
        fresh = SweepRunner(store=store).run(spec)
        for result in fresh:
            assert result.metric_set is not None
            assert result.metric_tree.flatten() == result.metrics
            assert result.metric_tree.get("inverted_ratio").kind == "ratio"
        # cache hits rebuild the tree from the flat row
        cached = SweepRunner(store=store).run(spec)
        for result in cached:
            assert result.cached and result.metric_set is None
            assert result.metric_tree.flatten() == result.metrics
