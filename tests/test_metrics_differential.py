"""Differential bit-identity of study MetricSets vs the legacy dicts.

The metrics redesign changed the *shape* of study results (typed
``MetricSet`` trees) but must not change a single stored value:
``MetricSet.flatten()`` of every registered study has to equal the
PR 1–4 flat dict key-for-key and value-for-value, so existing result
files and point hashes stay valid.  Each oracle below replicates the
pre-metrics dict assembly verbatim on top of the same underlying
primitives.
"""

import pytest

from repro.experiments import get_study, study_names

#: Small per-study workloads so the whole differential sweep stays fast.
PARAMS = {
    "caches": {"length": 400},
    "invert_ratio": {"length": 400},
    "victim_policy": {"length": 400},
    "regfile": {"length": 400},
    "vmin_power": {"length": 400},
    "multiprog": {"length": 400},
    "penelope": {"length": 400},
}


# ----------------------------------------------------------------------
# Legacy oracles (the pre-metrics registry code, assembled as dicts)
# ----------------------------------------------------------------------
def oracle_caches(bound):
    from repro.core.cache_like import run_cache_study
    from repro.experiments.registry import (
        _cache_config,
        _scheme_factory,
        _suite_index,
        cached_address_stream,
    )

    created = []
    stream = cached_address_stream(
        bound["suite"], int(bound["length"]), int(bound["seed"])
    )
    study = run_cache_study(
        _cache_config(bound),
        _scheme_factory(bound, created),
        [stream],
        seed=int(bound["seed"]) + _suite_index(bound["suite"]),
    )
    metrics = {
        "scheme_name": study.scheme_name,
        "mean_loss": study.mean_loss,
        "inverted_ratio": study.mean_inverted_ratio,
        "baseline_miss_rate": study.baseline_miss_rate,
        "scheme_miss_rate": study.scheme_miss_rate,
    }
    if created and hasattr(created[-1], "activation_history"):
        metrics["activations"] = "".join(
            "A" if d else "-" for d in created[-1].activation_history
        )
    return metrics


def oracle_invert_ratio(bound):
    metrics = oracle_caches({**bound, "scheme": "line_fixed"})
    achieved = metrics["inverted_ratio"]
    bias = float(bound["data_bias"])
    metrics["expected_bias"] = (
        bias * (1.0 - achieved) + (1.0 - bias) * achieved
    )
    return metrics


def oracle_victim_policy(bound):
    from repro.core.cache_like import LineFixedScheme, run_cache_study
    from repro.experiments.registry import (
        AnyPositionLineFixedScheme,
        _cache_config,
        _suite_index,
        cached_address_stream,
    )
    from repro.uarch.cache import Cache

    config = _cache_config(bound)
    stream = cached_address_stream(
        bound["suite"], int(bound["length"]), int(bound["seed"])
    )
    seed = int(bound["seed"]) + _suite_index(bound["suite"])
    ratio = float(bound["ratio"])
    lru = run_cache_study(config, lambda: LineFixedScheme(ratio),
                          [stream], seed=seed)
    naive = run_cache_study(config,
                            lambda: AnyPositionLineFixedScheme(ratio),
                            [stream], seed=seed)
    baseline = Cache(config)
    baseline.replay(stream)
    return {
        "lru_loss": lru.mean_loss,
        "naive_loss": naive.mean_loss,
        "mru_hit_fraction": baseline.stats.mru_hit_fraction(0),
        "mru1_hit_fraction": baseline.stats.mru_hit_fraction(1),
    }


def oracle_regfile(bound):
    from repro.experiments.registry import cached_rf_biases

    base_bias, isv_bias, free_fraction = cached_rf_biases(
        bound["suite"], int(bound["length"]), int(bound["seed"]),
        float(bound["sample_period"]),
    )
    return {
        "base_worst_bias": base_bias,
        "isv_worst_bias": isv_bias,
        "free_fraction": free_fraction,
    }


def oracle_vmin_power(bound):
    from repro.experiments.registry import cached_rf_biases
    from repro.nbti.power import ArrayPowerModel

    base_bias, isv_bias, __ = cached_rf_biases(
        bound["suite"], int(bound["length"]), int(bound["seed"]),
        float(bound["sample_period"]),
    )
    model = ArrayPowerModel()
    target = float(bound["target"])
    return {
        "base_bias": base_bias,
        "isv_bias": isv_bias,
        "base_vmin": model.vmin(base_bias),
        "isv_vmin": model.vmin(isv_bias),
        "base_power": model.power_at_scaled_voltage(base_bias, target),
        "isv_power": model.power_at_scaled_voltage(isv_bias, target),
        "savings": model.savings_from_balancing(base_bias, isv_bias,
                                                target),
    }


def oracle_multiprog(bound):
    from repro.core.cache_like import (
        DL0_ACCESSES_PER_UOP,
        DL0_EFFECTIVE_PENALTY,
        ProtectedCache,
        performance_loss,
    )
    from repro.experiments.registry import _cache_config, _scheme_factory
    from repro.uarch.cache import Cache
    from repro.workloads.multiprog import multiprog_address_stream

    raw_suites = bound["suites"]
    suites = ((raw_suites,) if isinstance(raw_suites, str)
              else tuple(raw_suites))
    policy = str(bound["policy"])
    if policy == "none":
        policy = "round_robin"
    stream_kwargs = dict(
        length=int(bound["length"]),
        seed=int(bound["seed"]),
        policy=policy,
        slice_length=int(bound["slice_length"]),
    )
    config = _cache_config(bound)

    baseline = Cache(config)
    baseline.replay(multiprog_address_stream(suites, **stream_kwargs))
    base_rate = baseline.stats.miss_rate

    created = []
    factory = _scheme_factory(bound, created)
    protected = ProtectedCache(Cache(config), factory(),
                               seed=int(bound["seed"]))
    protected.replay(multiprog_address_stream(suites, **stream_kwargs))
    scheme_rate = protected.stats.miss_rate

    metrics = {
        "scheme_name": created[-1].name,
        "n_programs": len(suites),
        "baseline_miss_rate": base_rate,
        "scheme_miss_rate": scheme_rate,
        "mean_loss": performance_loss(base_rate, scheme_rate,
                                      DL0_ACCESSES_PER_UOP,
                                      DL0_EFFECTIVE_PENALTY),
        "inverted_ratio": protected.cache.inverted_count() / config.lines,
    }
    if hasattr(created[-1], "activation_history"):
        metrics["activations"] = "".join(
            "A" if d else "-" for d in created[-1].activation_history
        )
    return metrics


def oracle_penelope(bound):
    from repro.core import PenelopeProcessor
    from repro.experiments.registry import cached_trace

    trace = cached_trace(
        bound["suite"], int(bound["length"]), int(bound["seed"])
    )
    processor = PenelopeProcessor(
        invert_ratio=float(bound["invert_ratio"]),
        sample_period=float(bound["sample_period"]),
        seed=int(bound["seed"]),
    )
    report = processor.evaluate([trace])
    return {
        "efficiency": report.efficiency,
        "baseline_efficiency": report.baseline_efficiency,
        "combined_cpi": report.combined_cpi,
        "adder_guardband": report.adder_guardband,
        "int_rf_base_bias": report.int_rf_bias[0],
        "int_rf_isv_bias": report.int_rf_bias[1],
    }


ORACLES = {
    "caches": oracle_caches,
    "invert_ratio": oracle_invert_ratio,
    "victim_policy": oracle_victim_policy,
    "regfile": oracle_regfile,
    "vmin_power": oracle_vmin_power,
    "multiprog": oracle_multiprog,
    "penelope": oracle_penelope,
}


def test_every_registered_study_has_an_oracle():
    """A new study must be added to this differential suite."""
    assert set(ORACLES) == set(study_names())


@pytest.mark.parametrize("study_name", sorted(ORACLES))
def test_flatten_is_bit_identical_to_legacy_dict(study_name):
    study = get_study(study_name)
    params = PARAMS[study_name]
    flat = study.execute_metrics(params).flatten()
    legacy = ORACLES[study_name](study.bind(params))
    # key-for-key (including insertion order) and value-for-value
    assert list(flat) == list(legacy)
    for key in legacy:
        assert flat[key] == legacy[key], key
    # execute() (the store-row path) is the very same flat view
    assert study.execute(params) == legacy
