"""Tests for the resumable sweep fabric.

Covers the three tentpole layers (sharded indexed store, lease board,
journal/checkpoint-resume) plus the differential acceptance criteria:
a killed-and-resumed fabric sweep must be bit-identical to an
uninterrupted serial run, re-executing only the genuinely missing
points.
"""

import json
import os
import time
from contextlib import contextmanager

import pytest

from repro.experiments import ResultStore, SweepRunner, SweepSpec
from repro.experiments.registry import _STUDIES, register_study
from repro.experiments.spec import ExperimentPoint
from repro.experiments.store import StoredResult
from repro.fabric import (
    FabricIncompleteError,
    FabricRunner,
    LeaseBoard,
    ShardedResultStore,
    SweepJournal,
    load_journal,
    open_result_store,
)
from repro.fabric.journal import list_runs, plan_batches
from repro.fabric.runner import FAULT_ENV
from repro.obs.provenance import load_manifest, manifest_path_for, spec_hash

TINY_BASE = {"length": 600, "seed": 3}
TINY_GRID = {"ratio": [0.4, 0.6], "suite": ["office", "kernels"]}


def tiny_spec():
    return SweepSpec("caches", base=dict(TINY_BASE),
                     grid={k: list(v) for k, v in TINY_GRID.items()})


def make_record(ratio, metrics=None, study="caches", created=None):
    point = ExperimentPoint.from_dict(study, {"ratio": ratio})
    return StoredResult(
        key=point.key, study=study, params=point.as_dict(),
        metrics=dict(metrics or {"mean_loss": ratio}),
        elapsed=0.1, created=created if created is not None else ratio,
    )


def event_kinds(directory):
    path = os.path.join(directory, "events.jsonl")
    with open(path) as handle:
        return [json.loads(line)["event"] for line in handle]


def events_of(directory, kind):
    path = os.path.join(directory, "events.jsonl")
    with open(path) as handle:
        return [json.loads(line) for line in handle
                if json.loads(line)["event"] == kind]


# ----------------------------------------------------------------------
# Sharded indexed store
# ----------------------------------------------------------------------
class TestShardedStore:
    def test_round_trip_and_reopen(self, tmp_path):
        store = ShardedResultStore(str(tmp_path), shards=4)
        records = [make_record(r / 10) for r in range(8)]
        for record in records:
            store.put_record(record)
        assert len(store) == 8
        for record in records:
            got = store.get(record.key)
            assert got.metrics == record.metrics
            assert got.params == record.params
        store.close()

        # Reopen: the index remembers its watermarks, nothing re-parsed.
        reopened = ShardedResultStore(str(tmp_path))
        assert reopened.shards == 4  # shard count comes from meta
        assert len(reopened) == 8
        assert sorted(r.key for r in reopened) == sorted(
            r.key for r in records)
        reopened.close()

    def test_last_record_wins(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        store.put_record(make_record(0.5, {"mean_loss": 0.1}))
        store.put_record(make_record(0.5, {"mean_loss": 0.2}))
        assert len(store) == 1
        key = make_record(0.5).key
        assert store.get(key).metrics == {"mean_loss": 0.2}
        store.close()

    def test_records_filter_by_study(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        store.put_record(make_record(0.1, study="caches"))
        store.put_record(make_record(0.2, study="regfile"))
        assert [r.study for r in store.records("caches")] == ["caches"]
        assert len(store.records()) == 2
        store.close()

    def test_put_interface_matches_flat_store(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        point = ExperimentPoint.from_dict("caches", {"ratio": 0.5})
        store.put(point, {"mean_loss": 0.01}, elapsed=0.5)
        assert point.key in store
        assert store.get_point(point).elapsed == 0.5
        store.close()

    def test_worker_appends_fold_in_on_refresh(self, tmp_path):
        parent = ShardedResultStore(str(tmp_path))
        worker = ShardedResultStore(str(tmp_path), index_writes=False,
                                    refresh_on_open=False)
        worker.put_record(make_record(0.3))
        worker.close()
        assert len(parent) == 0  # not yet indexed
        parent.refresh()
        assert len(parent) == 1
        parent.close()

    def test_torn_shard_line_waits_for_completion(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        record = make_record(0.7)
        store.put_record(record)
        # Crash mid-append: half a record, no newline, on some shard.
        torn = make_record(0.9)
        line = (torn.to_json() + "\n").encode()
        shard_path = store.shard_path(store.shard_of(torn.key))
        fd = os.open(shard_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
        os.write(fd, line[: len(line) // 2])
        os.close(fd)
        store.refresh()
        assert len(store) == 1  # torn tail not consumed, not an error
        assert store.skipped_lines == 0
        # The writer completes the line: the next refresh picks it up.
        fd = os.open(shard_path, os.O_WRONLY | os.O_APPEND)
        os.write(fd, line[len(line) // 2:])
        os.close(fd)
        store.refresh()
        assert len(store) == 2
        assert store.get(torn.key).metrics == torn.metrics
        store.close()

    def test_complete_garbage_line_counted_and_skipped(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        fd = os.open(store.shard_path(0),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND)
        os.write(fd, b"not json\n")
        os.close(fd)
        store.refresh()
        assert len(store) == 0
        assert store.skipped_lines == 1
        store.close()

    def test_compact_drops_dead_and_garbage_lines(self, tmp_path):
        store = ShardedResultStore(str(tmp_path), shards=2)
        store.put_record(make_record(0.5, {"mean_loss": 0.1}))
        store.put_record(make_record(0.5, {"mean_loss": 0.2}))
        store.put_record(make_record(0.6))
        stats = store.compact()
        assert stats.records == 2
        assert stats.dropped_lines == 1
        assert stats.reclaimed > 0
        assert store.get(make_record(0.5).key).metrics == {
            "mean_loss": 0.2}
        # Shard files now hold exactly the live records.
        total_lines = 0
        for shard in range(store.shards):
            try:
                with open(store.shard_path(shard), "rb") as handle:
                    total_lines += handle.read().count(b"\n")
            except OSError:
                pass
        assert total_lines == 2
        store.close()

    def test_index_is_rebuildable_cache(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        record = make_record(0.4)
        store.put_record(record)
        store.close()
        os.remove(str(tmp_path / "index.sqlite"))
        reopened = ShardedResultStore(str(tmp_path))
        assert reopened.get(record.key).metrics == record.metrics
        reopened.close()

    def test_flat_store_migrates_transparently(self, tmp_path):
        flat = ResultStore(str(tmp_path / "store.jsonl"))
        point = ExperimentPoint.from_dict("caches", {"ratio": 0.5})
        flat.put(point, {"mean_loss": 0.01})

        sharded = ShardedResultStore(str(tmp_path))
        assert len(sharded) == 1
        assert sharded.get(point.key).metrics == {"mean_loss": 0.01}
        sharded.close()

        # Appends made to the flat file *after* migration are imported
        # incrementally on the next open.
        other = ExperimentPoint.from_dict("caches", {"ratio": 0.7})
        flat.put(other, {"mean_loss": 0.02})
        reopened = ShardedResultStore(str(tmp_path))
        assert len(reopened) == 2
        assert reopened.get(other.key).metrics == {"mean_loss": 0.02}
        # ... and re-opening again imports nothing new.
        reopened.close()
        assert len(ShardedResultStore(str(tmp_path))) == 2

    def test_open_result_store_dispatch(self, tmp_path):
        flat_path = str(tmp_path / "flat.jsonl")
        ResultStore(flat_path)
        assert isinstance(open_result_store(flat_path), ResultStore)
        assert isinstance(open_result_store(str(tmp_path)),
                          ShardedResultStore)
        fresh = str(tmp_path / "newdir")
        assert isinstance(open_result_store(fresh), ShardedResultStore)

    def test_rejects_foreign_schema(self, tmp_path):
        (tmp_path / "fabric.json").write_text('{"schema": "nope/9"}')
        with pytest.raises(ValueError, match="unsupported store schema"):
            ShardedResultStore(str(tmp_path))


# ----------------------------------------------------------------------
# Lease board
# ----------------------------------------------------------------------
class TestLeaseBoard:
    def board(self, tmp_path):
        return LeaseBoard(str(tmp_path / "leases.sqlite"))

    def test_acquire_pending_then_none_while_live(self, tmp_path):
        board = self.board(tmp_path)
        board.register("r1", ["b0000", "b0001"])
        first = board.acquire("r1", "w1", ttl=60, max_attempts=3)
        second = board.acquire("r1", "w1", ttl=60, max_attempts=3)
        assert first.batch_id == "b0000" and not first.stolen
        assert first.attempts == 1
        assert second.batch_id == "b0001"
        # Both leased and within TTL: nothing claimable, work remains.
        assert board.acquire("r1", "w2", ttl=60, max_attempts=3) is None
        assert board.remaining("r1", 3) == 2
        board.close()

    def test_complete_and_heartbeat(self, tmp_path):
        board = self.board(tmp_path)
        board.register("r1", ["b0000"])
        lease = board.acquire("r1", "w1", ttl=60, max_attempts=3)
        assert board.heartbeat("r1", lease.batch_id, "w1", ttl=60)
        assert not board.heartbeat("r1", lease.batch_id, "other", ttl=60)
        assert board.complete("r1", lease.batch_id, "w1")
        assert board.remaining("r1", 3) == 0
        assert board.done_batches("r1") == ["b0000"]
        assert board.counts("r1") == {"done": 1}
        board.close()

    def test_expired_lease_is_stolen(self, tmp_path):
        board = self.board(tmp_path)
        board.register("r1", ["b0000"])
        t0 = 1000.0
        board.acquire("r1", "w1", ttl=10, max_attempts=3, now=t0)
        # Within TTL: not claimable.
        assert board.acquire("r1", "w2", ttl=10, max_attempts=3,
                             now=t0 + 5) is None
        stolen = board.acquire("r1", "w2", ttl=10, max_attempts=3,
                               now=t0 + 11)
        assert stolen is not None and stolen.stolen
        assert stolen.prev_owner == "w1"
        assert stolen.attempts == 2
        # The dead owner's late heartbeat must not revive its claim.
        assert not board.heartbeat("r1", "b0000", "w1", ttl=10,
                                   now=t0 + 12)
        board.close()

    def test_failed_batch_retries_until_exhausted(self, tmp_path):
        board = self.board(tmp_path)
        board.register("r1", ["b0000"])
        for attempt in (1, 2):
            lease = board.acquire("r1", "w1", ttl=60, max_attempts=2)
            assert lease.attempts == attempt
            assert lease.stolen == (attempt > 1)
            board.fail("r1", "b0000", "w1", f"boom {attempt}")
        assert board.acquire("r1", "w1", ttl=60, max_attempts=2) is None
        assert board.remaining("r1", 2) == 0  # cannot make progress
        exhausted = board.exhausted("r1", 2)
        assert [e["batch"] for e in exhausted] == ["b0000"]
        assert "boom 2" in exhausted[0]["error"]
        board.close()

    def test_register_is_idempotent_for_resume(self, tmp_path):
        board = self.board(tmp_path)
        board.register("r1", ["b0000", "b0001"])
        lease = board.acquire("r1", "w1", ttl=60, max_attempts=3)
        board.complete("r1", lease.batch_id, "w1")
        board.register("r1", ["b0000", "b0001"])  # resume re-registers
        assert board.done_batches("r1") == ["b0000"]  # state kept
        board.close()


# ----------------------------------------------------------------------
# Journal / batch planning
# ----------------------------------------------------------------------
class TestJournal:
    def test_plan_batches_sorts_by_key(self):
        pending = [(p.key, p.as_dict()) for p in tiny_spec().expand()]
        batches = plan_batches(pending, batch_size=3)
        assert [b.batch_id for b in batches] == ["b0000", "b0001"]
        assert [len(b) for b in batches] == [3, 1]
        keys = [k for b in batches for k in b.keys]
        assert keys == sorted(keys)  # hash-range partition
        # Replanning a shuffled pending set yields identical batches.
        again = plan_batches(list(reversed(pending)), batch_size=3)
        assert [b.keys for b in again] == [b.keys for b in batches]

    def test_round_trip_and_verify(self, tmp_path):
        spec = tiny_spec()
        payload = spec.payload()
        pending = [(p.key, p.as_dict()) for p in spec.expand()]
        journal = SweepJournal(
            run_id="runX", study=spec.study, spec_payload=payload,
            spec_hash=spec_hash(payload), store_dir=str(tmp_path),
            batches=plan_batches(pending, 2), cached=0, workers=2,
            batch_size=2, created=123.0,
        )
        journal.save()
        loaded = load_journal(str(tmp_path), "runX")
        assert loaded.run_id == "runX"
        assert loaded.pending_points == 4
        assert loaded.spec().payload() == payload
        assert loaded.batch("b0001").keys == journal.batches[1].keys
        with pytest.raises(KeyError):
            loaded.batch("b9999")

    def test_tampered_journal_rejected(self, tmp_path):
        spec = tiny_spec()
        payload = spec.payload()
        journal = SweepJournal(
            run_id="runX", study=spec.study, spec_payload=payload,
            spec_hash="0" * 20, store_dir=str(tmp_path), batches=[],
        )
        journal.save()
        with pytest.raises(ValueError, match="inconsistent"):
            load_journal(str(tmp_path), "runX")

    def test_unknown_run_lists_known_runs(self, tmp_path):
        spec = tiny_spec()
        payload = spec.payload()
        SweepJournal(
            run_id="known", study=spec.study, spec_payload=payload,
            spec_hash=spec_hash(payload), store_dir=str(tmp_path),
            batches=[],
        ).save()
        with pytest.raises(FileNotFoundError, match="known"):
            load_journal(str(tmp_path), "absent")
        assert list_runs(str(tmp_path)) == ["known"]


# ----------------------------------------------------------------------
# Fabric runner: differential against the in-process SweepRunner
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_oracle():
    """Uninterrupted serial reference run (no store)."""
    return SweepRunner(store=None, workers=1).run(tiny_spec())


def assert_bit_identical(outcome, oracle):
    assert [r.point.key for r in outcome] == [
        r.point.key for r in oracle]
    assert outcome.metrics_by_key() == oracle.metrics_by_key()


class TestFabricRunner:
    def test_serial_in_process_matches_sweep_runner(self, tmp_path,
                                                    serial_oracle):
        runner = FabricRunner(str(tmp_path), workers=1)
        outcome = runner.run(tiny_spec())
        runner.close()
        assert outcome.executed == 4 and outcome.cache_hits == 0
        assert_bit_identical(outcome, serial_oracle)

        # Rerun over the same store: every point a cache hit, values
        # unchanged.
        rerun = FabricRunner(str(tmp_path), workers=1)
        again = rerun.run(tiny_spec())
        rerun.close()
        assert again.cache_hits == 4 and again.executed == 0
        assert_bit_identical(again, serial_oracle)

    def test_spawned_workers_match_sweep_runner(self, tmp_path,
                                                serial_oracle):
        runner = FabricRunner(str(tmp_path), workers=2, batch_size=1,
                              spawn_workers=True)
        outcome = runner.run(tiny_spec())
        runner.close()
        assert outcome.executed == 4
        assert_bit_identical(outcome, serial_oracle)
        kinds = event_kinds(str(tmp_path))
        assert "run_start" in kinds and "run_end" in kinds
        assert kinds.count("batch_done") == 4

    def test_duplicate_grid_values_fan_out(self, tmp_path):
        spec = SweepSpec("caches", base=dict(TINY_BASE),
                         grid={"ratio": [0.5, 0.5], "suite": ["office"]})
        runner = FabricRunner(str(tmp_path), workers=1)
        outcome = runner.run(spec)
        runner.close()
        assert len(outcome) == 2
        assert outcome.executed == 1 and outcome.cache_hits == 1
        assert outcome.results[0].metrics == outcome.results[1].metrics
        assert len(ShardedResultStore(str(tmp_path))) == 1

    def test_manifest_records_fabric_plan(self, tmp_path):
        runner = FabricRunner(str(tmp_path), workers=1, batch_size=2)
        outcome = runner.run(tiny_spec())
        runner.close()
        manifest = load_manifest(outcome.manifest_path)
        fabric = manifest["fabric"]
        assert fabric["batches"] == 2 and fabric["batch_size"] == 2
        assert fabric["counts"] == {"done": 2}
        assert fabric["resumed"] is False
        assert "resumed_from" not in manifest
        assert os.path.exists(fabric["journal"])
        assert manifest["totals"]["points"] == 4

    def test_resume_rejects_mismatched_spec(self, tmp_path):
        runner = FabricRunner(str(tmp_path), workers=1)
        runner.run(tiny_spec())
        run_id = runner.run_id
        runner.close()
        other = SweepSpec("caches", base=dict(TINY_BASE),
                          grid={"ratio": [0.9]})
        resumer = FabricRunner(str(tmp_path), workers=1)
        with pytest.raises(ValueError, match="spec hash mismatch"):
            resumer.resume(run_id, spec=other)
        resumer.close()

    def test_kill_and_resume_is_bit_identical(self, tmp_path,
                                              monkeypatch,
                                              serial_oracle):
        """The crash/resume acceptance test: hard-kill (SIGKILL) a
        worker mid-batch, resume, and require the final store to be
        bit-identical to an uninterrupted serial run with only the
        missing points re-executed."""
        directory = str(tmp_path)
        monkeypatch.setenv(FAULT_ENV, "kill-worker")
        runner = FabricRunner(directory, workers=1, batch_size=2,
                              lease_ttl=0.5, spawn_workers=True)
        with pytest.raises(FabricIncompleteError) as excinfo:
            runner.run(tiny_spec())
        run_id = runner.run_id
        runner.close()
        assert excinfo.value.run_id == run_id
        assert f"--resume {run_id}" in str(excinfo.value)
        assert os.path.exists(os.path.join(directory, ".fault-fired"))

        # The dead worker stored at least its first point; not all.
        survivors = ShardedResultStore(directory)
        stored_before = len(survivors)
        survivors.close()
        assert 1 <= stored_before < 4

        monkeypatch.delenv(FAULT_ENV)
        time.sleep(0.6)  # let the dead worker's lease expire
        resumer = FabricRunner(directory, workers=2, lease_ttl=0.5,
                               spawn_workers=True)
        outcome = resumer.resume(run_id)
        resumer.close()

        assert_bit_identical(outcome, serial_oracle)
        assert outcome.run_id == run_id
        assert outcome.cache_hits == stored_before
        assert outcome.executed == 4 - stored_before

        kinds = event_kinds(directory)
        assert "worker_lost" in kinds
        assert "lease_stolen" in kinds
        assert "run_resumed" in kinds
        retried = events_of(directory, "point_retry")
        assert any(e["payload"]["reason"] == "lease re-run"
                   for e in retried)

        manifest = load_manifest(manifest_path_for(
            os.path.join(directory, "fabric.json")))
        assert manifest["resumed_from"] == run_id
        assert manifest["fabric"]["resumed"] is True

    def test_surviving_worker_steals_killed_workers_batch(
            self, tmp_path, monkeypatch, serial_oracle):
        directory = str(tmp_path)
        monkeypatch.setenv(FAULT_ENV, "kill-worker")
        runner = FabricRunner(directory, workers=2, batch_size=1,
                              lease_ttl=0.5, spawn_workers=True)
        outcome = runner.run(tiny_spec())
        runner.close()
        # One worker died, but the run still completed in one go.
        assert_bit_identical(outcome, serial_oracle)
        kinds = event_kinds(directory)
        assert "worker_lost" in kinds
        assert "run_end" in kinds


# ----------------------------------------------------------------------
# Per-point timeout and bounded retry
# ----------------------------------------------------------------------
def _sleepy_study(params):
    time.sleep(float(params["duration"]))
    return {"slept": float(params["duration"])}


@contextmanager
def temporary_study(name):
    register_study(name, "sleeps for the timeout tests",
                   defaults={"duration": 30.0})(_sleepy_study)
    try:
        yield
    finally:
        _STUDIES.pop(name, None)


class TestPointTimeout:
    def test_timeout_retries_then_exhausts_batch(self, tmp_path):
        with temporary_study("fabric_sleepy"):
            spec = SweepSpec("fabric_sleepy",
                             grid={"duration": [30.0]})
            runner = FabricRunner(
                str(tmp_path), workers=1, point_timeout=0.05,
                point_retries=1, max_batch_attempts=1,
                spawn_workers=False,
            )
            with pytest.raises(FabricIncompleteError) as excinfo:
                runner.run(spec)
            runner.close()
        assert excinfo.value.failed  # batch reported exhausted
        retried = events_of(str(tmp_path), "point_retry")
        assert any(e["payload"]["reason"] == "timeout" for e in retried)
        errors = events_of(str(tmp_path), "point_error")
        assert errors and errors[0]["payload"]["reason"] == "timeout"
        failed = events_of(str(tmp_path), "batch_failed")
        assert failed and "timed out" in failed[0]["payload"]["error"]

    def test_fast_points_unaffected_by_timeout(self, tmp_path):
        with temporary_study("fabric_sleepy"):
            spec = SweepSpec("fabric_sleepy",
                             grid={"duration": [0.0, 0.001]})
            runner = FabricRunner(str(tmp_path), workers=1,
                                  point_timeout=10.0,
                                  spawn_workers=False)
            outcome = runner.run(spec)
            runner.close()
        assert outcome.executed == 2
        assert [r.metrics["slept"] for r in outcome] == [0.0, 0.001]


# ----------------------------------------------------------------------
# Read-only index concurrency (second-process readers during a run)
# ----------------------------------------------------------------------
class TestReadOnlyIndex:
    def test_reader_survives_exclusively_locked_index(self, tmp_path):
        import sqlite3

        owner = ShardedResultStore(str(tmp_path))
        record = make_record(0.4)
        owner.put_record(record)

        # A writer holds the index hostage mid-transaction — exactly
        # what a reader refreshing during a fabric run can hit.
        lock = sqlite3.connect(str(tmp_path / "index.sqlite"))
        lock.execute("BEGIN EXCLUSIVE")
        try:
            reader = ShardedResultStore(str(tmp_path),
                                        index_writes=False)
            # Never raises; the shard-tail overlay serves the read.
            assert reader.get(record.key).metrics == record.metrics
            assert record.key in reader
            assert len(reader) >= 1
            reader.refresh()
            reader.close()
        finally:
            lock.rollback()
            lock.close()
        owner.close()

    def test_reader_tolerates_corrupt_index_file(self, tmp_path):
        owner = ShardedResultStore(str(tmp_path))
        record = make_record(0.6)
        owner.put_record(record)
        owner.close()

        index_path = tmp_path / "index.sqlite"
        index_path.write_bytes(b"this is not a sqlite database")
        before = index_path.read_bytes()

        reader = ShardedResultStore(str(tmp_path), index_writes=False)
        assert reader.get(record.key).metrics == record.metrics
        assert [r.key for r in reader.records()] == [record.key]
        reader.reindex()  # read-only reindex = overlay rebuild
        assert reader.get(record.key).metrics == record.metrics
        reader.close()
        # A read-only handle must never repair-by-delete someone
        # else's index file.
        assert index_path.read_bytes() == before

    def test_read_only_handle_rejects_index_writes(self, tmp_path):
        ShardedResultStore(str(tmp_path)).close()
        from repro.fabric.index import StoreIndex

        index = StoreIndex(str(tmp_path / "index.sqlite"),
                           read_only=True)
        with pytest.raises(RuntimeError):
            index.upsert([], watermarks={0: 10})
        with pytest.raises(RuntimeError):
            index.reset()
        index.close()

    def test_reader_refresh_races_live_writer(self, tmp_path):
        import threading

        writer = ShardedResultStore(str(tmp_path))
        reader = ShardedResultStore(str(tmp_path), index_writes=False)
        failures = []
        done = threading.Event()

        def read_loop():
            try:
                while not done.is_set():
                    reader.refresh()
                    reader.records()
                    len(reader)
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        thread = threading.Thread(target=read_loop)
        thread.start()
        try:
            for i in range(50):
                writer.put_record(make_record(i / 100.0,
                                              created=float(i)))
        finally:
            done.set()
            thread.join(timeout=30)
        assert not failures
        reader.refresh()
        assert len(reader.records()) == 50
        reader.close()
        writer.close()


class TestRequestStop:
    def test_request_stop_journals_then_resume_is_bit_identical(
            self, tmp_path, serial_oracle):
        import threading

        with temporary_study("fabric_stoppable"):
            spec = SweepSpec("fabric_stoppable",
                             grid={"duration": [0.2, 0.2001,
                                                0.2002, 0.2003]})
            oracle = SweepRunner(store=None, workers=1).run(spec)

            store = ShardedResultStore(str(tmp_path))
            runner = FabricRunner(store, workers=1, batch_size=1)
            run_id = runner.run_id
            stopper = threading.Timer(0.3, runner.request_stop)
            stopper.start()
            try:
                with pytest.raises(FabricIncompleteError):
                    runner.run(spec)
            finally:
                stopper.cancel()
            runner.close()
            assert 0 < len(store) < 4

            resumed = FabricRunner(store, workers=1).resume(run_id)
            assert {r.point.key: r.metrics for r in resumed.results} \
                == {r.point.key: r.metrics for r in oracle.results}
            store.close()
