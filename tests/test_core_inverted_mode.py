"""Tests for the conventional periodic-inversion alternative."""

import pytest

from repro.core.inverted_mode import (
    PeriodicInversionScheme,
    inverted_mode_block_cost,
)
from repro.core.cache_like import ProtectedCache
from repro.uarch.cache import Cache, CacheConfig

CONFIG = CacheConfig(name="L2ish", size_bytes=8 * 1024, ways=4)


class TestPeriodicInversionScheme:
    def test_mode_flips_at_period(self):
        scheme = PeriodicInversionScheme(period=100)
        protected = ProtectedCache(Cache(CONFIG), scheme)
        for i in range(250):
            protected.access(i % 16 * 64)
        assert scheme.flips == 2
        assert scheme.inverted_mode is False  # two flips: back to normal

    def test_mode_balance_converges_to_half(self):
        scheme = PeriodicInversionScheme(period=50)
        protected = ProtectedCache(Cache(CONFIG), scheme)
        for i in range(1000):
            protected.access(i % 16 * 64)
        assert scheme.mode_balance == pytest.approx(0.5, abs=0.05)

    def test_flush_costs_misses(self):
        hot = [i % 32 * 64 for i in range(600)]
        flush = PeriodicInversionScheme(period=100, flush_on_flip=True)
        p_flush = ProtectedCache(Cache(CONFIG), flush)
        noflush = PeriodicInversionScheme(period=100, flush_on_flip=False)
        p_noflush = ProtectedCache(Cache(CONFIG), noflush)
        for address in hot:
            p_flush.access(address)
            p_noflush.access(address)
        assert p_flush.stats.misses > p_noflush.stats.misses

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicInversionScheme(period=0)


class TestInvertedModeBlockCost:
    def test_paper_number(self):
        cost = inverted_mode_block_cost()
        assert cost.efficiency == pytest.approx(1.41, abs=0.005)

    def test_cpi_factor_compounds(self):
        slower = inverted_mode_block_cost(cpi_factor=1.05)
        assert slower.efficiency > inverted_mode_block_cost().efficiency

    def test_validation(self):
        with pytest.raises(ValueError):
            inverted_mode_block_cost(cpi_factor=0.9)
