"""Sweep execution: cache lookup, then serial or multiprocessing fan-out.

The runner expands a :class:`~repro.experiments.spec.SweepSpec`, checks
each point against the :class:`~repro.experiments.store.ResultStore`,
dedupes points with identical content hashes, and executes only the
distinct misses — serially for ``workers=1``, over a
``multiprocessing`` pool otherwise.  Results come back in spec order
regardless of completion order, so parallel and serial sweeps produce
identical output (a property the test suite asserts).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.registry import get_study
from repro.experiments.spec import ExperimentPoint, SweepSpec
from repro.experiments.store import ResultStore
from repro.metrics import MetricSet


def execute_point(
    point: ExperimentPoint,
) -> Tuple[str, MetricSet, float]:
    """Run one point; module-level so worker pools can pickle it.

    Returns the study's typed :class:`MetricSet` (study sets are
    value-backed, so they pickle back from pool workers); callers
    needing the legacy flat dict take ``metric_set.flatten()``.
    """
    started = time.perf_counter()
    metric_set = get_study(point.study).execute_metrics(point.as_dict())
    return point.key, metric_set, time.perf_counter() - started


def _execute_indexed(
    task: Tuple[int, ExperimentPoint],
) -> Tuple[int, MetricSet, float]:
    """Pool task keyed by slot index, so duplicate points (identical
    content hash) still fill distinct result slots."""
    index, point = task
    __, metric_set, elapsed = execute_point(point)
    return index, metric_set, elapsed


@dataclass
class PointResult:
    """Outcome of one design point within a sweep."""

    point: ExperimentPoint
    metrics: Dict[str, Any]
    cached: bool
    elapsed: float
    #: The typed stat tree of a freshly executed point; ``None`` for
    #: store cache hits (the JSONL rows only keep the flat view).
    metric_set: Optional[MetricSet] = None

    @property
    def params(self) -> Dict[str, Any]:
        return self.point.as_dict()

    @property
    def metric_tree(self) -> MetricSet:
        """The typed tree view of this point's metrics.

        Fresh executions return the study's own set (Ratio/Derived
        stats intact); cached results are lifted from the flat row with
        value-derived kinds, so both views always exist.
        """
        if self.metric_set is not None:
            return self.metric_set
        return MetricSet.from_flat(self.metrics)

    def value(self, name: str, default: Any = None) -> Any:
        return self.metrics.get(name, default)


@dataclass
class SweepResult:
    """All point results of one sweep, in spec expansion order."""

    spec: SweepSpec
    results: List[PointResult] = field(default_factory=list)
    wall_time: float = 0.0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def executed(self) -> int:
        return len(self.results) - self.cache_hits

    def metrics_by_key(self) -> Dict[str, Dict[str, Any]]:
        return {r.point.key: r.metrics for r in self.results}


class SweepRunner:
    """Fans a sweep out over workers, short-circuiting cached points.

    Parameters
    ----------
    store:
        Result cache; ``None`` disables caching entirely (every point
        executes — what benchmarks want so timings stay honest).
    workers:
        Process count.  ``1`` runs in-process; higher counts use a
        ``multiprocessing`` pool and fall back to serial execution when
        the platform cannot start one.
    progress:
        Optional callback invoked with each finished
        :class:`PointResult` (CLI progress lines).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        progress: Optional[Callable[[PointResult], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = workers
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        started = time.perf_counter()
        # Bind the study's defaults into every point before hashing:
        # the cache key must cover the *full* parameterisation of the
        # computation, or a later change to a registry default would
        # silently serve stale results.  Binding also unifies the keys
        # of explicit and defaulted spellings of the same point.
        study = get_study(spec.study)
        # Every study parametrizes exclusively through its defaults, so
        # a key outside them is a typo that would otherwise produce a
        # grid of byte-identical points presented as a real sweep.
        unknown = (set(spec.base) | set(spec.grid)) - set(study.defaults)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) for study {spec.study!r}: "
                f"{', '.join(sorted(unknown))}; known: "
                f"{', '.join(sorted(study.defaults))}"
            )
        points = [
            ExperimentPoint.from_dict(spec.study,
                                      study.bind(p.as_dict()))
            for p in spec.iter_points()
        ]
        slots: List[Optional[PointResult]] = [None] * len(points)
        pending: List[Tuple[int, ExperimentPoint]] = []

        for index, point in enumerate(points):
            record = self.store.get_point(point) if self.store else None
            if record is not None:
                slots[index] = PointResult(
                    point=point, metrics=dict(record.metrics),
                    cached=True, elapsed=record.elapsed,
                )
                self._report(slots[index])
            else:
                pending.append((index, point))

        if pending:
            # Duplicate grid points (identical content hash at different
            # slots — repeated grid values, collapsed axes) used to
            # execute once per slot and double-write the store.  Execute
            # each distinct key once and fan the result back out; the
            # extra slots report cached=True since they cost nothing.
            first_slot: Dict[str, int] = {}
            duplicates: Dict[int, List[int]] = {}
            unique: List[Tuple[int, ExperimentPoint]] = []
            for index, point in pending:
                key = point.key
                if key in first_slot:
                    duplicates.setdefault(first_slot[key], []).append(index)
                else:
                    first_slot[key] = index
                    unique.append((index, point))
            for index, result in self._execute(unique):
                slots[index] = result
                if self.store is not None:
                    self.store.put(result.point, result.metrics,
                                   result.elapsed)
                self._report(result)
                for dup_index in duplicates.get(index, ()):
                    duplicate = PointResult(
                        point=points[dup_index],
                        metrics=dict(result.metrics),
                        cached=True,
                        elapsed=result.elapsed,
                        metric_set=result.metric_set,
                    )
                    slots[dup_index] = duplicate
                    self._report(duplicate)

        assert all(slot is not None for slot in slots)
        return SweepResult(
            spec=spec,
            results=[slot for slot in slots if slot is not None],
            wall_time=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def _report(self, result: PointResult) -> None:
        if self.progress is not None:
            self.progress(result)

    def _execute(self, pending):
        pool = None
        if self.workers > 1 and len(pending) > 1:
            # Only pool *creation* is allowed to fall back to serial
            # (sandboxes/platforms without process support).  A failure
            # mid-iteration must propagate: falling back then would
            # re-execute points the pool already yielded, duplicating
            # store writes and progress reports.
            try:
                pool = multiprocessing.Pool(
                    processes=min(self.workers, len(pending))
                )
            except (OSError, ImportError, PermissionError):
                pool = None
        if pool is None:
            yield from self._execute_serial(pending)
            return
        with pool:
            yield from self._execute_pool(pool, pending)

    def _execute_serial(self, pending):
        for index, point in pending:
            key, metric_set, elapsed = execute_point(point)
            assert key == point.key
            yield index, PointResult(point=point,
                                     metrics=metric_set.flatten(),
                                     cached=False, elapsed=elapsed,
                                     metric_set=metric_set)

    def _execute_pool(self, pool, pending):
        point_by_index = dict(pending)
        for index, metric_set, elapsed in pool.imap_unordered(
            _execute_indexed, list(pending)
        ):
            yield index, PointResult(
                point=point_by_index[index],
                metrics=metric_set.flatten(),
                cached=False, elapsed=elapsed, metric_set=metric_set,
            )


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    progress: Optional[Callable[[PointResult], None]] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(store=store, workers=workers,
                       progress=progress).run(spec)
