"""Tests for the experiment orchestration engine."""

import json
import os

import pytest

from repro.experiments import (
    ExperimentPoint,
    ResultStore,
    SweepRunner,
    SweepSpec,
    aggregate_metric,
    coerce_scalar,
    format_summary,
    get_study,
    group_results,
    metric_names,
    parse_grid_option,
    point_key,
    run_sweep,
    study_names,
    summarize,
)

#: A grid small enough to execute many times per test run.
TINY_BASE = {"length": 600, "seed": 3}
TINY_GRID = {"ratio": [0.4, 0.6], "suite": ["office", "kernels"]}


def tiny_spec():
    return SweepSpec("caches", base=dict(TINY_BASE),
                     grid={k: list(v) for k, v in TINY_GRID.items()})


class TestSpec:
    def test_expansion_is_cartesian_product(self):
        spec = tiny_spec()
        points = spec.expand()
        assert len(points) == spec.size == 4
        combos = {(p.as_dict()["ratio"], p.as_dict()["suite"])
                  for p in points}
        assert combos == {(0.4, "office"), (0.4, "kernels"),
                          (0.6, "office"), (0.6, "kernels")}
        for point in points:
            assert point.as_dict()["length"] == 600

    def test_expansion_is_deterministic(self):
        first = [p.key for p in tiny_spec().expand()]
        second = [p.key for p in tiny_spec().expand()]
        assert first == second

    def test_key_ignores_param_order(self):
        a = ExperimentPoint.from_dict("caches", {"x": 1, "y": 2})
        b = ExperimentPoint.from_dict("caches", {"y": 2, "x": 1})
        assert a.key == b.key
        assert point_key("caches", {"y": 2, "x": 1}) == a.key

    def test_key_distinguishes_params_and_study(self):
        a = ExperimentPoint.from_dict("caches", {"x": 1})
        b = ExperimentPoint.from_dict("caches", {"x": 2})
        c = ExperimentPoint.from_dict("regfile", {"x": 1})
        assert len({a.key, b.key, c.key}) == 3

    def test_rejects_empty_axis_and_unserialisable_param(self):
        with pytest.raises(ValueError):
            SweepSpec("caches", grid={"ratio": []})
        with pytest.raises(TypeError):
            point_key("caches", {"bad": object()})

    def test_grid_option_parsing(self):
        assert parse_grid_option("ways=4,8") == ("ways", [4, 8])
        assert parse_grid_option("ratio=0.4,0.5") == ("ratio",
                                                      [0.4, 0.5])
        key, values = parse_grid_option("scheme=line_fixed,set_fixed")
        assert values == ["line_fixed", "set_fixed"]
        assert coerce_scalar("true") is True
        assert coerce_scalar("7") == 7
        with pytest.raises(ValueError):
            parse_grid_option("no-equals")
        with pytest.raises(ValueError):
            parse_grid_option("empty=")


class TestStore:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        point = ExperimentPoint.from_dict("caches", {"ratio": 0.5})
        store.put(point, {"mean_loss": 0.01}, elapsed=0.5)
        assert point.key in store
        assert store.get_point(point).metrics == {"mean_loss": 0.01}

        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        record = reloaded.get(point.key)
        assert record.metrics == {"mean_loss": 0.01}
        assert record.params == {"ratio": 0.5}
        assert record.elapsed == 0.5

    def test_last_record_wins(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        point = ExperimentPoint.from_dict("caches", {"ratio": 0.5})
        store.put(point, {"mean_loss": 0.01})
        store.put(point, {"mean_loss": 0.02})
        assert len(store) == 1
        assert ResultStore(path).get(point.key).metrics == {
            "mean_loss": 0.02
        }

    def test_torn_final_line_warns_and_is_skipped(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        point = ExperimentPoint.from_dict("caches", {"ratio": 0.5})
        store.put(point, {"mean_loss": 0.01})
        # Simulate a crash mid-append: the final line is truncated
        # partway through the record.
        with open(path, "r+") as handle:
            full = handle.read()
            extra = store.get(point.key).to_json()
            handle.write(extra[: len(extra) // 2])
        with pytest.warns(RuntimeWarning, match="torn final line"):
            reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get(point.key).metrics == {"mean_loss": 0.01}
        assert full in open(path).read()

    def test_mid_file_corruption_raises_with_location(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        a = ExperimentPoint.from_dict("caches", {"ratio": 0.4})
        b = ExperimentPoint.from_dict("caches", {"ratio": 0.6})
        store.put(a, {"mean_loss": 0.01})
        store.put(b, {"mean_loss": 0.02})
        lines = open(path).read().splitlines()
        lines[0] = "not json"
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"store\.jsonl:1: corrupt"):
            ResultStore(path)

    @pytest.mark.parametrize("line,match", [
        ("null", "not an object"),
        ("123", "not an object"),
        ("{}", "missing field"),
        ('{"key": "k"}', "missing field.*study"),
    ])
    def test_from_json_rejects_malformed_records(self, line, match):
        from repro.experiments.store import StoredResult

        with pytest.raises(ValueError, match=match):
            StoredResult.from_json(line)

    def test_duplicates_counted_last_wins(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        point = ExperimentPoint.from_dict("caches", {"ratio": 0.5})
        store.put(point, {"mean_loss": 0.01})
        store.put(point, {"mean_loss": 0.02})
        reloaded = ResultStore(path)
        assert reloaded.duplicates == 1
        assert reloaded.get(point.key).metrics == {"mean_loss": 0.02}

    def test_concurrent_appends_never_interleave(self, tmp_path):
        """put() is one O_APPEND write per record: hammering one store
        file from many threads must yield only whole, parseable lines."""
        import threading

        path = str(tmp_path / "store.jsonl")
        n_threads, per_thread = 8, 25
        # Bulky metrics so a buffered writer would plausibly split the
        # line across flushes.
        padding = "x" * 512

        def writer(worker):
            store = ResultStore(path)
            for i in range(per_thread):
                point = ExperimentPoint.from_dict(
                    "caches", {"worker": worker, "i": i})
                store.put(point, {"value": worker * 1000 + i,
                                  "padding": padding})

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        with open(path) as handle:
            lines = handle.readlines()
        assert len(lines) == n_threads * per_thread
        for line in lines:
            record = json.loads(line)  # no interleaved partial lines
            assert record["metrics"]["padding"] == padding
        merged = ResultStore(path)
        assert len(merged) == n_threads * per_thread

    def test_clear(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.put(ExperimentPoint.from_dict("caches", {}), {"m": 1.0})
        store.clear()
        assert len(store) == 0
        assert not os.path.exists(path)


class TestRunner:
    def test_cache_hits_on_rerun(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        first = SweepRunner(store=store, workers=1).run(tiny_spec())
        assert first.executed == 4 and first.cache_hits == 0

        rerun = SweepRunner(
            store=ResultStore(str(tmp_path / "store.jsonl")), workers=1
        ).run(tiny_spec())
        assert rerun.cache_hits == 4 and rerun.executed == 0
        assert rerun.metrics_by_key() == first.metrics_by_key()

    def test_parallel_equals_serial(self):
        serial = SweepRunner(store=None, workers=1).run(tiny_spec())
        parallel = SweepRunner(store=None, workers=2).run(tiny_spec())
        assert len(serial) == len(parallel) == 4
        assert [r.point.key for r in serial] == [
            r.point.key for r in parallel
        ]
        assert serial.metrics_by_key() == parallel.metrics_by_key()

    def test_results_follow_spec_order(self):
        outcome = run_sweep(tiny_spec(), workers=2)
        assert [
            (r.params["ratio"], r.params["suite"]) for r in outcome
        ] == [
            (p.as_dict()["ratio"], p.as_dict()["suite"])
            for p in tiny_spec().expand()
        ]

    def test_study_defaults_enter_params_and_key(self, tmp_path):
        """Cache keys cover the full bound parameterisation, so the
        defaulted and explicit spellings of a point are one entry."""
        implicit = run_sweep(tiny_spec()).results
        assert all(r.params["ways"] == 8 for r in implicit)  # default

        explicit_spec = tiny_spec()
        explicit_spec.base["ways"] = 8
        store = ResultStore(str(tmp_path / "store.jsonl"))
        SweepRunner(store=store).run(tiny_spec())
        rerun = SweepRunner(store=store).run(explicit_spec)
        assert rerun.cache_hits == len(rerun) == 4

    def test_duplicate_grid_values_survive_parallel(self):
        spec = SweepSpec(
            "caches",
            base=dict(TINY_BASE),
            grid={"ratio": [0.5, 0.5], "suite": ["office"]},
        )
        outcome = SweepRunner(store=None, workers=2).run(spec)
        assert len(outcome) == 2
        metrics = [r.metrics for r in outcome]
        assert metrics[0] == metrics[1]

    def test_duplicate_points_execute_once_and_fan_out(self, tmp_path):
        """Identical content hashes at different slots are ONE
        computation: a single execution, a single store write, and the
        result fanned back to every slot."""
        spec = SweepSpec(
            "caches",
            base=dict(TINY_BASE),
            grid={"ratio": [0.5, 0.5, 0.5], "suite": ["office"]},
        )
        store = ResultStore(str(tmp_path / "store.jsonl"))
        seen = []
        outcome = SweepRunner(store=store, workers=1,
                              progress=seen.append).run(spec)
        assert len(outcome) == len(seen) == 3
        # One executed primary, two zero-cost fan-outs.
        assert outcome.executed == 1 and outcome.cache_hits == 2
        assert len({r.point.key for r in outcome}) == 1
        assert [r.metrics for r in outcome] == [outcome.results[0].metrics] * 3
        with open(store.path) as handle:
            assert len(handle.readlines()) == 1

    def test_unknown_study_raises(self):
        with pytest.raises(KeyError):
            run_sweep(SweepSpec("no_such_study"))

    def test_unknown_parameter_rejected(self):
        # A typo'd axis would otherwise sweep identical points.
        with pytest.raises(ValueError, match="ratoi"):
            run_sweep(SweepSpec("caches", grid={"ratoi": [0.4, 0.6]}))

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_sweep(tiny_spec(), progress=seen.append)
        assert len(seen) == 4

    def test_pool_breakage_emits_worker_lost(self, tmp_path):
        """A non-point exception escaping the pool (worker SIGKILLed,
        OOMed) leaves a structured worker_lost event naming the run and
        the last heartbeat, then re-raises."""
        from repro.obs.log import EventLog

        class BrokenPool:
            def imap_unordered(self, func, tasks):
                raise RuntimeError("worker died unexpectedly")
                yield  # pragma: no cover

        log_path = str(tmp_path / "events.jsonl")
        runner = SweepRunner(
            store=None, workers=2, run_id="testrun",
            log=EventLog(path=log_path, run_id="testrun"),
        )
        pending = list(enumerate(tiny_spec().expand()))
        with pytest.raises(RuntimeError, match="worker died"):
            list(runner._execute_pool(BrokenPool(), pending))
        events = [json.loads(line) for line in open(log_path)]
        lost = [e for e in events if e["event"] == "worker_lost"]
        assert len(lost) == 1
        payload = lost[0]["payload"]
        assert lost[0]["run_id"] == "testrun"
        assert "RuntimeError" in payload["error"]
        assert payload["workers"] == 2
        assert payload["last_heartbeat"] > 0


class TestRegistry:
    def test_all_studies_registered(self):
        assert {"caches", "regfile", "penelope", "invert_ratio",
                "vmin_power", "victim_policy",
                "multiprog"} <= set(study_names())

    def test_defaults_are_bound(self):
        study = get_study("caches")
        bound = study.bind({"ratio": 0.7})
        assert bound["ratio"] == 0.7
        assert bound["ways"] == 8  # default preserved

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            get_study("caches").execute(
                {"length": 200, "scheme": "bogus"}
            )


class TestSummary:
    def _results(self):
        return run_sweep(tiny_spec(), workers=1).results

    def test_group_and_aggregate(self):
        results = self._results()
        groups = group_results(results, ["ratio"])
        assert set(groups) == {(0.4,), (0.6,)}
        for members in groups.values():
            assert len(members) == 2
            mean = aggregate_metric(members, "mean_loss")
            per_point = [m.metrics["mean_loss"] for m in members]
            assert mean == pytest.approx(sum(per_point) / 2)
            assert aggregate_metric(members, "mean_loss", "min") == min(
                per_point
            )

    def test_uniform_text_metric_passes_through_groups(self):
        results = self._results()
        groups = group_results(results, ["ratio"])
        for (ratio,), members in groups.items():
            # scheme_name is a string; within one ratio group every
            # point agrees, so the value passes through instead of
            # being silently dropped.
            expected = f"LineFixed{int(round(ratio * 100))}%"
            assert aggregate_metric(members, "scheme_name") == expected

    def test_mixed_text_metric_renders_explicit_cell(self):
        from repro.experiments.summary import MIXED

        results = self._results()
        # One group spanning both ratios: scheme_name differs
        # (LineFixed40% vs LineFixed60%), so the cell must say so
        # explicitly instead of dropping the column.
        groups = group_results(results, ["suite"])
        for members in groups.values():
            assert len(members) > 1
            assert aggregate_metric(members, "scheme_name") == MIXED
        text = format_summary(results, ["suite"],
                              metrics=["scheme_name", "mean_loss"])
        assert MIXED in text

    def test_summarize_and_format(self):
        results = self._results()
        headers, rows = summarize(results, ["ratio"],
                                  metrics=["mean_loss"])
        assert headers == ["ratio", "mean_loss"]
        assert len(rows) == 2
        text = format_summary(results, ["ratio"],
                              metrics=["mean_loss"], title="t")
        assert "mean_loss" in text and text.startswith("t")

    def test_metric_names_sorted(self):
        names = metric_names(self._results())
        assert names == sorted(names)
        assert "mean_loss" in names


class TestAcceptance:
    def test_grid_sweep_caches_and_reruns_from_store(self, tmp_path):
        """The ISSUE's acceptance grid, scaled down in trace length."""
        spec = SweepSpec(
            "caches",
            base={"length": 400, "seed": 1},
            grid={
                "ratio": [0.4, 0.5, 0.6],
                "ways": [4, 8],
                "suite": ["office", "kernels", "specint2000",
                          "encoder"],
            },
        )
        assert spec.size == 24
        store = ResultStore(str(tmp_path / "store.jsonl"))
        first = SweepRunner(store=store, workers=4).run(spec)
        assert len(first) == 24 and first.executed == 24

        rerun = SweepRunner(store=store, workers=4).run(spec)
        assert rerun.cache_hits == 24 and rerun.executed == 0
        assert rerun.metrics_by_key() == first.metrics_by_key()

        serial = SweepRunner(store=None, workers=1).run(spec)
        assert serial.metrics_by_key() == first.metrics_by_key()
