"""Trace serialization.

Traces are expensive to generate at scale and studies want to replay the
*same* trace across configurations; this module persists them as
newline-delimited JSON with an optional gzip layer, in two formats:

- **v1** — one self-describing JSON object per uop (diffable, verbose);
- **v2** (default) — a packed positional encoding: the header carries
  the field order and the uop-class table, each record is a JSON array
  in :class:`~repro.uarch.uop.Uop` constructor order with ``uop_class``
  as an index into that table.  Dropping the repeated keys cuts file
  size roughly in half and makes loads measurably faster (tracked by
  ``benchmarks/bench_perf_kernel.py``'s trace-IO section).

Readers are backward compatible: :func:`load_trace`,
:func:`stream_trace` and :func:`iter_trace_records` accept both formats
transparently.  :func:`stream_trace` decodes in bounded chunks and
yields uops lazily, so paper-scale trace files replay through
:meth:`~repro.uarch.core.TraceDrivenCore.run` without ever holding a
full :class:`~repro.uarch.trace.Trace` in memory.
"""

from __future__ import annotations

import gzip
import json
import os
from itertools import islice
from typing import IO, Callable, Iterator, List

from repro.uarch.trace import Trace
from repro.uarch.uop import Uop, UopClass

FORMAT_VERSION = 2

#: Uop attributes persisted verbatim by the v1 object records.
_FIELDS = (
    "seq", "opcode", "src1", "src2", "dst", "src1_value", "src2_value",
    "result_value", "immediate", "has_immediate", "is_fp", "latency",
    "port", "taken", "mispredicted", "tos", "flags", "shift1", "shift2",
    "address", "carry_in", "is_sub",
)

#: v2 packed-record layout: exactly the :class:`Uop` constructor-argument
#: order, so a record decodes as ``Uop(rec[0], classes[rec[1]], *rec[2:])``
#: with no per-field keyword dispatch.
_V2_FIELDS = (
    "seq", "uop_class", "opcode", "src1", "src2", "dst", "src1_value",
    "src2_value", "result_value", "immediate", "has_immediate", "is_fp",
    "latency", "port", "taken", "mispredicted", "tos", "flags", "shift1",
    "shift2", "address", "carry_in", "is_sub",
)

#: Class table written into v2 headers (index -> UopClass value), so the
#: on-disk encoding survives enum reordering.
_CLASS_TABLE = tuple(kind.value for kind in UopClass)


def _open(path: str, mode: str) -> IO:
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace: Trace, path: str,
               format: int = FORMAT_VERSION) -> None:
    """Write a trace as JSONL (gzipped when the path ends in .gz).

    ``format`` selects the on-disk encoding: 2 (default) writes the
    packed positional records, 1 the legacy self-describing objects.
    """
    if format not in (1, FORMAT_VERSION):
        raise ValueError(
            f"unsupported trace format {format!r}; "
            f"writable formats: 1, {FORMAT_VERSION}"
        )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with _open(path, "w") as handle:
        header = {
            "format": format,
            "name": trace.name,
            "suite": trace.suite,
            "length": len(trace),
        }
        if format == 1:
            handle.write(json.dumps(header) + "\n")
            for uop in trace:
                record = {name: getattr(uop, name) for name in _FIELDS}
                record["uop_class"] = uop.uop_class.value
                handle.write(json.dumps(record) + "\n")
            return
        header["fields"] = list(_V2_FIELDS)
        header["classes"] = list(_CLASS_TABLE)
        handle.write(json.dumps(header) + "\n")
        class_index = {kind: index for index, kind in enumerate(UopClass)}
        payload_fields = _V2_FIELDS[2:]
        dumps = json.dumps
        write = handle.write
        for uop in trace:
            record: List = [uop.seq, class_index[uop.uop_class]]
            record += [getattr(uop, name) for name in payload_fields]
            write(dumps(record, separators=(",", ":")) + "\n")


def _read_header(path: str, handle: IO) -> dict:
    """Read and validate a trace header; errors always name the file."""
    header_line = handle.readline()
    if not header_line:
        raise ValueError(f"{path}: empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: malformed trace header (not JSON): {exc}"
        ) from None
    if not isinstance(header, dict):
        raise ValueError(
            f"{path}: malformed trace header: expected an object, "
            f"got {type(header).__name__}"
        )
    if header.get("format") not in (1, FORMAT_VERSION):
        raise ValueError(
            f"{path}: unsupported trace format {header.get('format')!r}"
        )
    missing = [key for key in ("name", "suite", "length")
               if key not in header]
    if missing:
        raise ValueError(
            f"{path}: trace header is missing {', '.join(missing)}"
        )
    length = header["length"]
    if not isinstance(length, int) or isinstance(length, bool) or length < 0:
        raise ValueError(
            f"{path}: trace header length must be a non-negative "
            f"integer, got {length!r}"
        )
    return header


def _header_classes(header: dict, path: str) -> List[UopClass]:
    """The v2 header's index -> UopClass table, validated.

    Also validates the header's declared field order: positional
    decoding assumes exactly the writer layout, and a reordered or
    extended layout would decode silently wrong.
    """
    fields = header.get("fields", list(_V2_FIELDS))
    if list(fields) != list(_V2_FIELDS):
        raise ValueError(
            f"{path}: v2 trace header declares unsupported field "
            f"order {fields!r}"
        )
    table = header.get("classes", list(_CLASS_TABLE))
    try:
        return [UopClass(value) for value in table]
    except ValueError:
        raise ValueError(
            f"{path}: trace header lists unknown uop class in {table!r}"
        ) from None


def _v2_class_index(record, n_classes: int, path: str) -> int:
    """Validate one v2 record's shape; return its class-table index.

    Shared by :func:`load_trace`/:func:`stream_trace` (via
    :func:`_decoder`) and :func:`iter_trace_records`, so every reader
    rejects truncated/extended rows and out-of-range class indices the
    same way — always as a ValueError naming the file.
    """
    if not isinstance(record, list) or len(record) != len(_V2_FIELDS):
        raise ValueError(
            f"{path}: corrupt trace record: expected a "
            f"{len(_V2_FIELDS)}-element array, got {str(record)[:80]}"
        )
    index = record[1]
    if (not isinstance(index, int) or isinstance(index, bool)
            or not 0 <= index < n_classes):
        raise ValueError(
            f"{path}: corrupt trace record: uop class index {index!r} "
            f"out of range"
        )
    return index


def _decoder(header: dict, path: str) -> Callable[[object], Uop]:
    """A parsed-record -> Uop decoder for the header's format."""
    if header["format"] == 1:
        def decode_v1(record) -> Uop:
            try:
                kind = UopClass(record.pop("uop_class"))
                return Uop(uop_class=kind, **record)
            except (KeyError, TypeError, AttributeError,
                    ValueError) as exc:
                # ValueError: unknown class value or a field Uop's own
                # validation rejects — re-raise naming the file.
                raise ValueError(
                    f"{path}: corrupt trace record: {exc}"
                ) from None
        return decode_v1
    classes = _header_classes(header, path)
    n_classes = len(classes)

    def decode_v2(record) -> Uop:
        index = _v2_class_index(record, n_classes, path)
        try:
            return Uop(record[0], classes[index], *record[2:])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: corrupt trace record: {exc}") \
                from None
    return decode_v2


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`save_trace` (v1 or v2)."""
    with _open(path, "r") as handle:
        header = _read_header(path, handle)
        decode = _decoder(header, path)
        loads = json.loads
        trace = Trace(name=header["name"], suite=header["suite"])
        append = trace.append
        for line in handle:
            append(decode(loads(line)))
    if len(trace) != header["length"]:
        raise ValueError(
            f"{path}: header declares {header['length']} uops, "
            f"found {len(trace)}"
        )
    return trace


def stream_trace(path: str, chunk: int = 4096) -> Iterator[Uop]:
    """Yield a trace file's uops lazily, decoding ``chunk`` at a time.

    The bounded-memory twin of :func:`load_trace`: at most ``chunk``
    decoded uops are live at once, so arbitrarily long trace files feed
    :meth:`~repro.uarch.core.TraceDrivenCore.run` directly.  The header
    is validated eagerly (before the first uop is requested); the
    declared length is verified when the stream drains, so truncated
    files still fail loudly.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    handle = _open(path, "r")
    try:
        header = _read_header(path, handle)
        decode = _decoder(header, path)
    except BaseException:
        handle.close()
        raise
    return _stream_uops(handle, header, decode, path, chunk)


def _stream_uops(handle: IO, header: dict, decode, path: str,
                 chunk: int) -> Iterator[Uop]:
    loads = json.loads
    count = 0
    with handle:
        while True:
            lines = list(islice(handle, chunk))
            if not lines:
                break
            count += len(lines)
            for line in lines:
                yield decode(loads(line))
    if count != header["length"]:
        raise ValueError(
            f"{path}: header declares {header['length']} uops, "
            f"found {count}"
        )


def iter_trace_records(path: str) -> Iterator[dict]:
    """Stream raw records without materialising Uop objects.

    Records are always presented in the v1 object shape (field name ->
    value, with ``uop_class`` as the class's string value), whichever
    format is on disk.
    """
    with _open(path, "r") as handle:
        header = _read_header(path, handle)
        loads = json.loads
        if header["format"] == 1:
            for line in handle:
                yield loads(line)
            return
        classes = [kind.value for kind in _header_classes(header, path)]
        n_classes = len(classes)
        fields = _V2_FIELDS
        for line in handle:
            values = loads(line)
            index = _v2_class_index(values, n_classes, path)
            record = dict(zip(fields, values))
            record["uop_class"] = classes[index]
            yield record
