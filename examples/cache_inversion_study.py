#!/usr/bin/env python
"""Cache inversion study (Section 4.6 / Table 3).

Compares the three invalidate-and-invert schemes on a DL0 configuration
across the ten Table 1 suites, showing per-suite losses and the dynamic
scheme's activation decisions.

Driven through the experiment engine: two declarative sweeps (the fixed
schemes at K=50%, the dynamic scheme at K=60%) expand to one point per
(scheme, suite); pass ``--workers N`` to fan them out over processes.

Run:  python examples/cache_inversion_study.py [--workers N]
"""

import argparse

from repro.analysis import format_table
from repro.experiments import SweepRunner, SweepSpec, group_results
from repro.workloads import suite_names

LENGTH = 15_000
SEED = 5
GEOMETRY = {"size_kb": 16, "ways": 8}

FIXED_SPEC = SweepSpec(
    "caches",
    base={"length": LENGTH, "seed": SEED, "ratio": 0.5, **GEOMETRY},
    grid={"scheme": ["set_fixed", "line_fixed"],
          "suite": suite_names()},
)

DYNAMIC_SPEC = SweepSpec(
    "caches",
    base={
        "length": LENGTH, "seed": SEED, "ratio": 0.6,
        "scheme": "line_dynamic", "dyn_threshold": 0.03,
        "dyn_warmup": 1500, "dyn_test_window": 1500,
        "dyn_period": 8000, **GEOMETRY,
    },
    grid={"suite": suite_names()},
)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    runner = SweepRunner(store=None, workers=args.workers)
    results = (runner.run(FIXED_SPEC).results
               + runner.run(DYNAMIC_SPEC).results)

    by_suite = group_results(results, ["suite"])
    scheme_columns = ["SetFixed50%", "LineFixed50%", "LineDynamic60%"]
    rows = []
    decisions = {}
    for (suite,), members in by_suite.items():
        losses = {m.metrics["scheme_name"]: m.metrics["mean_loss"]
                  for m in members}
        base_miss = members[0].metrics["baseline_miss_rate"]
        rows.append([suite, f"{base_miss:.2%}"]
                    + [f"{losses[name]:.2%}" for name in scheme_columns])
        for member in members:
            if "activations" in member.metrics:
                decisions[suite] = member.metrics["activations"]

    print(format_table(
        ["suite", "base miss"] + scheme_columns,
        rows,
        title=(f"Per-suite performance loss on "
               f"DL0-{GEOMETRY['size_kb']}K-{GEOMETRY['ways']}w"),
    ))

    print("\nLineDynamic60% activation decisions per test period")
    print("(- = the self-test measured too many induced misses and")
    print(" disabled inversion for that period — the paper's cache-filler")
    print(" escape hatch):")
    for suite, shown in decisions.items():
        print(f"  {suite:14s} {shown}")


if __name__ == "__main__":
    main()
