"""Rendering of lint results: human text and a stable JSON schema.

The JSON form is what CI uploads as an artefact; its schema is tagged
(``repro.lint/1``) and covered by tests/test_lint.py so downstream
tooling can rely on it.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.engine import LintReport

#: Schema tag carried by JSON lint reports.
LINT_SCHEMA = "repro.lint/1"


def report_to_dict(report: LintReport, strict: bool = False) -> Dict[str, Any]:
    """The JSON-ready view of a report (schema ``repro.lint/1``)."""
    from repro import __version__

    return {
        "schema": LINT_SCHEMA,
        "version": __version__,
        "files": report.files,
        "strict": strict,
        "rules": [
            {
                "id": rule.id,
                "severity": rule.severity,
                "description": rule.description,
            }
            for rule in report.rules
        ],
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "counts": {
            "errors": report.errors,
            "warnings": report.warnings,
            "suppressed": len(report.suppressed),
        },
        "exit_code": report.exit_code(strict=strict),
    }


def render_json(report: LintReport, strict: bool = False) -> str:
    return json.dumps(report_to_dict(report, strict=strict), indent=2)


def render_text(report: LintReport, strict: bool = False) -> str:
    """One line per finding plus a summary tail line."""
    lines = [finding.render() for finding in report.findings]
    suppressed = f", {len(report.suppressed)} suppressed" \
        if report.suppressed else ""
    if report.findings:
        lines.append(
            f"{report.errors} error(s), {report.warnings} warning(s) "
            f"in {report.files} file(s){suppressed}"
        )
    else:
        lines.append(
            f"ok: {report.files} file(s) clean "
            f"({len(report.rules)} rules{suppressed})"
        )
    return "\n".join(lines)
