"""Memory Order Buffer id allocation.

The scheduler's 6-bit ``MOB id`` field needs no NBTI protection because
"MOB slots are used evenly" (Section 4.5) — a round-robin allocator
guarantees that self-balancing, which this model implements and the
tests verify.
"""

from __future__ import annotations

from typing import Dict

from repro.metrics import MetricSet


class MemoryOrderBuffer:
    """Round-robin MOB slot allocator."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._next = 0
        self._outstanding: Dict[int, int] = {}
        self.allocations = 0

    def reset(self) -> None:
        """Restart the round-robin pointer and usage accounting."""
        self._next = 0
        self._outstanding = {}
        self.allocations = 0

    def allocate(self) -> int:
        """Next MOB id in round-robin order.

        The structural model does not track completion precisely enough
        to stall on MOB fullness; round-robin reuse preserves exactly the
        even-usage property the paper's argument needs.
        """
        mob_id = self._next
        self._next = (self._next + 1) % self.entries
        self._outstanding[mob_id] = self._outstanding.get(mob_id, 0) + 1
        self.allocations += 1
        return mob_id

    def usage_histogram(self) -> Dict[int, int]:
        """Allocation count per MOB id (flat for round-robin)."""
        return dict(self._outstanding)

    def usage_imbalance(self) -> float:
        """Max/mean allocation ratio (1.0 = perfectly even)."""
        if not self._outstanding:
            return 1.0
        counts = list(self._outstanding.values())
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    # ------------------------------------------------------------------
    # Telemetry (MetricSource)
    # ------------------------------------------------------------------
    def metrics(self) -> MetricSet:
        ms = MetricSet()
        ms.counter("allocations", read=lambda: self.allocations)
        ms.gauge("usage_imbalance", read=self.usage_imbalance,
                 help="max/mean allocations per MOB id (1.0 = even)")
        return ms
