"""Measurement aggregation and report formatting.

- :mod:`repro.analysis.bias` — merging bias statistics across traces.
- :mod:`repro.analysis.report` — plain-text table/figure renderers used
  by the benchmark harness to print the paper's artefacts.
"""

from repro.analysis.bias import (
    merge_bias_arrays,
    worst_imbalance,
    bias_band,
)
from repro.analysis.report import (
    format_table,
    format_series,
    format_histogram,
    format_interval_report,
)

__all__ = [
    "merge_bias_arrays",
    "worst_imbalance",
    "bias_band",
    "format_table",
    "format_series",
    "format_histogram",
    "format_interval_report",
]
