"""Ablation: invert-ratio sweep for line-granularity cache inversion.

The paper fixes K=50% for perfect balancing and mentions the fixed /
dynamic trade-off; this sweep quantifies the bias-vs-performance knob:
higher ratios balance bit cells harder but cost more capacity.

Driven through the experiment engine (:mod:`repro.experiments`): the
grid is ratio × suite, points run uncached so the timing stays honest,
and per-ratio rows aggregate with the summary helpers.
"""

import pytest

from repro.analysis import format_table
from repro.experiments import (
    SweepRunner,
    SweepSpec,
    aggregate_metric,
    group_results,
)
from repro.workloads import suite_names

from conftest import SMOKE, scaled

RATIOS = (0.25, 0.4, 0.5, 0.6, 0.75)

SPEC = SweepSpec(
    "invert_ratio",
    base={"length": scaled(10_000), "seed": 55, "size_kb": 16,
          "ways": 8},
    grid={"ratio": list(RATIOS), "suite": suite_names()},
)


def sweep():
    outcome = SweepRunner(store=None, workers=1).run(SPEC)
    rows = []
    losses = []
    data = {}
    for (ratio,), members in group_results(outcome.results,
                                           ["ratio"]).items():
        loss = aggregate_metric(members, "mean_loss")
        achieved = aggregate_metric(members, "inverted_ratio")
        expected_bias = aggregate_metric(members, "expected_bias")
        rows.append([
            f"{ratio:.0%}",
            f"{loss:.2%}",
            f"{achieved:.1%}",
            f"{expected_bias:.1%}",
        ])
        losses.append(loss)
        data[f"{ratio:.2f}"] = {
            "mean_loss": loss,
            "achieved_ratio": achieved,
            "expected_bias": expected_bias,
        }
    return rows, losses, data


def test_ablation_invert_ratio(benchmark):
    rows, losses, data = benchmark.pedantic(sweep, rounds=1,
                                            iterations=1)
    # More inversion can only cost more performance.
    if not SMOKE:
        assert losses == sorted(losses)
    text = format_table(
        ["invert ratio", "perf loss", "achieved ratio",
         "worst-cell bias (90%-biased data)"],
        rows,
        title="Ablation — invert-ratio sweep (LineFixed, DL0-16K-8w)",
    )
    from conftest import write_result

    write_result("ablation_invert_ratio.txt", text, data=data)
