"""Unit tests for gates, netlists and the aging simulator."""

import pytest

from repro.circuits.aging import AgingSimulator
from repro.circuits.gates import Gate, GateKind
from repro.circuits.netlist import Circuit, CircuitBuilder
from repro.nbti.transistor import PMOSTransistor, WidthClass


class TestGate:
    def test_inv_truth_table(self):
        gate = Gate("g", GateKind.INV, ("a",), "y")
        assert gate.evaluate([0]) == 1
        assert gate.evaluate([1]) == 0

    def test_nand_truth_table(self):
        gate = Gate("g", GateKind.NAND2, ("a", "b"), "y")
        assert [gate.evaluate([a, b]) for a in (0, 1) for b in (0, 1)] == [
            1, 1, 1, 0
        ]

    def test_nor_truth_table(self):
        gate = Gate("g", GateKind.NOR2, ("a", "b"), "y")
        assert [gate.evaluate([a, b]) for a in (0, 1) for b in (0, 1)] == [
            1, 0, 0, 0
        ]

    def test_pmos_per_input(self):
        gate = Gate("g", GateKind.NAND2, ("a", "b"), "y")
        assert gate.transistor_count == 2
        assert {p.gate_node for p in gate.pmos} == {"a", "b"}

    def test_pmos_inherit_width_class(self):
        gate = Gate("g", GateKind.INV, ("a",), "y",
                    width_class=WidthClass.WIDE)
        assert all(not p.is_narrow for p in gate.pmos)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", GateKind.INV, ("a", "b"), "y")

    def test_non_binary_input_rejected(self):
        gate = Gate("g", GateKind.INV, ("a",), "y")
        with pytest.raises(ValueError):
            gate.evaluate([2])


class TestPMOSTransistor:
    def test_stressed_by_zero(self):
        pmos = PMOSTransistor("p", "n")
        assert pmos.stressed_by(0)
        assert not pmos.stressed_by(1)

    def test_stressed_by_rejects_bad_value(self):
        with pytest.raises(ValueError):
            PMOSTransistor("p", "n").stressed_by(5)


class TestCircuit:
    def test_evaluate_chain(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate(Gate("g1", GateKind.INV, ("a",), "n1"))
        circuit.add_gate(Gate("g2", GateKind.INV, ("n1",), "y"))
        circuit.add_output("y")
        assert circuit.output_values({"a": 1}) == {"y": 1}
        assert circuit.output_values({"a": 0}) == {"y": 0}

    def test_duplicate_driver_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate(Gate("g1", GateKind.INV, ("a",), "y"))
        with pytest.raises(ValueError):
            circuit.add_gate(Gate("g2", GateKind.INV, ("a",), "y"))

    def test_driving_an_input_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(ValueError):
            circuit.add_gate(Gate("g", GateKind.INV, ("a",), "a"))

    def test_missing_input_value_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(ValueError):
            circuit.evaluate({})

    def test_undriven_node_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate(Gate("g", GateKind.NAND2, ("a", "ghost"), "y"))
        with pytest.raises(ValueError, match="undriven"):
            circuit.evaluate({"a": 1})

    def test_fanout(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.inv(a)
        builder.inv(a)
        assert builder.circuit.fanout("a") == 2

    def test_fanout_sizing(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        hub = builder.inv(a, name="hub")
        for __ in range(4):
            builder.inv(hub)
        converted = builder.circuit.apply_fanout_sizing(wide_threshold=4)
        assert converted == 1
        driver = builder.circuit.driver_of("hub")
        assert driver.width_class is WidthClass.WIDE

    def test_resize_gates_counts_changes(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.inv(a, name="y")
        circuit = builder.circuit
        gate_name = circuit.gates[0].name
        assert circuit.resize_gates([gate_name], WidthClass.WIDE) == 1
        # Already wide: no change.
        assert circuit.resize_gates([gate_name], WidthClass.WIDE) == 0


class TestCircuitBuilder:
    @pytest.mark.parametrize("a", (0, 1))
    @pytest.mark.parametrize("b", (0, 1))
    def test_composites_truth_tables(self, a, b):
        builder = CircuitBuilder()
        na, nb = builder.input("a"), builder.input("b")
        outputs = {
            "and": builder.and2(na, nb),
            "or": builder.or2(na, nb),
            "xor": builder.xor2(na, nb),
            "xnor": builder.xnor2(na, nb),
        }
        for node in outputs.values():
            builder.mark_output(node)
        values = builder.circuit.output_values({"a": a, "b": b})
        assert values[outputs["and"]] == (a & b)
        assert values[outputs["or"]] == (a | b)
        assert values[outputs["xor"]] == (a ^ b)
        assert values[outputs["xnor"]] == 1 - (a ^ b)

    def test_aoi21(self):
        builder = CircuitBuilder()
        a, b, c = (builder.input(n) for n in "abc")
        y = builder.aoi21(a, b, c)
        builder.mark_output(y)
        for va in (0, 1):
            for vb in (0, 1):
                for vc in (0, 1):
                    got = builder.circuit.output_values(
                        {"a": va, "b": vb, "c": vc}
                    )[y]
                    assert got == ((va & vb) | vc)

    def test_trees(self):
        builder = CircuitBuilder()
        nodes = builder.inputs("x", 5)
        y_and = builder.and_tree(nodes)
        y_or = builder.or_tree(nodes)
        builder.mark_output(y_and)
        builder.mark_output(y_or)
        values = {f"x{i}": 1 for i in range(5)}
        out = builder.circuit.output_values(values)
        assert out[y_and] == 1 and out[y_or] == 1
        values["x3"] = 0
        out = builder.circuit.output_values(values)
        assert out[y_and] == 0 and out[y_or] == 1

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            CircuitBuilder().and_tree([])

    def test_xor_exposes_internal_nodes(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.xor2(a, b)
        # 4 NAND gates -> 3 internal + 1 output node beyond the inputs.
        assert len(builder.circuit) == 4


class TestAgingSimulator:
    def _inverter(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.mark_output(builder.inv(a, name="y"))
        return builder.circuit

    def test_duty_accumulation(self):
        circuit = self._inverter()
        sim = AgingSimulator(circuit)
        sim.apply({"a": 0}, 3.0)
        sim.apply({"a": 1}, 1.0)
        pmos = circuit.pmos_transistors()[0]
        assert sim.pmos_duty(pmos) == pytest.approx(0.75)
        assert sim.elapsed == pytest.approx(4.0)

    def test_report_counts_fully_stressed(self):
        circuit = self._inverter()
        sim = AgingSimulator(circuit)
        sim.apply({"a": 0}, 1.0)
        report = sim.report()
        assert report.narrow_fully_stressed == 1
        assert report.narrow_fully_stressed_fraction == pytest.approx(0.5)
        assert report.worst_narrow_duty == 1.0
        assert report.guardband == pytest.approx(0.20)

    def test_balanced_input_gets_min_guardband(self):
        circuit = self._inverter()
        sim = AgingSimulator(circuit)
        sim.apply({"a": 0}, 1.0)
        sim.apply({"a": 1}, 1.0)
        report = sim.report()
        assert report.narrow_fully_stressed == 0
        assert report.guardband == pytest.approx(0.02)

    def test_zero_duration_is_noop(self):
        circuit = self._inverter()
        sim = AgingSimulator(circuit)
        sim.apply({"a": 0}, 0.0)
        assert sim.elapsed == 0.0

    def test_negative_duration_rejected(self):
        sim = AgingSimulator(self._inverter())
        with pytest.raises(ValueError):
            sim.apply({"a": 0}, -1.0)

    def test_reset(self):
        circuit = self._inverter()
        sim = AgingSimulator(circuit)
        sim.apply({"a": 0}, 1.0)
        sim.reset()
        assert sim.elapsed == 0.0
        assert sim.report().worst_narrow_duty == 0.0

    def test_apply_weighted(self):
        circuit = self._inverter()
        sim = AgingSimulator(circuit)
        sim.apply_weighted([({"a": 0}, 1.0), ({"a": 1}, 3.0)])
        pmos = circuit.pmos_transistors()[0]
        assert sim.pmos_duty(pmos) == pytest.approx(0.25)
