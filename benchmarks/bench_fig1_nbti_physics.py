"""Figure 1: N_IT under alternating stress/relax periods.

Regenerates the saw-tooth trajectory of the reaction-diffusion model and
reports the steady-state degradation at several duty cycles, including
the 10x anchor at 50%.
"""

from repro.analysis import format_series
from repro.nbti.physics import ReactionDiffusionModel, steady_state_fill

from conftest import write_result


def saw_tooth(periods: int = 6, period: float = 1000.0):
    model = ReactionDiffusionModel()
    for __ in range(periods):
        model.stress(period / 2)
        model.relax(period / 2)
    return model.history


def test_fig1_saw_tooth(benchmark):
    history = benchmark(saw_tooth)
    peaks = [nit for __, nit in history[1::2]]
    troughs = [nit for __, nit in history[2::2]]
    assert all(p > t for p, t in zip(peaks, troughs))

    lines = ["Figure 1 — N_IT at phase boundaries (stress/relax, 50% duty)"]
    for time, nit in history:
        lines.append(f"  t={time:8.0f}  NIT={nit:.6f}")
    series = {
        f"duty {d:.0%}": steady_state_fill(d)
        for d in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    }
    lines.append("")
    lines.append(format_series(
        series, title="Steady-state N_IT fill vs zero-signal probability",
        percent=False,
    ))
    lines.append("")
    lines.append(
        f"10x anchor: fill(0.5)={steady_state_fill(0.5):.3f} vs "
        f"fill(1.0)={steady_state_fill(1.0):.3f}"
    )
    write_result("fig1_nbti_physics.txt", "\n".join(lines))
