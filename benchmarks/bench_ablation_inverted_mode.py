"""Extension: measuring the conventional invert-periodically scheme.

The paper charges periodic inversion a 10% delay (data-path XNOR) and
ignores its cache-flush cost "which is against our technique"; this
bench measures that flush cost and prices both variants with the
metric, next to Penelope's LineFixed.
"""

import pytest

from repro.analysis import format_table
from repro.core.cache_like import LineFixedScheme, run_cache_study
from repro.core.inverted_mode import (
    PeriodicInversionScheme,
    inverted_mode_block_cost,
)
from repro.core.metric import nbti_efficiency
from repro.uarch.cache import CacheConfig
from repro.workloads import generate_address_stream, suite_names

from conftest import SMOKE, scaled, write_result

CONFIG = CacheConfig(name="DL0-16K-8w", size_bytes=16 * 1024, ways=8)


@pytest.fixture(scope="module")
def streams():
    return [
        generate_address_stream(suite, length=scaled(10_000), seed=11)
        for suite in suite_names()
    ]


def compare(streams):
    linefixed = run_cache_study(CONFIG, lambda: LineFixedScheme(0.5),
                                streams)
    flushing = run_cache_study(
        CONFIG, lambda: PeriodicInversionScheme(period=5000), streams
    )
    return linefixed, flushing


def test_ablation_inverted_mode(benchmark, streams):
    linefixed, flushing = benchmark.pedantic(
        compare, args=(streams,), rounds=1, iterations=1
    )
    # Penelope's efficiency on this block: CPI loss, no cycle-time hit.
    penelope_eff = nbti_efficiency(1.0 + linefixed.mean_loss, 0.02, 1.01)
    # Inverted mode: XNOR delay plus the measured flush CPI cost.
    inverted_eff = inverted_mode_block_cost(
        cpi_factor=1.0 + flushing.mean_loss
    ).efficiency

    if not SMOKE:
        assert penelope_eff < inverted_eff

    rows = [
        ["LineFixed50% CPI loss", f"{linefixed.mean_loss:.2%}"],
        ["invert-periodically flush CPI loss",
         f"{flushing.mean_loss:.2%}"],
        ["LineFixed50% NBTIefficiency",
         f"{penelope_eff:.2f} (paper: 1.09)"],
        ["invert-periodically NBTIefficiency",
         f"{inverted_eff:.2f} (paper: 1.41, flush ignored)"],
    ]
    write_result(
        "ablation_inverted_mode.txt",
        format_table(["statistic", "value"], rows,
                     title="Extension — invert-periodically, priced "
                           "with its flush cost"),
    )
