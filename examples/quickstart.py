#!/usr/bin/env python
"""Quickstart: NBTI in five minutes.

Walks the library bottom-up:

1. the reaction-diffusion physics (Figure 1's saw-tooth),
2. the duty-cycle -> guardband calibration,
3. aging a real circuit (the 32-bit Ladner-Fischer adder), and
4. protecting a whole processor with Penelope and scoring it with the
   NBTIefficiency metric.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.analysis import format_series
from repro.circuits import AgingSimulator, build_ladner_fischer_adder
from repro.config import WorkloadSpec
from repro.core import nbti_efficiency
from repro.nbti import GuardbandModel, ReactionDiffusionModel


def demo_physics() -> None:
    print("=" * 64)
    print("1. NBTI physics: stress raises N_IT, relaxation heals it")
    print("=" * 64)
    model = ReactionDiffusionModel()
    for period in range(3):
        model.stress(500.0)
        print(f"  after stress period {period + 1}:  N_IT = {model.nit:.4f}")
        model.relax(500.0)
        print(f"  after relax period {period + 1}:   N_IT = {model.nit:.4f}")
    print(f"  steady state at 50% duty: {model.steady_state(0.5):.3f} "
          f"(10x below full stress, the paper's anchor)\n")


def demo_guardband() -> None:
    print("=" * 64)
    print("2. Zero-signal probability -> cycle-time guardband")
    print("=" * 64)
    model = GuardbandModel()
    series = {
        f"duty {d:.0%}": model.guardband_for_duty(d)
        for d in (0.5, 0.545, 0.605, 0.65, 0.8, 1.0)
    }
    print(format_series(series, title="  guardband vs duty"))
    print("  (0.545 -> 3.6% is the paper's FP register file; "
          "0.65 -> 7.4% its 30%-utilised adder)\n")


def demo_adder() -> None:
    print("=" * 64)
    print("3. Aging the 32-bit Ladner-Fischer adder")
    print("=" * 64)
    adder = build_ladner_fischer_adder()
    print(f"  netlist: {adder.gate_count} gates, "
          f"{adder.pmos_count} PMOS ({adder.narrow_pmos_count} narrow)")
    total, cout = adder.add(0xDEADBEEF, 0x12345678, 1)
    print(f"  sanity: 0xDEADBEEF + 0x12345678 + 1 = {total:#010x} "
          f"(cout={cout})")
    ones = (1 << 32) - 1
    sim = AgingSimulator(adder.circuit)
    sim.apply(adder.input_vector(0, 0, 0), 1.0)
    sim.apply(adder.input_vector(ones, ones, 1), 1.0)
    report = sim.report()
    print(f"  idle pair <0,0,0>+<1,1,1>: narrow fully stressed = "
          f"{report.narrow_fully_stressed}, wide = "
          f"{report.wide_fully_stressed} -> guardband "
          f"{report.guardband:.1%}\n")


def demo_penelope() -> None:
    print("=" * 64)
    print("4. Penelope end to end")
    print("=" * 64)
    # The declarative front door: specs in, the usual typed report out.
    workload = api.build_workload(WorkloadSpec(
        suites=("specint2000", "office"), length=6000,
    ))
    report = api.build_penelope().evaluate(workload)
    print(f"  INT register file worst bias: "
          f"{report.int_rf_bias[0]:.1%} -> {report.int_rf_bias[1]:.1%}")
    print(f"  scheduler worst bias:         "
          f"{report.scheduler_bias[0]:.1%} -> {report.scheduler_bias[1]:.1%}")
    print(f"  adder guardband:              {report.adder_guardband:.1%}")
    print(f"  combined CPI:                 {report.combined_cpi:.4f}")
    print(f"  NBTIefficiency:  penelope {report.efficiency:.2f}  vs  "
          f"invert-periodically {nbti_efficiency(1.10, 0.02, 1.0):.2f}  vs  "
          f"full guardband {report.baseline_efficiency:.2f}")
    print("  (paper: 1.28 vs 1.41 vs 1.73)")


def main() -> None:
    demo_physics()
    demo_guardband()
    demo_adder()
    demo_penelope()


if __name__ == "__main__":
    main()
