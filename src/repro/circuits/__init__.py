"""Gate-level combinational circuit substrate.

The paper evaluated its combinational-block strategy on a 32-bit
Ladner-Fischer adder laid out in 65nm and simulated with an Hspice-like
Intel aging simulator.  This subpackage provides the open equivalent:

- :mod:`repro.circuits.gates` — static-CMOS gate primitives (INV, NAND2,
  NOR2) that expose their PMOS transistors, plus composite helpers.
- :mod:`repro.circuits.netlist` — :class:`Circuit`: a named-node netlist
  with topological evaluation and a :class:`CircuitBuilder` DSL.
- :mod:`repro.circuits.ladner_fischer` — the 32-bit Ladner-Fischer
  prefix adder netlist with fanout-based transistor sizing.
- :mod:`repro.circuits.aging` — :class:`AgingSimulator`: drives a circuit
  with (vector, duration) pairs and converts the resulting per-PMOS
  zero-signal residency into guardband requirements.
"""

from repro.circuits.gates import Gate, GateKind
from repro.circuits.netlist import Circuit, CircuitBuilder
from repro.circuits.ladner_fischer import (
    LadnerFischerAdder,
    build_ladner_fischer_adder,
)
from repro.circuits.aging import AgingSimulator, AgingReport
from repro.circuits.latches import LatchBank, LatchStudy, study_latch_bank

__all__ = [
    "LatchBank",
    "LatchStudy",
    "study_latch_bank",
    "Gate",
    "GateKind",
    "Circuit",
    "CircuitBuilder",
    "LadnerFischerAdder",
    "build_ladner_fischer_adder",
    "AgingSimulator",
    "AgingReport",
]
