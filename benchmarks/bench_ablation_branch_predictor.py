"""Extension: branch predictor as a cache-like block (Section 3.2.1).

The paper names branch predictors among the cache-like structures that
can hold inverted contents; this bench quantifies the trade: bit-cell
balance improves while prediction accuracy pays a bounded cost.
"""

import random

import pytest

from repro.analysis import format_table
from repro.uarch.branch_predictor import (
    BimodalPredictor,
    ProtectedBimodalPredictor,
)
from repro.workloads import SUITE_PROFILES, TraceGenerator, suite_names
from repro.uarch.uop import UopClass

from conftest import SMOKE, write_result


def branch_stream(workload):
    """(pc, taken) pairs for the workload's branches.

    Each branch uop is attributed to one of a few dozen static branch
    sites; a site's outcome follows a stable per-site bias (loop
    back-edges are strongly taken, guards strongly not-taken), which is
    what gives real bimodal predictors their accuracy — and what biases
    the pattern-table bit cells.
    """
    rng = random.Random(4242)
    stream = []
    for trace in workload:
        for index, uop in enumerate(t for t in trace
                                    if t.uop_class is UopClass.BRANCH):
            site_id = hash((trace.suite, index % 48)) % 64
            # Spread sites over the whole pattern table (512 entries).
            site = 0x1000 + site_id * 8 * 4
            # Deterministic per-site bias in {0.05..0.95}.
            bias = 0.05 + (site_id % 10) / 10.0
            stream.append((site, rng.random() < bias))
    return stream


RATIOS = (0.25, 0.5)


def compare(stream):
    plain = BimodalPredictor(entries=512)
    protected = {
        ratio: ProtectedBimodalPredictor(
            BimodalPredictor(entries=512), ratio=ratio,
            rotation_period=2048,
        )
        for ratio in RATIOS
    }
    for pc, taken in stream:
        plain.update(pc, taken)
        for predictor in protected.values():
            predictor.update(pc, taken)
    return plain, protected


def test_ablation_branch_predictor(benchmark, workload):
    stream = branch_stream(workload)
    plain, protected = benchmark.pedantic(
        compare, args=(stream,), rounds=1, iterations=1
    )
    if not SMOKE:
        assert plain.stats.accuracy > 0.6
        # Balance improves at every ratio; accuracy cost grows with the
        # ratio (unlike caches, a predictor entry has no "dead" state to
        # exploit — the trade-off is why the paper only sketches this
        # structure).
        accuracies = [protected[r].stats.accuracy for r in RATIOS]
        assert accuracies == sorted(accuracies, reverse=True)
        assert (protected[0.25].stats.accuracy
                > plain.stats.accuracy - 0.12)
        for ratio in RATIOS:
            assert (protected[ratio].worst_bias()
                    <= plain.worst_bias() + 1e-9)

    rows = [["baseline", f"{plain.stats.accuracy:.1%}",
             f"{plain.worst_bias():.1%}"]]
    for ratio in RATIOS:
        predictor = protected[ratio]
        rows.append([
            f"{ratio:.0%} inverted",
            f"{predictor.stats.accuracy:.1%}",
            f"{predictor.worst_bias():.1%}",
        ])
    text = format_table(
        ["configuration", "accuracy", "worst counter-bit bias"],
        rows,
        title="Extension — branch predictor inversion "
              f"({len(stream)} branches)",
    )
    write_result("ablation_branch_predictor.txt", text)
