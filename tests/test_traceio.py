"""Tests for trace serialization."""

import os

import pytest

from repro.uarch.traceio import iter_trace_records, load_trace, save_trace
from repro.workloads import TraceGenerator


@pytest.fixture()
def trace():
    return TraceGenerator(seed=3).generate("multimedia", length=400)


class TestRoundTrip:
    def test_plain_jsonl(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.suite == trace.suite
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original.__dict__ == restored.__dict__

    def test_gzip(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl.gz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        # gzip actually compresses.
        plain = str(tmp_path / "t.jsonl")
        save_trace(trace, plain)
        assert os.path.getsize(path) < os.path.getsize(plain)

    def test_replay_equivalence(self, trace, tmp_path):
        from repro.uarch import TraceDrivenCore

        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = TraceDrivenCore().run(trace)
        b = TraceDrivenCore().run(loaded)
        assert a.cycles == b.cycles
        assert a.dl0.misses == b.dl0.misses


class TestStreaming:
    def test_iter_records(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        records = list(iter_trace_records(path))
        assert len(records) == len(trace)
        assert records[0]["seq"] == 0
        assert "uop_class" in records[0]


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"format": 99, "name": "x", "suite": "y", '
                         '"length": 0}\n')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_truncated_file_rejected(self, trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(trace, path)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-10])
        with pytest.raises(ValueError, match="header declares"):
            load_trace(path)
