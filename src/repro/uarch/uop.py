"""Micro-operation records and the Table 2 scheduler field layout.

IA32 instructions are split into uops (Section 4.5); the scheduler holds
one uop per slot with the field layout of Table 2 of the paper.  The
:class:`Uop` record carries both architectural information (registers,
values, memory address) and the pre-decoded Table 2 payload bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Width of integer register data (IA32 general-purpose registers).
INT_WIDTH = 32

#: Width of FP register data (x87 extended precision, matching the
#: ~80-bit x-axis of Figure 6's FP plot).
FP_WIDTH = 80


class UopClass(enum.Enum):
    """Execution class of a uop."""

    ALU = "alu"          # integer ALU op executed on an adder port
    MUL = "mul"          # long-latency integer op
    FP = "fp"            # floating-point op
    LOAD = "load"        # memory read (DL0 + DTLB)
    STORE = "store"      # memory write (DL0 + DTLB)
    BRANCH = "branch"    # control
    NOP = "nop"          # no-op / other

    @property
    def is_memory(self) -> bool:
        return self in (UopClass.LOAD, UopClass.STORE)


@dataclass(frozen=True, slots=True)
class SchedulerLayout:
    """Bit widths of the scheduler fields, exactly as in Table 2."""

    valid: int = 1
    latency: int = 5
    port: int = 5
    taken: int = 1
    mob_id: int = 6
    tos: int = 3
    flags: int = 6
    shift1: int = 1
    shift2: int = 1
    dst_tag: int = 7
    src1_tag: int = 7
    src2_tag: int = 7
    ready1: int = 1
    ready2: int = 1
    src1_data: int = 32
    src2_data: int = 32
    immediate: int = 16
    opcode: int = 12

    def fields(self) -> Dict[str, int]:
        """Field name -> bit width, in Table 2 order."""
        return {
            "valid": self.valid,
            "latency": self.latency,
            "port": self.port,
            "taken": self.taken,
            "mob_id": self.mob_id,
            "tos": self.tos,
            "flags": self.flags,
            "shift1": self.shift1,
            "shift2": self.shift2,
            "dst_tag": self.dst_tag,
            "src1_tag": self.src1_tag,
            "src2_tag": self.src2_tag,
            "ready1": self.ready1,
            "ready2": self.ready2,
            "src1_data": self.src1_data,
            "src2_data": self.src2_data,
            "immediate": self.immediate,
            "opcode": self.opcode,
        }

    @property
    def total_bits(self) -> int:
        return sum(self.fields().values())

    def bit_offsets(self) -> Dict[str, Tuple[int, int]]:
        """Field name -> (first bit, width) within a flattened slot."""
        offsets: Dict[str, Tuple[int, int]] = {}
        position = 0
        for name, width in self.fields().items():
            offsets[name] = (position, width)
            position += width
        return offsets


#: The canonical layout used throughout the library.
SCHEDULER_LAYOUT = SchedulerLayout()


@dataclass(slots=True)
class Uop:
    """One micro-operation of a trace.

    Only the fields the protected structures consume are modelled; the
    values of the Table 2 payload fields are pre-decoded by the trace
    generator so structure models do not re-derive them.
    """

    seq: int
    uop_class: UopClass
    opcode: int = 0
    #: Architectural source/destination register indices (None = unused).
    src1: Optional[int] = None
    src2: Optional[int] = None
    dst: Optional[int] = None
    #: Operand values as unsigned ints of the appropriate width.
    src1_value: int = 0
    src2_value: int = 0
    result_value: int = 0
    immediate: int = 0
    has_immediate: bool = False
    is_fp: bool = False
    #: Execution latency in cycles (Table 2 "latency" field, 5 bits).
    latency: int = 1
    #: Issue port one-hot index (Table 2 "port" field, 5 bits).
    port: int = 0
    #: Branch outcome (Table 2 "taken" bit).
    taken: bool = False
    #: Whether this branch was mispredicted (frontend redirect).
    mispredicted: bool = False
    #: FP top-of-stack position (Table 2 "tos", 3 bits).
    tos: int = 0
    #: Architectural flags produced (Table 2 "flags", 6 bits).
    flags: int = 0
    #: AH/BH/CH/DH sub-register shifts (Table 2 "shift1"/"shift2").
    shift1: bool = False
    shift2: bool = False
    #: Memory address for loads/stores (byte address).
    address: Optional[int] = None
    #: Carry-in for ALU adds (0 for ADD, 1 for SUB-style a + ~b + 1).
    carry_in: int = 0
    #: True for subtract-style ops (second operand inverted at the adder).
    is_sub: bool = False

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("seq must be non-negative")
        if not 0 <= self.opcode < (1 << SCHEDULER_LAYOUT.opcode):
            raise ValueError(f"opcode out of range: {self.opcode!r}")
        if not 0 <= self.latency < (1 << SCHEDULER_LAYOUT.latency):
            raise ValueError(f"latency out of range: {self.latency!r}")
        if self.uop_class.is_memory and self.address is None:
            raise ValueError(f"{self.uop_class.value} uop needs an address")

    @property
    def value_width(self) -> int:
        """Width of this uop's register data."""
        return FP_WIDTH if self.is_fp else INT_WIDTH

    @property
    def reads_memory(self) -> bool:
        return self.uop_class is UopClass.LOAD

    @property
    def writes_memory(self) -> bool:
        return self.uop_class is UopClass.STORE

    @property
    def uses_adder(self) -> bool:
        """Whether the uop occupies an adder (ALU op or address generation)."""
        return self.uop_class in (UopClass.ALU, UopClass.LOAD, UopClass.STORE)

    def adder_operands(self) -> Tuple[int, int, int]:
        """(input_a, input_b, carry_in) presented to the adder.

        ALU adds present the two source values; subtracts present the
        inverted second operand with carry-in 1; address generation
        presents base + displacement.
        """
        mask = (1 << INT_WIDTH) - 1
        if self.uop_class.is_memory:
            base = self.src1_value & mask
            displacement = self.immediate & mask
            return base, displacement, 0
        a = self.src1_value & mask
        b = self.src2_value & mask
        if self.is_sub:
            return a, (~b) & mask, 1
        return a, b, self.carry_in
