"""Lease board: TTL + heartbeat batch ownership over SQLite.

The board is the one piece of mutable shared state in the fabric.
Workers (processes today, hosts tomorrow — anything that can open the
store directory) claim batches with :meth:`LeaseBoard.acquire`, renew
ownership with :meth:`heartbeat` while executing, and mark
:meth:`complete` / :meth:`fail`.  A lease that outlives its TTL without
a heartbeat is *stolen* by the next acquirer — a SIGKILLed worker's
batch is re-run, never lost — and every acquisition bumps the batch's
attempt counter so a poisoned batch stops retrying at
``max_attempts`` instead of crash-looping the fleet.

State machine per ``(run_id, batch_id)`` row::

    pending ──acquire──> leased ──complete──> done
       ^                  │  │
       │     deadline <   │  └──fail──> failed ──acquire──> leased
       └─ (re-acquire ────┘      (while attempts < max_attempts)
           = steal)

Claims run under ``BEGIN IMMEDIATE`` so concurrent workers serialise on
SQLite's file lock; unlike the result shards (append-only, rebuildable
index) the board needs real transactional writes, which is exactly what
stdlib SQLite provides without a server.
"""

from __future__ import annotations

import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Lease", "LeaseBoard", "LEASES_NAME"]

LEASES_NAME = "leases.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS batches (
    run_id TEXT NOT NULL,
    batch_id TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    owner TEXT,
    deadline REAL NOT NULL DEFAULT 0,
    heartbeat REAL NOT NULL DEFAULT 0,
    attempts INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    updated REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, batch_id)
);
"""


@dataclass(frozen=True)
class Lease:
    """A successful claim returned by :meth:`LeaseBoard.acquire`."""

    run_id: str
    batch_id: str
    owner: str
    attempts: int
    deadline: float
    #: True when this claim took over an expired lease (or a failed
    #: attempt) from another owner — the killed-worker recovery path.
    stolen: bool = False
    prev_owner: Optional[str] = None


class LeaseBoard:
    """Shared batch-ownership table in the store directory."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        # Autocommit connection: transactions are explicit (`BEGIN
        # IMMEDIATE`) so a claim is one short write-locked critical
        # section, not whatever the driver's implicit mode decides.
        self._conn = sqlite3.connect(path, timeout=30.0,
                                     isolation_level=None)
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)

    # -- plan -----------------------------------------------------------
    def register(self, run_id: str, batch_ids: List[str]) -> None:
        """Create pending rows; existing rows (resume) keep their state."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT OR IGNORE INTO batches "
                "(run_id, batch_id, state, updated) "
                "VALUES (?, ?, 'pending', ?)",
                [(run_id, batch_id, time.time())
                 for batch_id in batch_ids],
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # -- claim / renew / settle ----------------------------------------
    def acquire(
        self,
        run_id: str,
        owner: str,
        ttl: float,
        max_attempts: int,
        now: Optional[float] = None,
    ) -> Optional[Lease]:
        """Claim one batch: pending, expired-leased, or retryable-failed.

        Returns ``None`` when nothing is currently claimable (all done,
        all attempts exhausted, or every live lease still within TTL).
        """
        now = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT batch_id, state, owner, attempts FROM batches "
                "WHERE run_id = ? AND attempts < ? AND ("
                "  state = 'pending' OR state = 'failed' "
                "  OR (state = 'leased' AND deadline < ?)"
                ") ORDER BY batch_id LIMIT 1",
                (run_id, max_attempts, now),
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            batch_id, state, prev_owner, attempts = row
            deadline = now + ttl
            self._conn.execute(
                "UPDATE batches SET state = 'leased', owner = ?, "
                "deadline = ?, heartbeat = ?, attempts = ?, updated = ? "
                "WHERE run_id = ? AND batch_id = ?",
                (owner, deadline, now, attempts + 1, now,
                 run_id, batch_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return Lease(
            run_id=run_id,
            batch_id=batch_id,
            owner=owner,
            attempts=attempts + 1,
            deadline=deadline,
            stolen=state in ("leased", "failed"),
            prev_owner=prev_owner,
        )

    def heartbeat(
        self,
        run_id: str,
        batch_id: str,
        owner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> bool:
        """Extend a live lease; False means it was already lost."""
        now = time.time() if now is None else now
        cursor = self._conn.execute(
            "UPDATE batches SET deadline = ?, heartbeat = ?, updated = ? "
            "WHERE run_id = ? AND batch_id = ? AND owner = ? "
            "AND state = 'leased'",
            (now + ttl, now, now, run_id, batch_id, owner),
        )
        return cursor.rowcount > 0

    def complete(self, run_id: str, batch_id: str, owner: str) -> bool:
        cursor = self._conn.execute(
            "UPDATE batches SET state = 'done', updated = ? "
            "WHERE run_id = ? AND batch_id = ? AND owner = ? "
            "AND state = 'leased'",
            (time.time(), run_id, batch_id, owner),
        )
        return cursor.rowcount > 0

    def fail(self, run_id: str, batch_id: str, owner: str,
             error: str) -> bool:
        cursor = self._conn.execute(
            "UPDATE batches SET state = 'failed', error = ?, updated = ? "
            "WHERE run_id = ? AND batch_id = ? AND owner = ? "
            "AND state = 'leased'",
            (error[:500], time.time(), run_id, batch_id, owner),
        )
        return cursor.rowcount > 0

    # -- queries --------------------------------------------------------
    def counts(self, run_id: str) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT state, COUNT(*) FROM batches WHERE run_id = ? "
            "GROUP BY state",
            (run_id,),
        ).fetchall()
        return {state: int(n) for state, n in rows}

    def remaining(self, run_id: str, max_attempts: int) -> int:
        """Batches that are not done and can still make progress."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM batches WHERE run_id = ? "
            "AND state != 'done' AND NOT "
            "(state = 'failed' AND attempts >= ?)",
            (run_id, max_attempts),
        ).fetchone()
        return int(row[0])

    def done_batches(self, run_id: str) -> List[str]:
        rows = self._conn.execute(
            "SELECT batch_id FROM batches WHERE run_id = ? "
            "AND state = 'done' ORDER BY batch_id",
            (run_id,),
        ).fetchall()
        return [r[0] for r in rows]

    def exhausted(self, run_id: str,
                  max_attempts: int) -> List[Dict[str, str]]:
        """Failed batches with no attempts left, plus their last error."""
        rows = self._conn.execute(
            "SELECT batch_id, COALESCE(error, '') FROM batches "
            "WHERE run_id = ? AND state = 'failed' AND attempts >= ? "
            "ORDER BY batch_id",
            (run_id, max_attempts),
        ).fetchall()
        return [{"batch": b, "error": e} for b, e in rows]

    def last_heartbeat(self, run_id: str) -> Optional[float]:
        row = self._conn.execute(
            "SELECT MAX(heartbeat) FROM batches WHERE run_id = ?",
            (run_id,),
        ).fetchone()
        return float(row[0]) if row and row[0] else None

    def close(self) -> None:
        self._conn.close()
