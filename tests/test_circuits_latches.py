"""Tests for the latch bank and the Section 3.3 strategy."""

import pytest

from repro.circuits.latches import LatchBank, study_latch_bank


class TestLatchBank:
    def test_capture_and_bias(self):
        bank = LatchBank(["a", "b"])
        bank.capture({"a": 0, "b": 1}, 3.0)
        bank.capture({"a": 1, "b": 1}, 1.0)
        assert bank.bias_to_zero("a") == pytest.approx(0.75)
        assert bank.bias_to_zero("b") == pytest.approx(0.0)

    def test_worst_duty_covers_both_pmos(self):
        bank = LatchBank(["a"])
        bank.capture({"a": 1}, 9.0)
        bank.capture({"a": 0}, 1.0)
        # Holding "1" stresses the complementary device.
        assert bank.worst_duty() == pytest.approx(0.9)

    def test_worst_pin(self):
        bank = LatchBank(["balanced", "stuck"])
        bank.capture({"balanced": 0, "stuck": 0}, 1.0)
        bank.capture({"balanced": 1, "stuck": 0}, 1.0)
        pin, duty = bank.worst_pin()
        assert pin == "stuck"
        assert duty == pytest.approx(1.0)

    def test_guardband_of_balanced_bank_is_floor(self):
        bank = LatchBank(["a"])
        bank.capture({"a": 0}, 1.0)
        bank.capture({"a": 1}, 1.0)
        assert bank.guardband() == pytest.approx(0.02)

    def test_missing_pin_rejected(self):
        bank = LatchBank(["a", "b"])
        with pytest.raises(ValueError):
            bank.capture({"a": 0}, 1.0)

    def test_unknown_pin_rejected(self):
        bank = LatchBank(["a"])
        with pytest.raises(KeyError):
            bank.bias_to_zero("z")

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            LatchBank([])


class TestSection33Claim:
    def test_idle_pair_balances_adder_latches(self, adder32):
        """Alternating <0,0,0>/<1,1,1> balances the input latches.

        Section 4.3: "by alternating the selected pair of inputs during
        idle periods, latches hold similar amounts of time opposite
        values".
        """
        pins = list(adder32.circuit.inputs)
        ones = (1 << 32) - 1
        schedule = [
            (adder32.input_vector(0, 0, 0), 1.0),
            (adder32.input_vector(ones, ones, 1), 1.0),
        ]
        study = study_latch_bank(pins, schedule)
        assert study.worst_duty == pytest.approx(0.5)
        assert study.guardband == pytest.approx(0.02)
        assert study.mean_imbalance == pytest.approx(0.0)

    def test_biased_real_inputs_stress_latches(self, adder32):
        pins = list(adder32.circuit.inputs)
        schedule = [
            (adder32.input_vector(0, 0, 0), 9.0),
            (adder32.input_vector(1, 1, 0), 1.0),
        ]
        study = study_latch_bank(pins, schedule)
        assert study.worst_duty == pytest.approx(1.0)
        assert study.guardband == pytest.approx(0.20)
