"""``python -m repro`` — the CLI without needing the console script.

Equivalent to the installed ``repro`` entry point and to
``python -m repro.cli``.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
