"""Tests for the Figure 3 casuistic."""

import pytest

from repro.core.policy import (
    BitDirective,
    Technique,
    choose_technique,
    ideal_k,
    repair_bit,
)


class TestIdealK:
    def test_paper_example(self):
        # Section 3.2 situation II: busy 75% of the time, "0" 67% of the
        # time overall means zero-time 0.5 -> storing "1" during all idle
        # time gives perfect balance (K = 1).
        # busy bias: 0.5 / 0.75 = 2/3.
        assert ideal_k(0.75, 2 / 3) == pytest.approx(1.0)

    def test_balanced_busy_needs_half(self):
        # Unbiased busy data: write "1" half the idle time.
        assert ideal_k(0.5, 0.5) == pytest.approx(0.5)

    def test_zero_occupancy(self):
        # All idle: hold "1" half the time.
        assert ideal_k(0.0, 0.5) == pytest.approx(0.5)

    def test_clamped_to_unit_interval(self):
        assert ideal_k(0.9, 1.0) == 1.0
        assert ideal_k(0.1, 0.0) <= 1.0
        assert ideal_k(0.0, 0.0) >= 0.0

    def test_full_occupancy(self):
        assert ideal_k(1.0, 0.9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_k(1.5, 0.5)
        with pytest.raises(ValueError):
            ideal_k(0.5, -0.1)


class TestChooseTechnique:
    def test_isv_when_mostly_free(self):
        # Register files: free > 50% -> ISV (Section 4.4).
        directive = choose_technique(occupancy=0.46, busy_bias_to_zero=0.9)
        assert directive.technique is Technique.ISV

    def test_all1_when_unremovable_zero_bias(self):
        # occupancy * bias0 > 50%: scheduler flags at 63% occupancy and
        # ~100% zero bias.
        directive = choose_technique(occupancy=0.63, busy_bias_to_zero=0.99)
        assert directive.technique is Technique.ALL1
        assert directive.k == 1.0

    def test_all0_when_unremovable_one_bias(self):
        directive = choose_technique(occupancy=0.63, busy_bias_to_zero=0.01)
        assert directive.technique is Technique.ALL0

    def test_all1_k_for_moderate_zero_bias(self):
        directive = choose_technique(occupancy=0.63, busy_bias_to_zero=0.7)
        assert directive.technique is Technique.ALL1_K
        assert directive.k == pytest.approx(
            ideal_k(0.63, 0.7)
        )

    def test_all0_k_for_moderate_one_bias(self):
        directive = choose_technique(occupancy=0.63, busy_bias_to_zero=0.3)
        assert directive.technique is Technique.ALL0_K

    def test_self_balanced_short_circuit(self):
        directive = choose_technique(0.63, 0.9, self_balanced=True)
        assert directive.technique is Technique.SELF_BALANCED

    def test_unprotectable_short_circuit(self):
        directive = choose_technique(0.63, 0.9, protectable=False)
        assert directive.technique is Technique.UNPROTECTED

    def test_balanced_busy_data_needs_nothing(self):
        directive = choose_technique(occupancy=0.63, busy_bias_to_zero=0.5)
        assert directive.technique is Technique.SELF_BALANCED


class TestRepairBit:
    def test_constants(self):
        assert repair_bit(BitDirective(Technique.ALL1), 0.0) == 1
        assert repair_bit(BitDirective(Technique.ALL0), 0.0) == 0

    def test_k_duty_cycling(self):
        directive = BitDirective(Technique.ALL1_K, k=0.6)
        assert repair_bit(directive, 0.5) == 1
        assert repair_bit(directive, 0.7) == 0
        dual = BitDirective(Technique.ALL0_K, k=0.6)
        assert repair_bit(dual, 0.5) == 0
        assert repair_bit(dual, 0.7) == 1

    def test_k_average_matches_duty(self):
        directive = BitDirective(Technique.ALL1_K, k=0.75)
        values = [repair_bit(directive, p / 100) for p in range(100)]
        assert sum(values) == 75

    def test_isv_inverts_sample(self):
        directive = BitDirective(Technique.ISV)
        assert repair_bit(directive, 0.0, sampled_bit=0) == 1
        assert repair_bit(directive, 0.0, sampled_bit=1) == 0
        assert repair_bit(directive, 0.0, sampled_bit=None) is None

    def test_untouched_techniques(self):
        assert repair_bit(BitDirective(Technique.SELF_BALANCED), 0.0) is None
        assert repair_bit(BitDirective(Technique.UNPROTECTED), 0.0) is None

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            repair_bit(BitDirective(Technique.ALL1), 1.0)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            BitDirective(Technique.ALL1_K, k=1.5)
