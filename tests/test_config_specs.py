"""Spec serialisation and validation (repro.config.specs/registry)."""

import dataclasses
import json

import pytest

from repro.config import (
    CACHE_SCHEMES,
    CacheGeometrySpec,
    MechanismSpec,
    MISSING,
    ProcessorSpec,
    ProtectionSpec,
    SpecError,
    StudySpec,
    TLBGeometrySpec,
    WorkloadSpec,
    registry_for_structure,
    resolve_path,
    with_path,
)

ALL_DEFAULT_SPECS = [
    CacheGeometrySpec(),
    TLBGeometrySpec(),
    ProcessorSpec(),
    MechanismSpec("line_fixed", {"ratio": 0.5}),
    ProtectionSpec(),
    WorkloadSpec(),
    StudySpec(study="caches"),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec", ALL_DEFAULT_SPECS,
        ids=lambda s: type(s).__name__,
    )
    def test_dict_round_trip(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "spec", ALL_DEFAULT_SPECS,
        ids=lambda s: type(s).__name__,
    )
    def test_json_round_trip(self, spec):
        # Through real JSON text: tuples become arrays and must come
        # back equal (canonicalised) — and a second trip is stable.
        once = type(spec).from_json(spec.to_json())
        assert once == spec
        assert once.to_json() == spec.to_json()

    def test_non_default_study_round_trip(self):
        spec = StudySpec(
            study="caches",
            processor=ProcessorSpec(
                dl0=CacheGeometrySpec(size_kb=16, ways=4)),
            protection=ProtectionSpec(
                dl0=MechanismSpec("line_dynamic", {
                    "ratio": 0.6, "threshold": 0.03, "warmup": 500,
                    "test_window": 500, "period": 3000,
                }),
                dtlb=MechanismSpec("none"),
            ),
            workload=WorkloadSpec(suites=("office", "kernels"),
                                  length=900, seed=3),
            sweep={"protection.dl0.params.ratio": [0.4, 0.6]},
            overrides={},
            workers=2,
        )
        restored = StudySpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.sweep["protection.dl0.params.ratio"] == (0.4, 0.6)

    def test_to_dict_is_json_safe(self):
        # Everything to_dict emits must survive json.dumps untouched.
        payload = StudySpec(study="penelope").to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestValidation:
    def test_unknown_key_names_the_class_and_valid_keys(self):
        with pytest.raises(SpecError, match="alloc_widht"):
            ProcessorSpec.from_dict({"alloc_widht": 3})
        with pytest.raises(SpecError, match="alloc_width"):
            ProcessorSpec.from_dict({"alloc_widht": 3})

    def test_unknown_nested_key_reports_path(self):
        with pytest.raises(SpecError, match="dl0"):
            ProcessorSpec.from_dict({"dl0": {"size_mb": 1}})

    def test_non_mapping_payload(self):
        with pytest.raises(SpecError, match="expected a mapping"):
            ProcessorSpec.from_dict([1, 2, 3])

    def test_null_nested_field_rejected(self):
        # A JSON null must not silently skip nested-spec validation.
        with pytest.raises(SpecError, match="not null"):
            StudySpec.from_dict({"study": "caches", "workload": None})
        with pytest.raises(SpecError, match="not null"):
            ProcessorSpec.from_dict({"dl0": None})

    def test_impossible_cache_geometry(self):
        with pytest.raises(SpecError, match="not\\s+divisible"):
            CacheGeometrySpec(size_kb=1, ways=3, line_bytes=64)

    def test_impossible_tlb_geometry(self):
        with pytest.raises(SpecError, match="not divisible"):
            TLBGeometrySpec(entries=100, ways=8)

    def test_negative_geometry(self):
        with pytest.raises(SpecError, match="positive"):
            CacheGeometrySpec(size_kb=-4)

    def test_bad_adder_policy_lists_choices(self):
        with pytest.raises(SpecError, match="uniform"):
            ProcessorSpec(adder_policy="round_robin")

    def test_non_positive_width(self):
        with pytest.raises(SpecError, match="alloc_width"):
            ProcessorSpec(alloc_width=0)

    def test_unknown_mechanism_lists_registered(self):
        with pytest.raises(SpecError,
                           match="line_fixed.*none|none.*line_fixed"):
            ProtectionSpec(dl0=MechanismSpec("bogus"))

    def test_unknown_mechanism_param_lists_accepted(self):
        with pytest.raises(SpecError, match="ratio"):
            ProtectionSpec(dl0=MechanismSpec("line_fixed",
                                             {"ration": 0.5}))

    def test_none_mechanism_rejects_params(self):
        with pytest.raises(SpecError, match="no parameters"):
            ProtectionSpec(dl0=MechanismSpec("none", {"ratio": 0.5}))

    def test_unknown_suite_lists_available(self):
        with pytest.raises(SpecError, match="specint2000"):
            WorkloadSpec(suites=("spec_int",))

    def test_empty_sweep_axis(self):
        with pytest.raises(SpecError, match="non-empty"):
            StudySpec(study="caches", sweep={"workload.length": []})

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            StudySpec.from_json("{not json")

    def test_replace_revalidates(self):
        spec = CacheGeometrySpec()
        with pytest.raises(SpecError):
            spec.replace(ways=7, size_kb=13)


class TestFieldPaths:
    def test_resolve_existing_paths(self):
        spec = StudySpec(study="caches")
        assert resolve_path(spec, "processor.dl0.size_kb") == 32
        assert resolve_path(spec, "protection.dl0.name") == "line_fixed"
        assert resolve_path(spec, "protection.dl0.params.ratio") == 0.5

    def test_resolve_missing_is_sentinel(self):
        spec = StudySpec(study="caches")
        assert resolve_path(spec, "protection.dl0.params.threshold") \
            is MISSING
        assert resolve_path(spec, "processor.nonexistent") is MISSING

    def test_with_path_replaces_immutably(self):
        spec = StudySpec(study="caches")
        updated = with_path(spec, "processor.dl0.size_kb", 8)
        assert updated.processor.dl0.size_kb == 8
        assert spec.processor.dl0.size_kb == 32

    def test_with_path_validates_result(self):
        spec = StudySpec(study="caches")
        with pytest.raises(SpecError):
            with_path(spec, "processor.dl0.ways", 7)

    def test_with_path_unknown_field(self):
        spec = StudySpec(study="caches")
        with pytest.raises(SpecError, match="no field"):
            with_path(spec, "processor.cache_kb", 8)


class TestRegistries:
    def test_registered_scheme_names(self):
        assert {"set_fixed", "way_fixed", "line_fixed",
                "line_dynamic"} <= set(CACHE_SCHEMES.names())

    def test_build_none_returns_none(self):
        assert CACHE_SCHEMES.build("none", {}) is None

    def test_build_constructs_configured_scheme(self):
        scheme = CACHE_SCHEMES.build("line_dynamic", {
            "ratio": 0.6, "threshold": 0.01, "warmup": 100,
            "test_window": 100, "period": 1000,
        })
        assert scheme.name == "LineDynamic60%"
        assert scheme.threshold == 0.01

    def test_build_bad_value_wraps_as_spec_error(self):
        with pytest.raises(SpecError, match="cannot build"):
            CACHE_SCHEMES.build("line_fixed", {"ratio": 1.5})

    def test_structure_registry_lookup(self):
        assert registry_for_structure("dl0") is CACHE_SCHEMES
        with pytest.raises(SpecError, match="unknown structure"):
            registry_for_structure("l2")

    def test_new_scheme_plugs_in_without_construction_changes(self):
        """The extension point: register by name, build via spec."""
        from repro.core.cache_like import LineFixedScheme

        class EveryOtherLineScheme(LineFixedScheme):
            pass

        name = "_test_every_other_line"
        CACHE_SCHEMES.register(name)(EveryOtherLineScheme)
        try:
            protection = ProtectionSpec(
                dl0=MechanismSpec(name, {"ratio": 0.25}))
            from repro.api import build_scheme

            scheme = build_scheme(protection.dl0)
            assert isinstance(scheme, EveryOtherLineScheme)
            assert scheme.ratio == 0.25
        finally:
            del CACHE_SCHEMES._factories[name]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            CACHE_SCHEMES.register("line_fixed")(object)


class TestCoreConfigConversion:
    def test_default_spec_matches_default_core_config(self):
        from repro.uarch.core import CoreConfig

        assert ProcessorSpec().to_core_config() == CoreConfig()

    def test_geometry_and_policy_flow_through(self):
        from repro.uarch.ports import AdderPolicy

        config = ProcessorSpec(
            adder_policy="priority",
            dl0=CacheGeometrySpec(size_kb=8, ways=4),
            dtlb=TLBGeometrySpec(entries=64, ways=4),
        ).to_core_config()
        assert config.adder_policy is AdderPolicy.PRIORITY
        assert config.dl0.name == "DL0-8K-4w"
        assert config.dl0.sets == 8 * 1024 // (4 * 64)
        assert config.dtlb.name == "DTLB-64"
        assert config.dtlb.entries == 64

    def test_specs_are_frozen(self):
        spec = ProcessorSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.alloc_width = 8
