"""Tests for the synthetic workload generators."""

import random
import struct

import pytest

np = pytest.importorskip("numpy")

from repro.uarch.uop import FP_WIDTH, UopClass
from repro.workloads import (
    AddressGenerator,
    BiasedIntGenerator,
    FPValueGenerator,
    SUITE_PROFILES,
    TABLE1_TRACE_COUNTS,
    TraceGenerator,
    encode_x87,
    generate_address_stream,
    generate_workload,
    suite_names,
)


class TestEncodeX87:
    @pytest.mark.parametrize("value", [1.0, -1.0, 0.5, 3.1415, 1e6, -255.0])
    def test_fields_consistent(self, value):
        encoded = encode_x87(value)
        sign = encoded >> 79
        exponent = (encoded >> 64) & 0x7FFF
        integer_bit = (encoded >> 63) & 1
        assert sign == (1 if value < 0 else 0)
        assert integer_bit == 1  # normalised
        # Decode and compare.
        fraction = encoded & ((1 << 63) - 1)
        mantissa = 1.0 + fraction / (1 << 63)
        decoded = (-1) ** sign * mantissa * 2.0 ** (exponent - 16383)
        assert decoded == pytest.approx(value, rel=1e-12)

    def test_zero(self):
        assert encode_x87(0.0) == 0

    def test_fits_width(self):
        for value in (1.0, -1e300, 5e-324):
            assert encode_x87(value) < (1 << FP_WIDTH)

    def test_subnormal_double(self):
        encoded = encode_x87(5e-324)
        assert (encoded >> 63) & 1 == 1  # renormalised

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            encode_x87(float("nan"))


class TestBiasedIntGenerator:
    def test_bias_band(self):
        gen = BiasedIntGenerator(random.Random(0))
        values = [gen.next() for __ in range(20000)]
        bits = np.array([[(v >> i) & 1 for i in range(32)] for v in values])
        bias = 1.0 - bits.mean(axis=0)
        # Section 1.1: between 65% and 90% for all bits (sampling slack).
        assert bias.min() > 0.60
        assert bias.max() < 0.93

    def test_values_fit_width(self):
        gen = BiasedIntGenerator(random.Random(1))
        assert all(0 <= gen.next() < (1 << 32) for __ in range(1000))

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            BiasedIntGenerator(random.Random(0), counter_weight=-1.0)


class TestFPValueGenerator:
    def test_values_fit_width(self):
        gen = FPValueGenerator(random.Random(0))
        assert all(0 <= gen.next() < (1 << FP_WIDTH) for __ in range(500))

    def test_mix_includes_zero_and_negative(self):
        gen = FPValueGenerator(random.Random(0))
        floats = [gen.next_float() for __ in range(2000)]
        assert any(f == 0.0 for f in floats)
        assert any(f < 0.0 for f in floats)
        assert any(f > 0.0 for f in floats)


class TestAddressGenerator:
    def test_hot_accesses_stay_in_working_set(self):
        gen = AddressGenerator(random.Random(0), working_set_bytes=8192,
                               hot_fraction=1.0)
        span = max(gen.next() for __ in range(2000)) - gen.base
        assert span < 8192 + 5 * 64 * 1024  # regions plus spacing

    def test_cold_stream_is_monotonic_ish(self):
        gen = AddressGenerator(random.Random(0), hot_fraction=0.0)
        addresses = [gen.next() for __ in range(500)]
        # The stream trends forward: the last address is far beyond the
        # first despite backward jumps.
        assert addresses[-1] > addresses[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressGenerator(random.Random(0), working_set_bytes=0)
        with pytest.raises(ValueError):
            AddressGenerator(random.Random(0), hot_fraction=1.5)


class TestSuiteProfiles:
    def test_table1_counts(self):
        assert sum(TABLE1_TRACE_COUNTS.values()) == 531
        assert len(TABLE1_TRACE_COUNTS) == 10

    def test_all_profiles_valid(self):
        for name in suite_names():
            profile = SUITE_PROFILES[name]
            assert profile.name == name
            assert abs(sum(profile.uop_mix) - 1.0) < 0.011
            assert profile.mix_dict()["load"] > 0

    def test_server_has_biggest_working_set(self):
        sizes = {n: p.working_set_bytes for n, p in SUITE_PROFILES.items()}
        assert max(sizes, key=sizes.get) == "server"


class TestTraceGenerator:
    def test_length_and_tagging(self):
        trace = TraceGenerator(seed=1).generate("office", length=500)
        assert len(trace) == 500
        assert trace.suite == "office"

    def test_deterministic_given_seed(self):
        a = TraceGenerator(seed=5).generate("kernels", length=300)
        b = TraceGenerator(seed=5).generate("kernels", length=300)
        assert all(
            x.opcode == y.opcode and x.address == y.address
            for x, y in zip(a, b)
        )

    def test_different_traces_differ(self):
        gen = TraceGenerator(seed=5)
        a = gen.generate("kernels", length=300, trace_index=0)
        b = gen.generate("kernels", length=300, trace_index=1)
        assert any(x.opcode != y.opcode for x, y in zip(a, b))

    def test_mix_approximates_profile(self):
        trace = TraceGenerator(seed=2).generate("specfp2000", length=8000)
        stats = trace.stats()
        profile = SUITE_PROFILES["specfp2000"]
        assert stats.fraction(UopClass.FP) == pytest.approx(
            profile.mix_dict()["fp"], abs=0.03
        )
        assert stats.memory_fraction == pytest.approx(
            profile.mix_dict()["load"] + profile.mix_dict()["store"],
            abs=0.03,
        )

    def test_memory_uops_have_addresses(self):
        trace = TraceGenerator(seed=3).generate("server", length=1000)
        for uop in trace:
            if uop.uop_class.is_memory:
                assert uop.address is not None

    def test_sub_fraction_produces_carry_in(self):
        trace = TraceGenerator(seed=3).generate("specint2000", length=4000)
        alus = [u for u in trace if u.uop_class is UopClass.ALU]
        subs = [u for u in alus if u.is_sub]
        assert 0.0 < len(subs) / len(alus) < 0.3

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            TraceGenerator().generate("nonexistent")

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator().generate("office", length=0)


class TestWorkloadHelpers:
    def test_generate_workload_proportional(self):
        workload = generate_workload(scale=0.02, length=50)
        by_suite = {}
        for trace in workload:
            by_suite[trace.suite] = by_suite.get(trace.suite, 0) + 1
        assert by_suite["multimedia"] == round(85 * 0.02)
        assert all(count >= 1 for count in by_suite.values())

    def test_generate_workload_fixed(self):
        workload = generate_workload(traces_per_suite=2, length=50,
                                     suites=["office", "kernels"])
        assert len(workload) == 4

    def test_address_stream(self):
        stream = generate_address_stream("server", length=1000, seed=4)
        assert len(stream) == 1000
        assert all(isinstance(a, int) and a >= 0 for a in stream)

    def test_address_stream_deterministic(self):
        a = generate_address_stream("office", length=200, seed=4)
        b = generate_address_stream("office", length=200, seed=4)
        assert a == b
