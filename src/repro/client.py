"""Client for the sweep service: submit / status / stream / result.

Stdlib-only, mirroring the server: plain ``http.client`` for the REST
surface and a raw-socket WebSocket client (masked frames, ping replies)
reusing the same :mod:`repro.service.ws` framing the server is built
on.  Synchronous by design — tests, CI smokes and notebook-style
scripts drive it from ordinary threads::

    from repro.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit({"study": "caches",
                         "sweep": {"protection.dl0.params.ratio":
                                   [0.25, 0.5]}})
    for message in client.stream(job["job"]):
        print(message["type"])
    rows = client.result(job["job"])["rows"]
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import time
from typing import Any, Dict, Iterator, Mapping, Optional
from urllib.parse import quote, urlsplit

from repro.service import ws

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response (or a broken stream) from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _spec_payload(spec: Any) -> Any:
    """Accept dicts, StudySpec, or SweepSpec transparently."""
    if isinstance(spec, Mapping):
        return dict(spec)
    for attr in ("to_dict", "payload"):
        method = getattr(spec, attr, None)
        if callable(method):
            return method()
    raise TypeError(
        f"cannot submit {type(spec).__name__}: pass a dict, a "
        f"StudySpec, or a SweepSpec")


class ServiceClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, base_url: str, token: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(
                f"unsupported scheme {split.scheme!r} (http only)")
        netloc = split.netloc or split.path
        host, __, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port or 80)
        self.token = token
        self.timeout = timeout

    # -- REST -----------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _request(self, method: str, path: str,
                 payload: Any = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            conn.request(method, path, body=body,
                         headers=self._headers())
            response = conn.getresponse()
            data = response.read()
            try:
                parsed = json.loads(data) if data else {}
            except ValueError:
                parsed = {"error": data.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    str(parsed.get("error", "request failed")))
            if not isinstance(parsed, dict):
                raise ServiceError(502, "non-object JSON response")
            return parsed
        finally:
            conn.close()

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def submit(self, spec: Any, fabric: Optional[bool] = None,
               workers: Optional[int] = None) -> Dict[str, Any]:
        """Submit a spec; returns the job status (``job`` is the id).

        ``deduplicated=True`` in the response means an identical spec
        was already queued/running/done and this submission attached to
        it — no new execution.
        """
        body: Dict[str, Any] = {"spec": _spec_payload(spec)}
        if fabric is not None:
            body["fabric"] = bool(fabric)
        if workers is not None:
            body["workers"] = int(workers)
        return self._request("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def result(self, job_id: str) -> Dict[str, Any]:
        """Terminal rows of a done job (raises 409 while running)."""
        return self._request(
            "GET", f"/v1/jobs/{quote(job_id)}/result")

    def query(self, key: Optional[str] = None,
              study: Optional[str] = None,
              limit: int = 100) -> Dict[str, Any]:
        """Query the shared result store directly."""
        if key:
            path = f"/v1/results?key={quote(key)}"
        elif study:
            path = f"/v1/results?study={quote(study)}&limit={limit}"
        else:
            path = f"/v1/results?limit={limit}"
        return self._request("GET", path)

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in ("done", "error", "incomplete"):
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')} after "
                    f"{timeout}s")
            time.sleep(poll)

    # -- WebSocket ------------------------------------------------------
    def stream(self, job_id: str,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield the job's live messages until the server closes.

        Messages are the server's JSON objects: ``hello``, ``event``
        (one ``events.jsonl`` record each), ``telemetry`` (an
        ``IntervalTelemetry`` snapshot), and a final ``job`` status.
        Pings are answered transparently.
        """
        path = f"/v1/ws/jobs/{quote(job_id)}"
        sock = socket.create_connection(
            (self.host, self.port), timeout or self.timeout)
        try:
            request, key = ws.client_handshake(
                f"{self.host}:{self.port}", path, token=self.token)
            sock.sendall(request)
            status, headers, leftover = _read_http_head(sock)
            if status != 101:
                raise ServiceError(status, "websocket upgrade refused")
            expected = ws.accept_key(key)
            if headers.get("sec-websocket-accept") != expected:
                raise ServiceError(502, "bad Sec-WebSocket-Accept")
            yield from self._frames(sock, leftover)
        finally:
            sock.close()

    def _frames(self, sock: socket.socket, leftover: bytes = b""
                ) -> Iterator[Dict[str, Any]]:
        decoder = ws.FrameDecoder(require_mask=False)
        assembler = ws.MessageAssembler()
        first = True
        while True:
            if first:
                # Frame bytes often ride the same TCP segment as the
                # 101 head; they were split off there, not lost.
                data, first = leftover, False
                if not data:
                    continue
            else:
                try:
                    data = sock.recv(65536)
                except socket.timeout as exc:
                    raise ServiceError(
                        504, "stream timed out waiting for frames"
                    ) from exc
                if not data:
                    return
            for frame in decoder.feed(data):
                for opcode, payload in assembler.feed(frame):
                    if opcode == ws.OP_TEXT:
                        try:
                            message = json.loads(
                                payload.decode("utf-8"))
                        except ValueError:
                            continue
                        if isinstance(message, dict):
                            yield message
                    elif opcode == ws.OP_PING:
                        sock.sendall(ws.encode_frame(
                            ws.OP_PONG, payload,
                            mask_key=os.urandom(4)))
                    elif opcode == ws.OP_CLOSE:
                        try:
                            sock.sendall(ws.encode_frame(
                                ws.OP_CLOSE, payload[:2],
                                mask_key=os.urandom(4)))
                        except OSError:
                            pass
                        return


def _read_http_head(sock: socket.socket
                    ) -> tuple[int, Dict[str, str], bytes]:
    """Read up to the blank line.

    Returns ``(status, lower-cased headers, leftover)`` — leftover
    being any frame bytes the kernel delivered in the same read as the
    response head.
    """
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            raise ServiceError(502, "connection closed during upgrade")
        data += chunk
        if len(data) > 64 * 1024:
            raise ServiceError(502, "oversized upgrade response")
    head_bytes, leftover = data.split(b"\r\n\r\n", 1)
    head = head_bytes.decode("latin-1")
    lines = head.split("\r\n")
    parts = lines[0].split()
    status = int(parts[1]) if len(parts) > 1 else 0
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers, leftover
