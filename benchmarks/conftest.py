"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Heavy
artefacts (traces, baseline core runs) are session-scoped; each module
prints its artefact and also writes it under ``benchmarks/results/`` so
EXPERIMENTS.md can cite the measured numbers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

import pytest

from repro.uarch import TraceDrivenCore
from repro.workloads import TraceGenerator, suite_names

#: Smoke mode (`repro bench-smoke` / REPRO_BENCH_SMOKE=1): every bench
#: executes end to end with scaled-down workloads and its shape
#: assertions relaxed, so API rot is caught without paying full-size
#: runs.  Artefacts are diverted to a separate directory so smoke runs
#: never clobber the full-size results EXPERIMENTS.md cites.
_SMOKE_ENV = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Workload divisor; >1 shrinks every bench's trace/stream lengths.
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "10" if _SMOKE_ENV else "1"))

#: The full-size shape assertions only hold for full-size workloads, so
#: ANY scaled run relaxes them — REPRO_BENCH_SCALE>1 without the smoke
#: flag must not fail anchors like fig6's `int_base > 0.85`.
SMOKE = _SMOKE_ENV or SCALE > 1


def scaled(n: int, floor: int = 200) -> int:
    """``n`` shrunk by the bench scale factor, but never below ``floor``."""
    return max(min(floor, n), n // SCALE)


#: Scaled-down study shape: one trace per Table 1 suite.
BENCH_SEED = 1234
BENCH_TRACE_LENGTH = scaled(6000)

RESULTS_DIR = os.environ.get(
    "REPRO_BENCH_RESULTS_DIR",
    os.path.join(os.path.dirname(__file__),
                 "results" if SCALE == 1 else "results-scaled"),
)


def write_result(
    name: str, text: str, data: Optional[Dict[str, Any]] = None
) -> None:
    """Persist a rendered artefact for EXPERIMENTS.md.

    Alongside the text artefact a machine-readable ``<stem>.json`` is
    written (the rendered text plus whatever structured ``data`` the
    bench hands over), so BENCH_*.json trajectories can be tracked
    across commits without parsing ASCII tables.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    stem = os.path.splitext(name)[0]
    payload = {"name": stem, "text": text}
    if data is not None:
        payload["data"] = data
    with open(os.path.join(RESULTS_DIR, stem + ".json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def workload():
    """One trace per suite (the paper's 531 traces, scaled)."""
    generator = TraceGenerator(seed=BENCH_SEED)
    return [
        generator.generate(suite, length=BENCH_TRACE_LENGTH)
        for suite in suite_names()
    ]


@pytest.fixture(scope="session")
def baseline_results(workload) -> Dict[str, object]:
    """Baseline (unprotected) core runs, one per suite."""
    results = {}
    for trace in workload:
        results[trace.suite] = TraceDrivenCore().run(trace)
    return results


@pytest.fixture(scope="session")
def adder32():
    from repro.circuits import build_ladner_fischer_adder

    return build_ladner_fischer_adder(width=32)
