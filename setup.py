"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path
when a setup.py is present, which works offline; all metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
